"""Flight network analysis: recursion over a cyclic graph, plus negation.

Routes form a *cyclic* directed graph (hub-and-spoke with return legs), so
this exercises LFP evaluation where naive iteration could loop forever
without proper termination checks.  The stratified-negation extension then
answers "which cities can NOT be reached from the hub?".

Run:  python examples/flight_network.py
"""

from repro import LfpStrategy, Testbed

RULES = """
reachable(A, B) :- flight(A, B).
reachable(A, B) :- flight(A, C), reachable(C, B).

city(X) :- airport(X).
unreachable_from_hub(X) :- city(X), not hub_reach(X).
hub_reach(X) :- reachable('FRA', X).
"""

FLIGHTS = [
    # a European cycle
    ("FRA", "CDG"), ("CDG", "MAD"), ("MAD", "FRA"),
    # spokes
    ("FRA", "JFK"), ("JFK", "SFO"), ("SFO", "JFK"),
    ("CDG", "NRT"),
    # an isolated pair
    ("SYD", "AKL"), ("AKL", "SYD"),
]

AIRPORTS = sorted({a for pair in FLIGHTS for a in pair})


def main() -> None:
    testbed = Testbed()
    testbed.define(RULES)
    testbed.define_base_relation("flight", ("TEXT", "TEXT"))
    testbed.define_base_relation("airport", ("TEXT",))
    testbed.load_facts("flight", FLIGHTS)
    testbed.load_facts("airport", [(a,) for a in AIRPORTS])

    # Reachability from the hub, over a graph with three cycles.
    reach = testbed.query("?- reachable('FRA', X).", optimize=True)
    print("reachable from FRA:", sorted(x for (x,) in reach.rows))

    # All three LFP strategies terminate on the cyclic data and agree.
    for strategy in LfpStrategy:
        result = testbed.query("?- reachable('FRA', X).", strategy=strategy)
        assert sorted(result.rows) == sorted(reach.rows)
        print(f"  {strategy.value:<13} {result.execution_seconds * 1000:6.2f} ms, "
              f"{result.execution.total_iterations} iterations")

    # Stratified negation: the isolated Oceania pair is unreachable.
    isolated = testbed.query("?- unreachable_from_hub(X).")
    print("NOT reachable from FRA:", sorted(x for (x,) in isolated.rows))

    # Round trips: cities on a cycle through FRA.
    round_trip = testbed.query("?- reachable('FRA', X), reachable(X, 'FRA').")
    print("round-trippable via FRA:", sorted(x for (x,) in set(round_trip.rows)))

    testbed.close()


if __name__ == "__main__":
    main()
