"""Bill-of-materials (parts explosion) — the classic recursive DB workload.

A manufacturing database stores which parts directly contain which
subparts.  Two recursive views answer the two standard questions:

* *explosion*: every part, at any depth, inside a given assembly;
* *where-used*: every assembly, at any depth, that contains a given part.

The where-used query is highly selective (one part out of many), which is
exactly where the generalized magic sets optimization shines; the example
measures both ways.

Run:  python examples/bill_of_materials.py
"""

from repro import Testbed

RULES = """
contains(A, P)   :- component(A, P).
contains(A, P)   :- component(A, S), contains(S, P).
where_used(P, A) :- component(A, P).
where_used(P, A) :- component(S, P), where_used(S, A).
"""


def build_catalog(testbed: Testbed, width: int = 4, depth: int = 5) -> int:
    """A synthetic product: a tree of assemblies, `width` subparts each."""
    testbed.define_base_relation("component", ("TEXT", "TEXT"))
    rows = []
    frontier = ["product"]
    for level in range(depth):
        next_frontier = []
        for assembly in frontier:
            for index in range(width):
                part = f"{assembly}.{index}"
                rows.append((assembly, part))
                next_frontier.append(part)
        frontier = next_frontier
    testbed.load_facts("component", rows)
    return len(rows)


def main() -> None:
    testbed = Testbed()
    testbed.define(RULES)
    count = build_catalog(testbed)
    print(f"catalog: {count} direct containment facts")

    # Parts explosion of one sub-assembly.
    explosion = testbed.query("?- contains('product.0.1', P).", optimize=True)
    print(f"product.0.1 contains {len(explosion.rows)} parts "
          f"(e.g. {sorted(explosion.rows)[:3]})")

    # Where-used for one deep part: a needle-in-haystack query.
    part = "product.0.1.2.3.0"
    plain = testbed.query(f"?- where_used('{part}', A).")
    magic = testbed.query(f"?- where_used('{part}', A).", optimize=True)
    assert sorted(plain.rows) == sorted(magic.rows)
    print(f"\n{part} is used in {len(magic.rows)} assemblies:")
    for (assembly,) in sorted(magic.rows):
        print(f"  {assembly}")
    print(f"\nwhere-used timing: plain {plain.execution_seconds * 1000:.1f} ms, "
          f"magic sets {magic.execution_seconds * 1000:.1f} ms "
          f"({plain.execution_seconds / magic.execution_seconds:.1f}x faster)")

    # Commit the views to the stored D/KB so later sessions can reuse them.
    update = testbed.update_stored_dkb()
    print(f"\nstored {len(update.new_rules)} rules; "
          f"closure gained {update.new_closure_pairs} reachability pairs")
    # The views still answer, now compiled out of the stored D/KB.
    again = testbed.query("?- contains('product.0.1', P).")
    assert len(again.rows) == len(explosion.rows)
    print("views still answer after being moved to the stored D/KB")

    testbed.close()


if __name__ == "__main__":
    main()
