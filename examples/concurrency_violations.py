"""Seeded lock-discipline violations for the concurrency checker.

Never imported by the testbed — this file exists so CI can prove
``python -m repro lint-concurrency`` still catches each violation class
(a negative test: the run must exit 1 and report CC001, CC002, CC003 and
CC004).  Every block below is a distilled version of a real bug the
checker is designed to stop from re-entering the server/cluster code.
"""

import threading
import time


class UnguardedCounter:
    """CC001 (annotated attribute touched lock-free) + CC002 (no discipline)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._total = 0

    def bump(self) -> None:
        # CC001: guarded attribute written without holding _lock.
        self._count += 1
        # CC002: shared attribute with no lock discipline at all.
        self._total += 1

    def snapshot(self) -> tuple[int, int]:
        with self._lock:
            return self._count, self._total


class OrderAB:
    """CC003: two locks taken in opposite orders on different paths."""

    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.forward = 0  # guarded-by: _a
        self.backward = 0  # guarded-by: _b

    def ab(self) -> None:
        with self._a:
            with self._b:
                self.forward += 1

    def ba(self) -> None:
        with self._b:
            with self._a:
                self.backward += 1


class SleepUnderLock:
    """CC004: SQL and sleeping inside a critical section."""

    def __init__(self, cursor) -> None:
        self._lock = threading.Lock()
        self._cursor = cursor

    def slow_query(self) -> list:
        with self._lock:
            # CC004: every other thread needing _lock stalls behind the
            # query and the sleep.
            self._cursor.execute("SELECT 1")
            time.sleep(0.05)
            return self._cursor.fetchall()
