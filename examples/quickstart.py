"""Quickstart: the classic ancestor query, end to end.

Creates a testbed, defines facts and recursive rules in the Horn clause
language, and runs queries with and without the magic sets optimization —
the 30-second tour of the public API.

Run:  python examples/quickstart.py
"""

from repro import LfpStrategy, Testbed


def main() -> None:
    testbed = Testbed()

    # Facts go to the extensional database, rules to the workspace D/KB.
    testbed.define(
        """
        % a small family tree
        parent(john, mary).    parent(john, bob).
        parent(mary, sue).     parent(mary, tom).
        parent(sue, ann).      parent(bob, kim).
        parent(kim, lee).

        % ancestor = transitive closure of parent
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
        """
    )

    # A bound query: whose ancestor is john?
    result = testbed.query("?- ancestor('john', X).")
    print("descendants of john:", sorted(x for (x,) in result.rows))
    print(f"  compiled in {result.compile_seconds * 1000:.2f} ms, "
          f"executed in {result.execution_seconds * 1000:.2f} ms, "
          f"{result.execution.total_iterations} LFP iterations")

    # The same query through the generalized magic sets optimization: only
    # tuples relevant to 'john' are computed.
    optimized = testbed.query("?- ancestor('john', X).", optimize=True)
    assert sorted(optimized.rows) == sorted(result.rows)
    print("with magic sets:", sorted(x for (x,) in optimized.rows))

    # Naive vs semi-naive LFP evaluation (the paper's Test 5 in miniature).
    for strategy in (LfpStrategy.NAIVE, LfpStrategy.SEMINAIVE):
        timed = testbed.query("?- ancestor('john', X).", strategy=strategy)
        print(f"  {strategy.value:<10} {timed.execution_seconds * 1000:7.2f} ms")

    # Multi-goal queries join their goals.
    middle = testbed.query("?- ancestor('john', X), ancestor(X, 'ann').")
    print("between john and ann:", sorted(x for (x,) in set(middle.rows)))

    # Inspect the program fragment the Knowledge Manager generated.
    fragment = testbed.explain("?- ancestor('john', X).")
    print("\ngenerated program fragment (first 12 lines):")
    print("\n".join(fragment.splitlines()[:12]))

    testbed.close()


if __name__ == "__main__":
    main()
