"""Static analysis: the collect-all diagnostics engine over a rule base.

Seeds a session with several independent problems — an unsafe rule, a type
conflict, a dead rule, a subsumed duplicate — and shows how one
``Testbed.lint`` run reports them all at once, where the fail-fast Semantic
Checker would stop at the first.  Also demonstrates the per-pass selection
knob and compiling with ``lint=True``.

Run:  python examples/static_analysis.py
"""

from repro import Testbed
from repro.analysis import CATALOG, AnalysisConfig
from repro.errors import SemanticError


def main() -> None:
    testbed = Testbed()

    testbed.define(
        """
        parent(john, mary).    parent(mary, sue).
        salary(john, 1000).

        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).

        % unsafe: Y appears only in the head
        reaches(X, Y) :- parent(X, Z).

        % type conflict: joins a TEXT column against an INTEGER column
        oddity(X) :- parent(X, Y), salary(X, Y).

        % duplicate of the first ancestor rule (theta-subsumption variant)
        ancestor(A, B) :- parent(A, B), parent(A, C).

        % dead weight for an ancestor query
        sibling(X, Y) :- parent(P, X), parent(P, Y).
        """
    )

    # One collect-all run reports every problem, each with a stable DK code.
    report = testbed.lint("?- ancestor('john', X).")
    print("full lint report:")
    print(report.render())

    # The catalog maps each code to its severity and a one-line meaning.
    print("\ncodes found:")
    for code in sorted(report.code_set()):
        severity, meaning = CATALOG[code]
        print(f"  {code} ({severity}): {meaning}")

    # Passes can be selected individually.
    safety_only = testbed.lint(config=AnalysisConfig(passes=("safety",)))
    print(f"\nsafety pass alone: {len(safety_only)} finding(s)")

    # The Semantic Checker runs through the same engine but stays fail-fast:
    # compiling this query raises on the first error, as the paper requires.
    try:
        testbed.compile_query("?- reaches('john', X).")
    except SemanticError as error:
        print(f"\nfail-fast compile still raises: {type(error).__name__}:")
        print(f"  {error}")

    testbed.close()


if __name__ == "__main__":
    main()
