"""The stored D/KB lifecycle: rule storage structures and update costs.

Reproduces the paper's section 3.1 session model against an on-disk
database: build up a rule base over several sessions, watch the compiled
rule storage (``rulesource`` + ``reachablepreds``) grow, and compare the
compiled-form configuration against source-only storage — the time/space
and query-vs-update tradeoff of the paper's conclusions 1-2.

Run:  python examples/stored_dkb_lifecycle.py
"""

import os
import tempfile

from repro import Testbed, TestbedConfig
from repro.workloads.rulegen import make_rule_base


def populate(testbed: Testbed, total_rules: int = 60) -> str:
    """Store a synthetic rule base and return the canonical query."""
    rule_base = make_rule_base(total_rules, 8, relevant_predicates=8)
    for base in rule_base.base_predicates:
        testbed.define_base_relation(base, ("TEXT", "TEXT"))
    testbed.workspace.add_clauses(rule_base.program.rules)
    update = testbed.update_stored_dkb()
    print(f"  stored {len(update.new_rules)} rules, "
          f"+{update.new_closure_pairs} closure pairs, "
          f"t_u = {update.timings.total * 1000:.2f} ms "
          f"(extract {update.timings.extract * 1000:.2f}, "
          f"closure {update.timings.closure * 1000:.2f}, "
          f"store {update.timings.store * 1000:.2f})")
    testbed.load_facts(
        rule_base.query_module.base_predicate,
        [(chr(97 + i), chr(98 + i)) for i in range(10)],
    )
    return rule_base.query_text()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "dkb.sqlite")

        print("session 1: build and store the D/KB (compiled rule storage)")
        with Testbed(path) as tb:
            query = populate(tb)

        print("session 2: reopen — rules persist, queries compile from disk")
        with Testbed(path) as tb:
            print(f"  stored rules: {tb.stored_rule_count}, "
                  f"stored predicates: {tb.stored_predicate_count}")
            result = tb.query(query)
            timings = result.compilation.timings
            print(f"  answered {len(result.rows)} rows; compile breakdown: "
                  f"extract {timings.extract * 1000:.2f} ms, "
                  f"readdict {timings.readdict * 1000:.2f} ms, "
                  f"gencompile {timings.gencompile * 1000:.2f} ms")
            print(f"  relevant rules extracted: "
                  f"{result.compilation.counts['stored_rules_extracted']} "
                  f"of {tb.stored_rule_count}")

        print("same workload, source-only rule storage (no reachablepreds):")
        with Testbed(TestbedConfig(compiled_rule_storage=False)) as tb:
            query = populate(tb)
            result = tb.query(query)
            print(f"  compile-time extraction now chases reachability: "
                  f"extract {result.compilation.timings.extract * 1000:.2f} ms "
                  f"(vs one indexed query with compiled storage)")

    print("\ntradeoff (paper conclusions 1-2): compiled storage costs more "
          "at update time,\nsource-only costs more at every query "
          "compilation — pick by workload.")


if __name__ == "__main__":
    main()
