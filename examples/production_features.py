"""Production features tour: adaptive optimization, precompilation, constraints.

The paper's conclusions sketch features its testbed did not implement; this
reproduction builds them out.  This example exercises all three on one
knowledge base:

* the **adaptive optimizer** (conclusion 4) probes each query's selectivity
  and switches magic sets on only when it pays;
* **query precompilation** (conclusion 3) caches compiled programs and
  invalidates them when rule updates could change the plan;
* **integrity constraints** (a section-4.3 gap) guard stored-D/KB updates.

Run:  python examples/production_features.py
"""

from repro import Testbed
from repro.errors import UpdateError
from repro.workloads.relations import full_binary_trees, tree_node, first_node_at_level


def main() -> None:
    testbed = Testbed()
    relation = full_binary_trees(1, 9)
    testbed.define(
        """
        reports_to(X, Y) :- manager(X, Y).
        reports_to(X, Y) :- manager(X, Z), reports_to(Z, Y).
        % nobody may (transitively) manage themselves
        inconsistent(X) :- reports_to(X, X).
        """
    )
    testbed.define_base_relation("manager", ("TEXT", "TEXT"))
    testbed.load_facts("manager", relation.edges)
    print(f"org chart: {relation.tuple_count} direct reporting edges")

    # --- adaptive optimization -------------------------------------------------
    print("\nadaptive optimizer (optimize='auto'):")
    for label, index in (("CEO", 1), ("team lead", first_node_at_level(7))):
        root = tree_node("t", index)
        result = testbed.query(f"?- reports_to('{root}', Y).", optimize="auto")
        decision = result.compilation.adaptive_decision
        print(
            f"  {label:<10} {len(result.rows):>4} reports; policy chose "
            f"{'magic sets' if decision.use_magic else 'plain evaluation'} "
            f"(estimated selectivity "
            f"{decision.estimated_selectivity:.0%}: {decision.reason})"
        )

    # --- precompilation ----------------------------------------------------------
    print("\nquery precompilation:")
    query = f"?- reports_to('{tree_node('t', 4)}', Y)."
    first = testbed.query(query, precompile=True)
    repeat = testbed.query(query, precompile=True)
    stats = testbed.precompiled.statistics
    print(
        f"  first run compiled in {first.compile_seconds * 1000:.2f} ms; "
        f"repeat served from cache (hits={stats.hits}, misses={stats.misses})"
    )
    testbed.define("reports_to(X, Y) :- dotted_line(X, Y). dotted_line(a, b).")
    print(
        f"  after a new reports_to rule the cache holds "
        f"{len(testbed.precompiled)} plans "
        f"({stats.invalidations} invalidated)"
    )

    # --- integrity constraints ----------------------------------------------------
    print("\nintegrity constraints:")
    print(f"  violations now: {len(testbed.check_consistency())}")
    testbed.load_facts("manager", [(tree_node("t", 8), tree_node("t", 1))])
    violations = testbed.check_consistency()
    print(f"  after adding a cyclic edge: {violations[0].describe()}")
    try:
        testbed.update_stored_dkb(verify_consistency=True)
    except UpdateError:
        print("  stored-D/KB update refused while the cycle exists")

    testbed.close()


if __name__ == "__main__":
    main()
