"""Same-generation cousins — the other canonical recursive query.

``same_generation`` is the standard benchmark for non-linear information
passing: the recursive rule walks *up* the family tree, sideways through
``flat``, and back *down*, so the magic set must follow the ``up`` edges.
The example builds a multi-generation genealogy and finds everyone in the
same generation as a given person.

Run:  python examples/same_generation.py
"""

from repro import Testbed
from repro.workloads.queries import SAME_GENERATION_RULES


def build_genealogy(testbed: Testbed, generations: int = 5, width: int = 3):
    """A layered genealogy: generation g person i has a parent in g-1."""
    testbed.define_base_relation("up", ("TEXT", "TEXT"))
    testbed.define_base_relation("down", ("TEXT", "TEXT"))
    testbed.define_base_relation("flat", ("TEXT", "TEXT"))
    up, down, flat = [], [], []
    for generation in range(1, generations):
        for index in range(width):
            child = f"g{generation}_{index}"
            parent = f"g{generation - 1}_{index % width}"
            up.append((child, parent))  # child -up-> parent
            down.append((parent, child))
    # Siblings at the top generation are trivially same-generation.
    for i in range(width):
        for j in range(width):
            if i != j:
                flat.append((f"g0_{i}", f"g0_{j}"))
    testbed.load_facts("up", up)
    testbed.load_facts("down", down)
    testbed.load_facts("flat", flat)
    return len(up) + len(down) + len(flat)


def main() -> None:
    testbed = Testbed()
    testbed.define(SAME_GENERATION_RULES)
    facts = build_genealogy(testbed)
    print(f"genealogy: {facts} facts across up/down/flat")

    person = "g3_1"
    plain = testbed.query(f"?- same_generation('{person}', Y).")
    magic = testbed.query(f"?- same_generation('{person}', Y).", optimize=True)
    assert sorted(plain.rows) == sorted(magic.rows)
    peers = sorted(y for (y,) in magic.rows if y != person)
    print(f"same generation as {person}: {peers}")
    print(f"timing: plain {plain.execution_seconds * 1000:.2f} ms "
          f"({plain.execution.tuples_by_predicate.get('same_generation', 0)} "
          f"sg tuples materialised), magic "
          f"{magic.execution_seconds * 1000:.2f} ms")

    # Show the rewritten rule set the optimizer produced.
    fragment = testbed.explain(
        f"?- same_generation('{person}', Y).", optimize=True
    )
    print("\nmagic-rewritten rules in the generated fragment:")
    for line in fragment.splitlines():
        if "m_same_generation" in line and "SELECT" not in line:
            print(" ", line.strip())

    testbed.close()


if __name__ == "__main__":
    main()
