"""Command parsing and execution for the User Interface.

The User Interface is the fourth component of the testbed architecture
(paper Figure 5): it "handles interactions with the user", feeding rules,
facts, and queries to the Knowledge Manager and presenting results.

Input lines are one of:

* Horn clauses (facts or rules), possibly spanning lines until the ``.``;
* queries starting with ``?-``;
* ``:commands`` controlling the session (see :data:`HELP_TEXT`).

Execution is separated from I/O so the interpreter is fully testable: every
entry point takes strings and returns strings.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..analysis import Severity
from ..errors import TestbedError
from ..km.session import QueryResult, Testbed
from ..obs.export import render_span_tree
from ..runtime.program import LfpStrategy

HELP_TEXT = """\
Enter Horn clauses ('parent(a, b).', 'anc(X,Y) :- parent(X,Y).'),
queries ('?- anc(a, X).'), or commands:
  :help                 this message
  :strategy [NAME]      show or set LFP strategy (naive, seminaive, lfp_operator)
  :optimize [on|off|auto]  show or set the magic sets optimization policy
  :explain QUERY        show the generated program fragment for QUERY
  :update               move workspace rules into the stored D/KB
  :workspace            list workspace rules
  :simplify             drop tautological/subsumed workspace rules
  :stored               summarise the stored D/KB
  :relations            list base relations with types and sizes
  :facts PRED           show the tuples of a base relation
  :materialize PRED     materialize a derived predicate as a persistent view
  :refresh [PRED]       recompute materialized views (one, or all)
  :views                list materialized views with freshness and sizes
  :dropview PRED        drop a materialized view
  :load FILE            read clauses from FILE
  :save FILE            write the workspace rules to FILE
  :check                run the static analyzer and the integrity constraints
  :lint [QUERY]         statically analyze the rule base (all findings)
  :timing [on|off]      show or toggle timing output
  :trace [on|off]       toggle tracing, or show the last query's span tree
  :stats                show the tracer's metric snapshot
  :clear                clear the workspace
  :quit                 leave the session"""

PROMPT = "dkb> "
CONTINUATION_PROMPT = "...> "


@dataclasses.dataclass
class SessionState:
    """Mutable interpreter settings."""

    strategy: LfpStrategy = LfpStrategy.SEMINAIVE
    optimize: str = "off"  # off | on | auto
    timing: bool = False


class CommandInterpreter:
    """Executes one logical input line against a testbed session."""

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.state = SessionState()
        self.finished = False
        self._commands: dict[str, Callable[[str], str]] = {
            "help": lambda __: HELP_TEXT,
            "strategy": self._cmd_strategy,
            "optimize": self._cmd_optimize,
            "explain": self._cmd_explain,
            "update": self._cmd_update,
            "workspace": self._cmd_workspace,
            "simplify": self._cmd_simplify,
            "stored": self._cmd_stored,
            "relations": self._cmd_relations,
            "facts": self._cmd_facts,
            "materialize": self._cmd_materialize,
            "refresh": self._cmd_refresh,
            "views": self._cmd_views,
            "dropview": self._cmd_dropview,
            "load": self._cmd_load,
            "save": self._cmd_save,
            "check": self._cmd_check,
            "lint": self._cmd_lint,
            "timing": self._cmd_timing,
            "trace": self._cmd_trace,
            "stats": self._cmd_stats,
            "clear": self._cmd_clear,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }

    # -- dispatch ------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Execute one complete input line; return the text to display."""
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            return ""
        try:
            if stripped.startswith(":"):
                return self._execute_command(stripped[1:])
            if stripped.startswith("?-"):
                return self._execute_query(stripped)
            return self._execute_clauses(stripped)
        except TestbedError as error:
            return f"error: {error}"

    @staticmethod
    def needs_continuation(buffer: str) -> bool:
        """Whether ``buffer`` is an incomplete clause awaiting more input."""
        stripped = buffer.strip()
        if not stripped or stripped.startswith(":"):
            return False
        return not stripped.rstrip().endswith(".")

    def _execute_command(self, body: str) -> str:
        name, __, argument = body.partition(" ")
        handler = self._commands.get(name.strip().lower())
        if handler is None:
            return f"unknown command :{name} (try :help)"
        return handler(argument.strip())

    # -- clauses and queries ----------------------------------------------------

    def _execute_clauses(self, text: str) -> str:
        added = self.testbed.define(text)
        facts = sum(1 for c in added if c.is_fact)
        rules = len(added) - facts
        parts = []
        if rules:
            parts.append(f"{rules} rule{'s' if rules != 1 else ''}")
        if facts:
            parts.append(f"{facts} fact{'s' if facts != 1 else ''}")
        if not parts:
            return "ok (nothing new)"
        return "added " + " and ".join(parts)

    def _execute_query(self, text: str) -> str:
        optimize: bool | str
        optimize = "auto" if self.state.optimize == "auto" else (
            self.state.optimize == "on"
        )
        result = self.testbed.query(
            text, optimize=optimize, strategy=self.state.strategy
        )
        return self._format_result(result)

    def _format_result(self, result: QueryResult) -> str:
        lines = []
        for row in sorted(set(result.rows)):
            rendered = ", ".join(str(v) for v in row)
            lines.append(f"  ({rendered})")
        count = len(set(result.rows))
        lines.append(f"{count} answer{'s' if count != 1 else ''}")
        if self.state.timing:
            if result.answered_from_view:
                lines.append(
                    f"t_e = {result.execution_seconds * 1000:.2f} ms "
                    "(answered from materialized view)"
                )
            else:
                lines.append(
                    f"t_c = {result.compile_seconds * 1000:.2f} ms, "
                    f"t_e = {result.execution_seconds * 1000:.2f} ms, "
                    f"iterations = {result.execution.total_iterations}, "
                    f"optimized = {result.compilation.optimized}"
                )
        return "\n".join(lines)

    # -- commands -------------------------------------------------------------

    def _cmd_strategy(self, argument: str) -> str:
        if not argument:
            return f"strategy: {self.state.strategy.value}"
        try:
            self.state.strategy = LfpStrategy(argument.lower())
        except ValueError:
            names = ", ".join(s.value for s in LfpStrategy)
            return f"unknown strategy {argument!r} (one of: {names})"
        return f"strategy set to {self.state.strategy.value}"

    def _cmd_optimize(self, argument: str) -> str:
        if not argument:
            return f"optimize: {self.state.optimize}"
        choice = argument.lower()
        if choice not in ("on", "off", "auto"):
            return "usage: :optimize [on|off|auto]"
        self.state.optimize = choice
        return f"optimize set to {choice}"

    def _cmd_explain(self, argument: str) -> str:
        if not argument:
            return "usage: :explain ?- goal(...)."
        return self.testbed.explain(
            argument, optimize=(self.state.optimize == "on")
        )

    def _cmd_update(self, __: str) -> str:
        result = self.testbed.update_stored_dkb()
        return (
            f"stored {len(result.new_rules)} rules "
            f"({len(result.new_predicates)} new predicates, "
            f"+{result.new_closure_pairs} closure pairs) "
            f"in {result.timings.total * 1000:.2f} ms"
        )

    def _cmd_workspace(self, __: str) -> str:
        rules = self.testbed.workspace.rules
        if not rules:
            return "workspace is empty"
        return "\n".join(f"  {clause}" for clause in rules)

    def _cmd_simplify(self, __: str) -> str:
        removed = self.testbed.workspace.simplify()
        if not removed:
            return "nothing redundant"
        lines = [f"removed {len(removed)} redundant rules:"]
        lines.extend(f"  {clause}" for clause in removed)
        return "\n".join(lines)

    def _cmd_relations(self, __: str) -> str:
        names = self.testbed.catalog.relation_names()
        if not names:
            return "no base relations"
        types = self.testbed.catalog.types_of(names)
        lines = []
        for name in names:
            columns = ", ".join(types[name])
            count = self.testbed.catalog.fact_count(name)
            lines.append(f"  {name}({columns}): {count} tuples")
        return "\n".join(lines)

    def _cmd_facts(self, argument: str) -> str:
        if not argument:
            return "usage: :facts PREDICATE"
        from ..errors import CatalogError

        try:
            rows = self.testbed.catalog.facts_of(argument)
        except CatalogError as error:
            return f"error: {error}"
        lines = [f"  ({', '.join(str(v) for v in row)})" for row in sorted(rows)]
        lines.append(f"{len(rows)} tuples")
        return "\n".join(lines)

    def _cmd_materialize(self, argument: str) -> str:
        if not argument:
            return "usage: :materialize PREDICATE"
        count = self.testbed.materialize(argument)
        return f"materialized {argument}: {count} tuples"

    def _cmd_refresh(self, argument: str) -> str:
        results = self.testbed.refresh(argument or None)
        if not results:
            return "no materialized views"
        lines = []
        for result in results:
            view = "+".join(result.views)
            lines.append(
                f"refreshed {view}: {result.tuples_added} tuples "
                f"in {result.seconds * 1000:.2f} ms"
            )
        return "\n".join(lines)

    def _cmd_views(self, __: str) -> str:
        infos = self.testbed.views.views()
        if not infos:
            return "no materialized views"
        lines = []
        for info in infos:
            count = self.testbed.views.tuple_count(info.predicate)
            state = "fresh" if info.fresh else "stale"
            lines.append(
                f"  {info.predicate}/{info.arity}: {count} tuples, "
                f"{state}, epoch {info.epoch}"
            )
        return "\n".join(lines)

    def _cmd_dropview(self, argument: str) -> str:
        if not argument:
            return "usage: :dropview PREDICATE"
        self.testbed.drop_view(argument)
        return f"dropped view {argument}"

    def _cmd_stored(self, __: str) -> str:
        return (
            f"stored D/KB: {self.testbed.stored_rule_count} rules, "
            f"{self.testbed.stored_predicate_count} derived predicates, "
            f"{len(self.testbed.catalog.relation_names())} base relations"
        )

    def _cmd_load(self, argument: str) -> str:
        if not argument:
            return "usage: :load FILE"
        try:
            with open(argument) as handle:
                text = handle.read()
        except OSError as error:
            return f"error: {error}"
        added = self.testbed.define(text)
        return f"loaded {len(added)} clauses from {argument}"

    def _cmd_save(self, argument: str) -> str:
        if not argument:
            return "usage: :save FILE"
        rules = self.testbed.workspace.rules
        try:
            with open(argument, "w") as handle:
                for clause in rules:
                    handle.write(f"{clause}\n")
        except OSError as error:
            return f"error: {error}"
        return f"saved {len(rules)} rules to {argument}"

    def _cmd_check(self, __: str) -> str:
        lines = []
        report = self.testbed.lint()
        findings = [
            d for d in report if d.severity.rank <= Severity.WARNING.rank
        ]
        if findings:
            count = len(findings)
            lines.append(f"lint: {count} finding{'s' if count != 1 else ''}")
            lines.extend(f"  {d}" for d in findings)
        violations = self.testbed.check_consistency()
        if not violations:
            lines.append("consistent (no constraint violations)")
        else:
            lines.extend(f"  {v.describe()}" for v in violations)
        return "\n".join(lines)

    def _cmd_lint(self, argument: str) -> str:
        report = self.testbed.lint(argument or None)
        return report.render()

    def _cmd_timing(self, argument: str) -> str:
        if argument.lower() in ("on", "off"):
            self.state.timing = argument.lower() == "on"
        elif argument:
            return "usage: :timing [on|off]"
        else:
            self.state.timing = not self.state.timing
        return f"timing {'on' if self.state.timing else 'off'}"

    def _cmd_trace(self, argument: str) -> str:
        choice = argument.lower()
        if choice == "on":
            self.testbed.enable_tracing()
            return "tracing on"
        if choice == "off":
            self.testbed.disable_tracing()
            return "tracing off"
        if argument:
            return "usage: :trace [on|off]"
        if self.testbed.tracer is None:
            return "tracing is off (enable with :trace on)"
        span = self.testbed.last_query_span
        if span is None:
            return "no traced query yet"
        return render_span_tree(span)

    def _cmd_stats(self, __: str) -> str:
        tracer = self.testbed.tracer
        if tracer is None:
            return "tracing is off (enable with :trace on)"
        return tracer.metrics.render()

    def _cmd_clear(self, __: str) -> str:
        self.testbed.clear_workspace()
        return "workspace cleared"

    def _cmd_quit(self, __: str) -> str:
        self.finished = True
        return "bye"
