"""The interactive read-eval-print loop of the User Interface.

Wraps :class:`~repro.ui.commands.CommandInterpreter` with line buffering
(clauses may span lines until their terminating ``.``) and stream handling.
``python -m repro`` lands here.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from ..km.config import TestbedConfig
from ..km.session import Testbed
from .commands import CONTINUATION_PROMPT, PROMPT, CommandInterpreter

BANNER = """\
D/KBMS testbed — reproduction of Ramnarayan & Lu, SIGMOD 1988
Type Horn clauses, '?- goal(...).' queries, or :help for commands."""


def run_repl(
    testbed: Testbed,
    input_stream: IO[str],
    output_stream: IO[str],
    interactive: bool = True,
) -> int:
    """Drive the interpreter over ``input_stream`` until EOF or ``:quit``.

    Returns a process exit code (0 on a clean exit).
    """
    interpreter = CommandInterpreter(testbed)
    if interactive:
        print(BANNER, file=output_stream)
    buffer = ""
    while not interpreter.finished:
        if interactive:
            prompt = CONTINUATION_PROMPT if buffer else PROMPT
            output_stream.write(prompt)
            output_stream.flush()
        line = input_stream.readline()
        if not line:
            break
        buffer = f"{buffer}\n{line}" if buffer else line
        if interpreter.needs_continuation(buffer):
            continue
        response = interpreter.execute(buffer)
        buffer = ""
        if response:
            print(response, file=output_stream)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive D/KBMS testbed session.",
    )
    parser.add_argument(
        "database",
        nargs="?",
        default=":memory:",
        help="SQLite database path for the stored D/KB (default: in-memory)",
    )
    parser.add_argument(
        "--source-only",
        action="store_true",
        help="store rules in source form only (no compiled reachablepreds)",
    )
    parser.add_argument(
        "--load",
        metavar="FILE",
        action="append",
        default=[],
        help="read clauses from FILE before the session starts",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="start with structured tracing enabled (see :trace / :stats)",
    )
    arguments = parser.parse_args(argv)

    with Testbed(
        TestbedConfig(
            path=arguments.database,
            compiled_rule_storage=not arguments.source_only,
            trace=arguments.trace,
        )
    ) as testbed:
        for path in arguments.load:
            with open(path) as handle:
                testbed.define(handle.read())
        interactive = sys.stdin.isatty()
        return run_repl(testbed, sys.stdin, sys.stdout, interactive)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
