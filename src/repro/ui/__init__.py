"""The User Interface component (paper Figure 5).

A line-oriented interactive session over a :class:`~repro.km.session.Testbed`:
Horn clause entry, queries, and session commands, plus the ``python -m repro``
entry point.
"""

from .commands import HELP_TEXT, CommandInterpreter, SessionState
from .repl import main, run_repl

__all__ = [
    "CommandInterpreter",
    "HELP_TEXT",
    "SessionState",
    "main",
    "run_repl",
]
