"""The versioned query-result cache.

Results are keyed by ``(canonicalized query text, D/KB version)``: a cached
answer is served only to a reader whose snapshot is at exactly the version
the answer was computed under, so the cache can never return stale rows —
every write bumps the version (see :mod:`repro.server.pool`), which makes
all older entries unreachable and leaves them to LRU eviction.

Canonicalization parses the query and re-renders it, so two requests that
differ only in whitespace or in how the constants arrive (inline vs the
protocol's ``bindings`` object) share one entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..datalog.clauses import Query
from ..datalog.parser import parse_query
from ..datalog.terms import Constant, Variable
from ..errors import ParseError
from ..obs.metrics import MetricsRegistry

DEFAULT_CACHE_CAPACITY = 256


def canonical_query(
    query: "str | Query", bindings: Optional[Mapping[str, Any]] = None
) -> str:
    """The canonical text of ``query`` with ``bindings`` substituted.

    ``bindings`` maps variable names to constant values; variables not
    mentioned stay free.  The result is a valid query string (the parse /
    render round trip is stable), used both as the cache key and as the
    query actually compiled.

    Raises:
        ParseError: when the query text does not parse, or a binding names
            a variable the query does not use.
    """
    parsed = parse_query(query) if isinstance(query, str) else query
    if bindings:
        by_name = {v.name: v for g in parsed.goals for v in g.variables}
        unknown = sorted(set(bindings) - set(by_name))
        if unknown:
            raise ParseError(
                "bindings name variables not in the query: "
                + ", ".join(repr(n) for n in unknown)
            )
        mapping: dict[Variable, Constant] = {
            by_name[name]: Constant(value) for name, value in bindings.items()
        }
        parsed = Query(tuple(g.substitute(mapping) for g in parsed.goals))
    return str(parsed)


@dataclass(frozen=True)
class CachedResult:
    """One cached answer: the rows plus how they were produced."""

    rows: tuple[tuple, ...]
    version: int
    answered_from_view: bool = False
    compute_seconds: float = 0.0


class VersionedResultCache:
    """A thread-safe LRU of :class:`CachedResult` keyed by (query, version).

    Hit/miss/eviction counters are kept locally and, when a
    :class:`~repro.obs.metrics.MetricsRegistry` is attached, mirrored into
    the ``server.cache.*`` counter family so the service's ``stats`` op and
    the observability exports see the same numbers.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, int], CachedResult] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self._metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache.

        Reads the hit/miss pair under the lock: a concurrent ``get``
        between the two reads would otherwise yield a torn ratio (hits
        from after the lookup, total from before).
        """
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, key: str, version: int) -> Optional[CachedResult]:
        """The cached result for ``key`` at exactly ``version``, if any."""
        with self._lock:
            entry = self._entries.get((key, version))
            if entry is not None:
                self._entries.move_to_end((key, version))
                self.hits += 1
            else:
                self.misses += 1
        if self._metrics is not None:
            name = "server.cache.hits" if entry else "server.cache.misses"
            self._metrics.counter(name).inc()
        return entry

    def put(self, key: str, result: CachedResult) -> None:
        """Store one answer; evicts least-recently-used entries beyond capacity."""
        evicted = 0
        with self._lock:
            self._entries[(key, result.version)] = result
            self._entries.move_to_end((key, result.version))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted and self._metrics is not None:
            self._metrics.counter("server.cache.evictions").inc(evicted)

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict[str, float | int]:
        """JSON-friendly counters for the ``stats`` op.

        All counters are read in one critical section so the snapshot is
        internally consistent (``hit_rate`` matches ``hits``/``misses``
        exactly, even while other threads are calling :meth:`get`).  The
        hit rate is recomputed inline because ``_lock`` is not reentrant.
        """
        with self._lock:
            hits = self.hits
            misses = self.misses
            total = hits + misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "hit_rate": hits / total if total else 0.0,
            }
