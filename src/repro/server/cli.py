"""``python -m repro serve`` / ``bench-serve`` — the query-server CLIs.

``serve`` boots the concurrent query server on a D/KB file (optionally
seeding a demo ancestor workload first) and runs until interrupted.
``bench-serve`` runs the two server benchmarks in-process — throughput
scaling across reader-session counts and the cold/warm cache A/B — prints
the tables, optionally writes ``BENCH_*.json`` artifacts, and exits
non-zero when the run shows protocol errors or a cold cache, so CI can
gate on it.

Heavyweight imports happen inside the entry points, keeping
``python -m repro``'s startup light.
"""

from __future__ import annotations

import argparse


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a D/KB file to concurrent clients over the "
        "line-oriented JSON protocol.",
    )
    parser.add_argument("db", help="SQLite path for the shared D/KB file")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7407, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--readers",
        type=int,
        default=4,
        help="reader sessions = max concurrent connections (default: 4)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="result-cache capacity in entries; 0 disables (default: 256)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-query evaluation budget in seconds (default: 30)",
    )
    parser.add_argument(
        "--demo-depth",
        type=int,
        default=0,
        metavar="DEPTH",
        help="seed the ancestor rules plus a full binary tree of DEPTH "
        "levels before serving (useful for trying the server out)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="open pooled sessions with structured tracing enabled",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus /metrics on this side port (0 = ephemeral; "
        "omit for no exporter and zero serving overhead)",
    )
    watchdog = parser.add_argument_group("SLO watchdog")
    watchdog.add_argument(
        "--watchdog",
        action="store_true",
        help="run the SLO watchdog: on breach escalate tracing, switch the "
        "default LFP strategy, and tighten admission — all reverted on "
        "recovery",
    )
    watchdog.add_argument(
        "--slo-p95-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="latency SLO: breach when windowed p95 exceeds MS "
        "(default: 250)",
    )
    watchdog.add_argument(
        "--slo-cache-hit-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="cache SLO: breach when the windowed hit rate falls below "
        "FRACTION (default: off)",
    )
    watchdog.add_argument(
        "--slo-window",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="time-series window width in seconds (default: 5)",
    )
    return parser


def serve_main(argv: "list[str] | None" = None) -> int:
    from ..server.service import DkbServer, ServerConfig, WatchdogConfig

    arguments = build_serve_parser().parse_args(argv)
    if arguments.demo_depth:
        from ..bench.server import _seed_dkb

        _seed_dkb(arguments.db, arguments.demo_depth)
        print(
            f"seeded ancestor demo D/KB (tree depth {arguments.demo_depth}) "
            f"into {arguments.db}"
        )
    watchdog = None
    if arguments.watchdog:
        watchdog = WatchdogConfig(
            window_seconds=arguments.slo_window,
            p95_ms=arguments.slo_p95_ms,
            cache_hit_rate=arguments.slo_cache_hit_rate,
        )
    config = ServerConfig(
        path=arguments.db,
        host=arguments.host,
        port=arguments.port,
        readers=arguments.readers,
        cache_size=arguments.cache_size,
        request_timeout=arguments.request_timeout,
        trace=arguments.trace,
        metrics_port=arguments.metrics_port,
        watchdog=watchdog,
    )
    server = DkbServer(config)
    host, port = server.address
    print(
        f"serving {arguments.db} on {host}:{port} "
        f"({config.readers} reader sessions, cache={config.cache_size})"
    )
    if server.exporter is not None:
        mhost, mport = server.exporter.address
        print(f"metrics: http://{mhost}:{mport}/metrics")
    if server.watchdog is not None:
        print(
            f"watchdog: p95<{arguments.slo_p95_ms}ms over "
            f"{arguments.slo_window}s windows"
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench-serve",
        description="Run the server benchmarks: throughput scaling across "
        "reader counts and the cold/warm result-cache A/B.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small tree, short burst (for smoke tests and CI)",
    )
    parser.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="write BENCH_*.json artifacts into DIR",
    )
    parser.add_argument(
        "--clients", type=int, default=8, help="closed-loop clients (default: 8)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds per measurement (default: 4, quick: 2)",
    )
    return parser


def bench_serve_main(argv: "list[str] | None" = None) -> int:
    import os

    from ..bench.reporting import write_bench_json
    from ..bench.server import (
        format_cache_ab,
        format_server_scaling,
        run_cache_ab,
        run_server_scaling,
    )

    arguments = build_bench_parser().parse_args(argv)
    depth = 6 if arguments.quick else 7
    duration = arguments.duration or (2.0 if arguments.quick else 4.0)

    scaling = run_server_scaling(
        depth=depth,
        reader_counts=(1, 8),
        clients=arguments.clients,
        duration=duration,
    )
    print("Throughput scaling (fig-12 ancestor mix, closed-loop clients):")
    print(format_server_scaling(scaling))
    print()
    cache = run_cache_ab(depth=6 if arguments.quick else 8)
    print("Result cache A/B (one session, served seconds):")
    print(format_cache_ab(cache))

    if arguments.report:
        os.makedirs(arguments.report, exist_ok=True)
        print()
        print(
            write_bench_json(
                os.path.join(arguments.report, "BENCH_server_scaling.json"),
                "server_scaling",
                scaling,
                depth=depth,
                clients=arguments.clients,
                duration=duration,
            )
        )
        print(
            write_bench_json(
                os.path.join(arguments.report, "BENCH_server_cache.json"),
                "server_cache_ab",
                [cache],
                speedup=cache.speedup,
            )
        )

    failures = []
    if any(point.errors for point in scaling):
        failures.append("protocol errors during the scaling run")
    if all(point.cache_hit_fraction == 0.0 for point in scaling):
        failures.append("result cache never hit during the scaling run")
    if cache.hits == 0:
        failures.append("cache A/B recorded no hits")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def build_bench_adaptive_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench-adaptive",
        description="Run the adaptive-serving loop: steady traffic, "
        "injected degradation (cold cache + unbound deep recursion), then "
        "recovery — measuring how fast the SLO watchdog detects, adapts, "
        "and de-escalates.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small tree, short phases (for smoke tests and CI)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="closed-loop clients (default: 4)"
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog window width (default: 0.5, quick: 0.4)",
    )
    parser.add_argument(
        "--slo-p95-ms",
        type=float,
        default=25.0,
        metavar="MS",
        help="the latency objective the degradation must breach "
        "(default: 25)",
    )
    parser.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="write BENCH_adaptive.json into DIR",
    )
    return parser


def bench_adaptive_main(argv: "list[str] | None" = None) -> int:
    import os

    from ..bench.adaptive import format_adaptive_loop, run_adaptive_loop
    from ..bench.reporting import write_bench_json

    arguments = build_bench_adaptive_parser().parse_args(argv)
    depth = 6 if arguments.quick else 7
    window = arguments.interval or (0.4 if arguments.quick else 0.5)
    result = run_adaptive_loop(
        depth=depth,
        window_seconds=window,
        clients=arguments.clients,
        degraded_windows=6 if arguments.quick else 8,
        recovery_windows=10 if arguments.quick else 12,
        p95_threshold_ms=arguments.slo_p95_ms,
    )
    print("Adaptive serving loop (SLO watchdog under injected degradation):")
    print(format_adaptive_loop(result))

    if arguments.report:
        os.makedirs(arguments.report, exist_ok=True)
        print()
        print(
            write_bench_json(
                os.path.join(arguments.report, "BENCH_adaptive.json"),
                "adaptive_loop",
                [result],
                depth=depth,
                clients=arguments.clients,
            )
        )

    failures = []
    if not result.detected:
        failures.append("the watchdog never detected the injected breach")
    elif result.detection_windows is not None and result.detection_windows > 3:
        failures.append(
            f"detection took {result.detection_windows} windows (> 3)"
        )
    if result.detected and not result.breach_actions:
        failures.append("the breach applied no serving escalations")
    if not result.recovered:
        failures.append("the watchdog never recovered after the degradation")
    if not result.restored:
        failures.append("escalations were not reverted by the end of the run")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(serve_main())
