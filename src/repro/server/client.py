"""A blocking client for the query server's wire protocol."""

from __future__ import annotations

import itertools
import socket
from typing import Any, Optional

from .protocol import (
    MAX_MESSAGE_BYTES,
    ErrorCode,
    ProtocolError,
    decode_line,
    encode_message,
)


class ServerError(Exception):
    """A structured error reply from the server.

    ``details`` carries the machine-readable hints of the error object
    (empty for most codes); the retryable cluster codes are raised as the
    typed subclasses below so callers can catch them specifically.
    """

    def __init__(
        self,
        code: str,
        message: str,
        details: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details: dict[str, Any] = dict(details) if details else {}

    @property
    def retry_after(self) -> Optional[float]:
        """Seconds after which a retry may succeed (``None`` = no hint)."""
        value = self.details.get("retry_after")
        return float(value) if value is not None else None

    @property
    def leader(self) -> Optional[tuple[str, int]]:
        """``(host, port)`` of the backend that can serve this request."""
        value = self.details.get("leader")
        if not value:
            return None
        host, port = value
        return str(host), int(port)


class WrongShardError(ServerError):
    """The request reached a shard that does not own its key.

    Retryable: re-route using ``leader`` (when hinted) or a refreshed
    partition map.  ``details['shard']`` is the replying shard's id.
    """


class StaleReplicaError(ServerError):
    """A replica read could not satisfy the request's version floor.

    Retryable: wait ``retry_after`` seconds for replication to catch up, or
    go straight to the shard primary named by ``leader``.
    ``details['version']`` is the replica's watermark,
    ``details['min_version']`` the floor that failed.
    """


#: error code -> exception class raised by :meth:`DkbClient.request`.
_TYPED_ERRORS: dict[str, type[ServerError]] = {
    ErrorCode.WRONG_SHARD: WrongShardError,
    ErrorCode.STALE_REPLICA: StaleReplicaError,
}


class DkbClient:
    """One connection to a :class:`~repro.server.service.DkbServer`.

    Sends one request line, blocks for the one reply line.  Success replies
    come back as plain dicts; error replies raise :class:`ServerError`
    carrying the structured code.  Usable as a context manager.
    """

    def __init__(self, host: str, port: int, timeout: float | None = 30.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._file = self._socket.makefile("rwb")
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "DkbClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the wire ----------------------------------------------------------

    def request(self, op: str, **payload: Any) -> dict[str, Any]:
        """Send one request and return the success reply.

        Raises:
            ServerError: the server replied with a structured error.
            ConnectionError: the server closed the connection.
            ProtocolError: the reply was truncated (no line terminator) —
                an oversized or partial frame, never valid JSON to parse.
        """
        message = {"op": op, "id": next(self._ids)}
        message.update({k: v for k, v in payload.items() if v is not None})
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline(MAX_MESSAGE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # readline returned because it hit the byte cap or the peer
            # closed mid-line — either way this is a partial frame, not a
            # complete reply, and must not be handed to the decoder as one.
            raise ProtocolError(
                ErrorCode.PARSE_ERROR,
                f"reply truncated after {len(line)} bytes with no line "
                "terminator (oversized or partial frame)",
            )
        reply = decode_line(line)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            code = error.get("code", "INTERNAL")
            raise _TYPED_ERRORS.get(code, ServerError)(
                code, error.get("message", ""), error.get("details")
            )
        return reply

    # -- op helpers --------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def query(
        self,
        q: str,
        bindings: Optional[dict[str, Any]] = None,
        strategy: Optional[str] = None,
        optimize: Optional[bool] = None,
        use_views: Optional[bool] = None,
        use_cache: Optional[bool] = None,
        min_version: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> dict[str, Any]:
        return self.request(
            "query",
            q=q,
            bindings=bindings,
            strategy=strategy,
            optimize=optimize,
            use_views=use_views,
            use_cache=use_cache,
            min_version=min_version,
            shard=shard,
        )

    def insert(
        self,
        predicate: str,
        rows: list,
        shard: Optional[int] = None,
        types: Optional[list[str]] = None,
    ) -> dict[str, Any]:
        return self.request(
            "update", predicate=predicate, action="insert", rows=rows,
            shard=shard, types=types,
        )

    def delete(
        self, predicate: str, rows: list, shard: Optional[int] = None
    ) -> dict[str, Any]:
        return self.request(
            "update", predicate=predicate, action="delete", rows=rows,
            shard=shard,
        )

    def define(self, program: str) -> dict[str, Any]:
        return self.request("define", program=program)

    def materialize(self, predicate: str) -> dict[str, Any]:
        return self.request("materialize", predicate=predicate)

    def lint(self, q: Optional[str] = None) -> dict[str, Any]:
        return self.request("lint", q=q)

    def stats(self) -> dict[str, Any]:
        return self.request("stats")
