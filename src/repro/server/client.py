"""A blocking client for the query server's wire protocol."""

from __future__ import annotations

import itertools
import socket
from typing import Any, Optional

from .protocol import (
    MAX_MESSAGE_BYTES,
    ErrorCode,
    ProtocolError,
    decode_line,
    encode_message,
)


class ServerError(Exception):
    """A structured error reply from the server."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class DkbClient:
    """One connection to a :class:`~repro.server.service.DkbServer`.

    Sends one request line, blocks for the one reply line.  Success replies
    come back as plain dicts; error replies raise :class:`ServerError`
    carrying the structured code.  Usable as a context manager.
    """

    def __init__(self, host: str, port: int, timeout: float | None = 30.0):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._file = self._socket.makefile("rwb")
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "DkbClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the wire ----------------------------------------------------------

    def request(self, op: str, **payload: Any) -> dict[str, Any]:
        """Send one request and return the success reply.

        Raises:
            ServerError: the server replied with a structured error.
            ConnectionError: the server closed the connection.
            ProtocolError: the reply was truncated (no line terminator) —
                an oversized or partial frame, never valid JSON to parse.
        """
        message = {"op": op, "id": next(self._ids)}
        message.update({k: v for k, v in payload.items() if v is not None})
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline(MAX_MESSAGE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # readline returned because it hit the byte cap or the peer
            # closed mid-line — either way this is a partial frame, not a
            # complete reply, and must not be handed to the decoder as one.
            raise ProtocolError(
                ErrorCode.PARSE_ERROR,
                f"reply truncated after {len(line)} bytes with no line "
                "terminator (oversized or partial frame)",
            )
        reply = decode_line(line)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise ServerError(
                error.get("code", "INTERNAL"), error.get("message", "")
            )
        return reply

    # -- op helpers --------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def query(
        self,
        q: str,
        bindings: Optional[dict[str, Any]] = None,
        strategy: Optional[str] = None,
        optimize: Optional[bool] = None,
        use_views: Optional[bool] = None,
        use_cache: Optional[bool] = None,
    ) -> dict[str, Any]:
        return self.request(
            "query",
            q=q,
            bindings=bindings,
            strategy=strategy,
            optimize=optimize,
            use_views=use_views,
            use_cache=use_cache,
        )

    def insert(self, predicate: str, rows: list) -> dict[str, Any]:
        return self.request(
            "update", predicate=predicate, action="insert", rows=rows
        )

    def delete(self, predicate: str, rows: list) -> dict[str, Any]:
        return self.request(
            "update", predicate=predicate, action="delete", rows=rows
        )

    def define(self, program: str) -> dict[str, Any]:
        return self.request("define", program=program)

    def materialize(self, predicate: str) -> dict[str, Any]:
        return self.request("materialize", predicate=predicate)

    def lint(self, q: Optional[str] = None) -> dict[str, Any]:
        return self.request("lint", q=q)

    def stats(self) -> dict[str, Any]:
        return self.request("stats")
