"""The session pool: one writer, many snapshot readers, one versioned D/KB.

Concurrency discipline (single-writer / multi-reader):

* All sessions share one SQLite file opened in WAL journal mode.
* **Updates serialize.**  Every mutating operation (fact loads/deletes,
  rule definition, materialization) runs under the pool's writer lock, on
  the dedicated writer session, inside one explicit transaction that also
  bumps the **D/KB version** — a monotonic EDB+IDB generation counter
  persisted in the catalog (the ``dkbversion`` relation, beside the
  paper's ``epredicates`` dictionary).  A failed write rolls back both the
  change and the bump.
* **Reads run concurrently.**  Each read query checks out a reader session
  (admission-controlled), wraps itself in a deferred transaction — a WAL
  snapshot — and reads the version *inside* that snapshot, so the rows it
  computes are exactly the closure at that version: no torn reads, by
  construction.  Reader connections confine all derived/scratch relations
  to their private ``temp`` namespace (``ConnectionOptions.reader``), so a
  read physically cannot write the shared file.
* **Answers are shared.**  The (query, version)-keyed result cache sits in
  front of evaluation; compiled rules are shared between sessions through
  the stored D/KB itself (``compiled_rule_storage`` keeps the compiled
  form in the database, where every session's extract step reads it).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..analysis import DiagnosticReport
from ..dbms.engine import ConnectionOptions, Database
from ..errors import EvaluationError, TestbedError
from ..km.config import TestbedConfig
from ..km.partition import PartitionSpec
from ..km.session import Testbed
from ..obs.metrics import MetricsRegistry
from ..runtime.context import FastPathConfig
from ..runtime.program import LfpStrategy
from .admission import AdmissionController, AdmissionError
from .cache import CachedResult, VersionedResultCache, canonical_query
from .protocol import ErrorCode

#: The catalog relation persisting the D/KB generation counter.
DKB_VERSION_TABLE = "dkbversion"


class RequestTimeout(AdmissionError):
    """A read query exceeded its time budget and was interrupted."""

    code = ErrorCode.TIMEOUT


class StaleSnapshot(Exception):
    """A read's snapshot version is below the request's version floor.

    Raised by :meth:`ReaderSession.query` when the caller demanded
    ``min_version`` (a read-your-writes token or a bounded-staleness floor)
    and this database — typically a replica fed by snapshot copy — has not
    replicated that far yet.  The service layer maps it to a retryable
    ``STALE_REPLICA`` reply carrying the leader hint.
    """

    def __init__(self, version: int, min_version: int) -> None:
        super().__init__(
            f"snapshot at version {version} is below the requested "
            f"floor {min_version}"
        )
        self.version = version
        self.min_version = min_version


@dataclass(frozen=True)
class ReadResult:
    """One served read query: rows plus snapshot and cache provenance."""

    rows: tuple[tuple, ...]
    version: int
    cached: bool
    seconds: float
    answered_from_view: bool = False


def ensure_version_table(database: Database) -> None:
    """Create the ``dkbversion`` catalog relation if missing (version 0)."""
    database.execute(
        f"CREATE TABLE IF NOT EXISTS {DKB_VERSION_TABLE} "
        "(id INTEGER PRIMARY KEY CHECK (id = 1), version INTEGER NOT NULL)"
    )
    database.execute(
        f"INSERT OR IGNORE INTO {DKB_VERSION_TABLE} VALUES (1, 0)"
    )
    database.commit()


def read_version(database: Database) -> int:
    """The D/KB version visible to ``database``'s current snapshot."""
    rows = database.execute(
        f"SELECT version FROM {DKB_VERSION_TABLE} WHERE id = 1"
    )
    if not rows:
        raise EvaluationError(
            f"{DKB_VERSION_TABLE} catalog relation is missing; "
            "was this D/KB initialised by a SessionPool?"
        )
    return int(rows[0][0])


class ReaderSession:
    """One pooled read-only session: a Testbed handle plus the read path."""

    def __init__(self, pool: "SessionPool", testbed: Testbed, index: int) -> None:
        self.pool = pool
        self.testbed = testbed
        self.index = index

    def query(
        self,
        query: str,
        bindings: Optional[dict[str, Any]] = None,
        strategy: LfpStrategy = LfpStrategy.SEMINAIVE,
        optimize: "bool | str" = False,
        use_views: bool = True,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        min_version: Optional[int] = None,
    ) -> ReadResult:
        """Serve one read query from a consistent D/KB snapshot.

        The whole read — version probe, cache lookup, and (on a miss)
        compile + evaluate — happens inside one deferred transaction, so
        the answer corresponds to exactly one D/KB version even while the
        writer commits concurrently.

        ``min_version`` is the caller's staleness floor: the read is only
        served when the snapshot's D/KB version is at least that — the
        mechanism behind the cluster's read-your-writes tokens and
        ``max_lag`` replica policy.

        Raises:
            RequestTimeout: the evaluation ran past ``timeout`` seconds and
                was interrupted.
            StaleSnapshot: the snapshot is below ``min_version``.
            TestbedError: compilation or evaluation failed.
        """
        key = canonical_query(query, bindings)
        cache = self.pool.cache if use_cache else None
        database = self.testbed.database
        self._sync_tracing()
        started = time.perf_counter()
        interrupted = threading.Event()
        finished = threading.Event()
        enforcer: Optional[threading.Thread] = None
        if timeout is not None:
            def _enforce() -> None:
                if finished.wait(timeout):
                    return
                interrupted.set()
                # Keep interrupting until the request ends: a single
                # interrupt is a no-op when it lands between statements
                # (e.g. during a pure-Python compile phase), which would
                # let the evaluation run past its budget.
                while not finished.is_set():
                    database.interrupt()
                    finished.wait(0.005)

            enforcer = threading.Thread(
                target=_enforce, name="query-timeout", daemon=True
            )
            enforcer.start()
        try:
            with database.transaction():
                version = read_version(database)
                if min_version is not None and version < min_version:
                    raise StaleSnapshot(version, min_version)
                if cache is not None:
                    hit = cache.get(key, version)
                    if hit is not None:
                        return ReadResult(
                            hit.rows,
                            version,
                            True,
                            time.perf_counter() - started,
                            hit.answered_from_view,
                        )
                result = self.testbed.query(
                    key,
                    optimize=optimize,
                    strategy=strategy,
                    use_views=use_views,
                )
                rows = tuple(tuple(row) for row in result.rows)
                elapsed = time.perf_counter() - started
                if cache is not None:
                    cache.put(
                        key,
                        CachedResult(
                            rows, version, result.answered_from_view, elapsed
                        ),
                    )
                return ReadResult(
                    rows, version, False, elapsed, result.answered_from_view
                )
        except EvaluationError as error:
            if interrupted.is_set():
                raise RequestTimeout(
                    f"query exceeded its {timeout:.3f}s budget"
                ) from error
            raise
        finally:
            finished.set()
            if enforcer is not None:
                enforcer.join(timeout=1.0)

    def _sync_tracing(self) -> None:
        """Match this session's tracer to the pool's escalation state.

        Runs at the top of each query, when the session is owned by one
        connection and no statement is in flight on it — the only safe
        moment to swap the tracer of a live session.
        """
        wanted = self.pool.tracing_wanted()
        if wanted and self.testbed.tracer is None:
            self.testbed.enable_tracing()
        elif not wanted and self.testbed.tracer is not None:
            self.testbed.disable_tracing()

    def lint(self, query: Optional[str] = None) -> DiagnosticReport:
        """Static-analysis report over the stored rule base (collect-all)."""
        return self.testbed.lint(query)


class SessionPool:
    """A writer session plus ``readers`` pooled reader sessions on one file.

    Args:
        path: the shared SQLite file (WAL mode requires a real file, so
            ``:memory:`` is rejected).
        readers: number of concurrently usable reader sessions.
        max_waiters: how many reader checkouts may queue before load
            shedding kicks in.
        session_timeout: default seconds a checkout waits for a free
            reader session.
        cache: result-cache to consult on reads (``None`` disables
            caching).
        reader_fastpath: fast-path configuration for reader query
            execution (default: everything on — this is the serving path,
            not the paper-faithful measurement path).
        metrics: registry receiving the ``server.*`` metric families.
        trace: open every pooled session with structured tracing enabled.
        partition: cluster partition metadata recorded on every session's
            :class:`~repro.km.config.TestbedConfig` (with ``shard_index``),
            so a shard's writer rejects rows its hash partition does not
            own.  ``None`` outside a cluster.
        shard_index: which partition this pool's database holds.
    """

    def __init__(
        self,
        path: str,
        readers: int = 4,
        max_waiters: int = 16,
        session_timeout: float | None = 30.0,
        cache: Optional[VersionedResultCache] = None,
        reader_fastpath: Optional[FastPathConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: bool = False,
        partition: "PartitionSpec | None" = None,
        shard_index: Optional[int] = None,
    ) -> None:
        if path == ":memory:":
            raise ValueError(
                "SessionPool needs an on-disk database: WAL-mode snapshots "
                "do not exist for :memory: databases"
            )
        if readers <= 0:
            raise ValueError(f"readers must be positive, got {readers}")
        self.path = path
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = AdmissionController(
            readers,
            max_waiters=max_waiters,
            default_timeout=session_timeout,
            metrics=self.metrics,
        )
        # Tracing escalation (the SLO watchdog's diagnostic mode): a count
        # of outstanding escalations rather than a flag, so overlapping
        # escalate/restore pairs from independent watchdog rules compose.
        # Sessions apply the desired state lazily at query time — a session
        # is owned by exactly one connection while checked out, so the
        # enable/disable happens with no query in flight on it.
        self._trace_baseline = trace  # not-shared: fixed at construction
        self._trace_escalations = 0  # guarded-by: _trace_lock
        self._trace_lock = threading.Lock()
        self._writer_lock = threading.Lock()  # serializes: one writer transaction at a time is the point
        self._closed = False  # not-shared: close() runs after request traffic stops
        # The writer session initialises every catalog relation (extensional
        # dictionary, stored D/KB, view registry, version counter) before
        # any reader opens, so readers never attempt catalog DDL.
        self.writer = Testbed(
            TestbedConfig(
                path=path,
                connection=ConnectionOptions.writer(),
                trace=trace,
                partition=partition,
                shard_index=shard_index,
            )
        )
        ensure_version_table(self.writer.database)
        if reader_fastpath is None:
            reader_fastpath = FastPathConfig.enabled()
        reader_config = TestbedConfig(
            path=path,
            connection=ConnectionOptions.reader(),
            fastpath=reader_fastpath,
            trace=trace,
            partition=partition,
            shard_index=shard_index,
        )
        self._sessions = [
            ReaderSession(self, Testbed(reader_config), index)
            for index in range(readers)
        ]
        self._idle: list[ReaderSession] = list(self._sessions)  # guarded-by: _idle_lock
        self._idle_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close every pooled session."""
        if self._closed:
            return
        self._closed = True
        for session in self._sessions:
            session.testbed.close()
        self.writer.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- tracing escalation ------------------------------------------------

    def escalate_tracing(self) -> int:
        """One more caller wants diagnostic tracing; returns the count."""
        with self._trace_lock:
            self._trace_escalations += 1
            return self._trace_escalations

    def restore_tracing(self) -> int:
        """One escalation released; tracing stays on while any remain."""
        with self._trace_lock:
            self._trace_escalations = max(0, self._trace_escalations - 1)
            return self._trace_escalations

    def tracing_wanted(self) -> bool:
        """Should sessions trace right now (baseline or escalated)?"""
        if self._trace_baseline:
            return True
        with self._trace_lock:
            return self._trace_escalations > 0

    # -- versioning --------------------------------------------------------

    def version(self) -> int:
        """The currently committed D/KB version."""
        with self._writer_lock:
            return read_version(self.writer.database)

    # -- reading -----------------------------------------------------------

    @contextmanager
    def reader(self, timeout: float | None = None) -> Iterator[ReaderSession]:
        """Check out a reader session (admission-controlled).

        Raises:
            ServerBusy: all sessions busy and the wait queue is full.
            AdmissionTimeout: no session freed up in time.
        """
        self.admission.acquire(timeout)
        try:
            with self._idle_lock:
                session = self._idle.pop()
            try:
                yield session
            finally:
                with self._idle_lock:
                    self._idle.append(session)
        finally:
            self.admission.release()

    def query(self, query: str, **kwargs: Any) -> ReadResult:
        """Convenience: check out a session for one read query."""
        timeout = kwargs.pop("session_timeout", None)
        with self.reader(timeout) as session:
            return session.query(query, **kwargs)

    # -- writing -----------------------------------------------------------

    @contextmanager
    def write(self, timeout: float | None = None) -> Iterator[Testbed]:
        """Run a mutating block on the writer session, atomically versioned.

        The block runs under the writer lock inside one explicit
        transaction; on success the D/KB version is bumped *in the same
        transaction*, so readers either see the whole change with the new
        version or none of it.  On failure everything — including the
        bump — rolls back.

        Raises:
            AdmissionTimeout: the writer lock could not be taken in time.
        """
        acquired = self._writer_lock.acquire(
            timeout=-1 if timeout is None else timeout
        )
        if not acquired:
            self.admission.record_rejected_timeout()
            raise RequestTimeout(
                f"writer lock not acquired within {timeout:.3f}s"
            )
        try:
            database = self.writer.database
            with database.transaction():
                yield self.writer
                database.execute(
                    f"UPDATE {DKB_VERSION_TABLE} SET version = version + 1 "
                    "WHERE id = 1"
                )
            self.metrics.counter("server.writes").inc()
            self.metrics.gauge("server.dkb_version").set(
                read_version(database)
            )
        finally:
            self._writer_lock.release()

    def load_facts(
        self,
        predicate: str,
        rows: Iterable[Sequence],
        timeout: float | None = None,
        types: "Sequence[str] | None" = None,
    ) -> int:
        """Versioned bulk fact load (creates the relation on first use).

        ``types`` lets an *empty* load still create the relation — the
        cluster router uses this to materialize a partitioned relation's
        schema on shards that own none of its rows (so shard-local
        evaluation of rules reading it sees an empty relation, not a
        missing one).
        """
        rows = [tuple(row) for row in rows]
        with self.write(timeout) as testbed:
            if not testbed.catalog.has_relation(predicate) and (rows or types):
                schema = tuple(types) if types else tuple(
                    "INTEGER" if isinstance(value, int) else "TEXT"
                    for value in rows[0]
                )
                testbed.define_base_relation(predicate, schema)
            return testbed.load_facts(predicate, rows)

    def delete_facts(
        self,
        predicate: str,
        rows: Iterable[Sequence],
        timeout: float | None = None,
    ) -> int:
        """Versioned bulk fact delete."""
        with self.write(timeout) as testbed:
            return testbed.delete_facts(predicate, rows)

    def define(self, program: str, timeout: float | None = None) -> int:
        """Add rules/facts and persist the rules into the stored D/KB.

        Returns the number of clauses added.  Rules are folded into the
        stored D/KB immediately (``update_stored_dkb``), so every session
        compiles against them — the server has no per-connection workspace.
        """
        with self.write(timeout) as testbed:
            added = testbed.define(program)
            if any(clause.is_rule for clause in added):
                testbed.update_stored_dkb(clear_workspace=True)
            return len(added)

    def materialize(self, predicate: str, timeout: float | None = None) -> int:
        """Versioned view materialization; returns the view's tuple count."""
        with self.write(timeout) as testbed:
            return testbed.materialize(predicate)

    def apply(
        self, operation: Callable[[Testbed], Any], timeout: float | None = None
    ) -> Any:
        """Run an arbitrary mutating operation under the write discipline."""
        with self.write(timeout) as testbed:
            return operation(testbed)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly pool state for the ``stats`` op."""
        state: dict[str, Any] = {
            "path": self.path,
            "readers": len(self._sessions),
            "version": self.version(),
            "admission": self.admission.snapshot(),
        }
        if self.cache is not None:
            state["cache"] = self.cache.snapshot()
        return state


# Re-exported for tests that build pools from an existing TestbedConfig.
def reader_config_of(pool: SessionPool) -> TestbedConfig:
    """The TestbedConfig the pool's reader sessions were built with."""
    return dataclasses.replace(
        pool._sessions[0].testbed.config
    )


__all__ = [
    "DKB_VERSION_TABLE",
    "ReadResult",
    "ReaderSession",
    "RequestTimeout",
    "SessionPool",
    "StaleSnapshot",
    "canonical_query",
    "ensure_version_table",
    "read_version",
    "TestbedError",
]
