"""The line-oriented JSON wire protocol of the query server.

One request per line, one reply per line, both JSON objects.  Requests
carry an ``op`` plus op-specific fields and an optional client-chosen
``id`` that the reply echoes back; replies are ``{"ok": true, ...}`` or a
structured error ``{"ok": false, "error": {"code": ..., "message": ...}}``.

The protocol is deliberately small — the testbed analogue of the paper's
User Interface commands (§3.1) lifted onto a socket: ``query``, ``update``,
``define``, ``materialize``, ``lint``, ``stats``, and ``ping``.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

PROTOCOL_VERSION = 1

#: Upper bound on one wire message; longer lines are rejected, not buffered.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


class ErrorCode:
    """Stable error codes carried in structured error replies."""

    PARSE_ERROR = "PARSE_ERROR"  # the request line is not valid JSON
    BAD_REQUEST = "BAD_REQUEST"  # well-formed JSON, malformed request
    SERVER_BUSY = "SERVER_BUSY"  # admission control shed the request
    TIMEOUT = "TIMEOUT"  # the request exceeded its time budget
    EVALUATION_ERROR = "EVALUATION_ERROR"  # the D/KBMS rejected the operation
    SHUTTING_DOWN = "SHUTTING_DOWN"  # the server is stopping
    INTERNAL = "INTERNAL"  # unexpected server-side failure
    # Cluster codes — both *retryable*: the request was sound but landed on
    # the wrong backend (or one not yet caught up); the structured hints
    # (``retry_after``, ``leader``) tell the caller where/when to retry.
    WRONG_SHARD = "WRONG_SHARD"  # request routed to a non-owning shard
    STALE_REPLICA = "STALE_REPLICA"  # replica behind the caller's version floor
    # The rule base fails the partition-aware lints (DK10x): accepting the
    # define would produce rules no shard can evaluate soundly.
    UNROUTABLE_RULES = "UNROUTABLE_RULES"

    ALL = frozenset(
        {
            PARSE_ERROR,
            BAD_REQUEST,
            SERVER_BUSY,
            TIMEOUT,
            EVALUATION_ERROR,
            SHUTTING_DOWN,
            INTERNAL,
            WRONG_SHARD,
            STALE_REPLICA,
            UNROUTABLE_RULES,
        }
    )

    #: Codes a client may retry (elsewhere, or after ``retry_after``).
    RETRYABLE = frozenset({SERVER_BUSY, TIMEOUT, WRONG_SHARD, STALE_REPLICA})


class ProtocolError(Exception):
    """A request that cannot be served, with its structured error code.

    ``details`` carries optional machine-readable hints beside the message:
    ``retry_after`` (seconds until a retry may succeed), ``leader`` (the
    ``[host, port]`` of the backend that *can* serve the request), and
    code-specific context such as ``version``/``min_version`` for
    ``STALE_REPLICA`` or ``shard`` for ``WRONG_SHARD``.
    """

    def __init__(
        self,
        code: str,
        message: str,
        details: "Mapping[str, Any] | None" = None,
    ) -> None:
        if code not in ErrorCode.ALL:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.details: dict[str, Any] = dict(details) if details else {}


#: op -> (required fields, optional fields); every request may also carry
#: ``id`` (echoed) and ``op`` itself.
REQUEST_FIELDS: dict[str, tuple[frozenset[str], frozenset[str]]] = {
    "ping": (frozenset(), frozenset()),
    "query": (
        frozenset({"q"}),
        frozenset(
            {
                "bindings",
                "strategy",
                "optimize",
                "use_views",
                "use_cache",
                "min_version",
                "shard",
            }
        ),
    ),
    "update": (
        frozenset({"predicate", "action", "rows"}),
        frozenset({"shard", "types"}),
    ),
    "define": (frozenset({"program"}), frozenset({"shard"})),
    "materialize": (frozenset({"predicate"}), frozenset({"shard"})),
    "lint": (frozenset(), frozenset({"q"})),
    "stats": (frozenset(), frozenset()),
}

UPDATE_ACTIONS = frozenset({"insert", "delete"})


def validate_request(message: Any) -> dict[str, Any]:
    """Check shape and field types of one decoded request.

    Returns the message unchanged (for chaining).

    Raises:
        ProtocolError: ``BAD_REQUEST`` describing the first problem found.
    """
    if not isinstance(message, dict):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "request must be a JSON object"
        )
    op = message.get("op")
    if not isinstance(op, str) or op not in REQUEST_FIELDS:
        known = ", ".join(sorted(REQUEST_FIELDS))
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"unknown op {op!r}; expected one of: {known}"
        )
    required, optional = REQUEST_FIELDS[op]
    allowed = required | optional | {"op", "id"}
    for name in sorted(required - message.keys()):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"op {op!r} requires field {name!r}"
        )
    for name in sorted(message.keys() - allowed):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"op {op!r} does not accept field {name!r}"
        )
    if "q" in message and not isinstance(message["q"], str):
        raise ProtocolError(ErrorCode.BAD_REQUEST, "field 'q' must be a string")
    if "program" in message and not isinstance(message["program"], str):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'program' must be a string"
        )
    if "predicate" in message and not isinstance(message["predicate"], str):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'predicate' must be a string"
        )
    if "bindings" in message and not isinstance(message["bindings"], dict):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "field 'bindings' must be an object"
        )
    for name in ("min_version", "shard"):
        if name in message and (
            isinstance(message[name], bool)
            or not isinstance(message[name], int)
            or message[name] < 0
        ):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"field {name!r} must be a non-negative integer",
            )
    if op == "update":
        action = message["action"]
        if action not in UPDATE_ACTIONS:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"update action must be 'insert' or 'delete', got {action!r}",
            )
        rows = message["rows"]
        if not isinstance(rows, list) or not all(
            isinstance(row, (list, tuple)) for row in rows
        ):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "field 'rows' must be a list of rows"
            )
        types = message.get("types")
        if types is not None and (
            not isinstance(types, list)
            or not all(isinstance(name, str) for name in types)
        ):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                "field 'types' must be a list of type-name strings",
            )
    return message


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One wire line for ``message`` (newline-terminated UTF-8 JSON)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict[str, Any]:
    """Decode one received line into a message.

    Raises:
        ProtocolError: ``PARSE_ERROR`` on oversized or malformed input.
    """
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            ErrorCode.PARSE_ERROR,
            f"message exceeds {MAX_MESSAGE_BYTES} bytes",
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(
            ErrorCode.PARSE_ERROR, f"invalid JSON: {error}"
        ) from error
    if not isinstance(message, dict):
        raise ProtocolError(
            ErrorCode.PARSE_ERROR, "request must be a JSON object"
        )
    return message


def ok_reply(request_id: Any, **fields: Any) -> dict[str, Any]:
    """A success reply echoing the request id."""
    reply: dict[str, Any] = {"ok": True, "id": request_id}
    reply.update(fields)
    return reply


def error_reply(
    request_id: Any,
    code: str,
    message: str,
    details: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """A structured error reply echoing the request id.

    ``details`` (when non-empty) rides inside the error object — the
    retryable cluster codes use it for ``retry_after``/``leader`` hints.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    if details:
        error["details"] = dict(details)
    return {"ok": False, "id": request_id, "error": error}
