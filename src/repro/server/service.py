"""The concurrent query server: a threaded TCP service over a SessionPool.

Connection model (the classic RDBMS connection-slot discipline): a client
connection checks one reader session out of the pool for its whole
lifetime, so ``readers`` bounds the number of simultaneously *connected*
clients, and admission control (bounded wait queue + ``SERVER_BUSY``
shedding) governs the connect path.  Requests on an admitted connection
then run one at a time in that connection's handler thread.

Updates do not consume the connection's reader session — they funnel
through the pool's single writer under the writer lock, each bumping the
persistent D/KB version (see :mod:`repro.server.pool`).
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Optional

from ..errors import ParseError, TestbedError
from ..obs.metrics import MetricsRegistry
from ..runtime.context import FastPathConfig
from ..runtime.program import LfpStrategy
from .admission import AdmissionError
from .cache import VersionedResultCache
from .pool import ReaderSession, SessionPool
from .protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    decode_line,
    encode_message,
    error_reply,
    ok_reply,
    validate_request,
)


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`DkbServer` needs to boot.

    Attributes:
        path: the shared SQLite file backing the D/KB.
        host: bind address (loopback by default — this is a testbed).
        port: bind port; ``0`` picks an ephemeral port (see
            :attr:`DkbServer.address` for the bound one).
        readers: reader sessions in the pool = max concurrent connections.
        max_waiters: connect attempts allowed to queue before shedding.
        session_timeout: seconds a connect attempt waits for a session.
        request_timeout: per-request evaluation budget in seconds
            (``None`` = unbounded); enforced by interrupting the reader's
            SQLite connection.
        cache_size: result-cache capacity (entries); ``0`` disables the
            cache entirely.
        reader_fastpath: execution configuration for reader sessions.
        trace: open pooled sessions with structured tracing enabled.
    """

    path: str
    host: str = "127.0.0.1"
    port: int = 0
    readers: int = 4
    max_waiters: int = 16
    session_timeout: float | None = 5.0
    request_timeout: float | None = 30.0
    cache_size: int = 256
    reader_fastpath: Optional[FastPathConfig] = None
    trace: bool = False

    pool_kwargs: dict[str, Any] = field(default_factory=dict, compare=False)


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: check out a session, then serve line requests."""

    server: "_TcpServer"

    def handle(self) -> None:
        dkb = self.server.dkb
        try:
            with dkb.pool.reader(dkb.config.session_timeout) as session:
                dkb.metrics.counter("server.connections").inc()
                self._serve(session)
        except AdmissionError as error:
            dkb.metrics.counter("server.busy").inc()
            self._send(error_reply(None, error.code, str(error)))

    def _serve(self, session: ReaderSession) -> None:
        dkb = self.server.dkb
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionResetError, BrokenPipeError, OSError):
                return  # the client went away mid-read: a normal ending
            if not line:
                return
            if not line.strip():
                continue
            started = time.perf_counter()
            request_id: Any = None
            try:
                message = decode_line(line)
                request_id = message.get("id")
                validate_request(message)
                reply = dkb.dispatch(message, session)
                reply["id"] = request_id
            except ProtocolError as error:
                reply = error_reply(request_id, error.code, error.message)
            except AdmissionError as error:
                reply = error_reply(request_id, error.code, str(error))
            except ParseError as error:
                reply = error_reply(request_id, ErrorCode.BAD_REQUEST, str(error))
            except TestbedError as error:
                reply = error_reply(
                    request_id, ErrorCode.EVALUATION_ERROR, str(error)
                )
            except Exception as error:  # pragma: no cover - defensive
                reply = error_reply(
                    request_id,
                    ErrorCode.INTERNAL,
                    f"{type(error).__name__}: {error}",
                )
            dkb.metrics.counter("server.requests").inc()
            if not reply.get("ok"):
                dkb.metrics.counter("server.errors").inc()
            dkb.metrics.histogram("server.request_seconds").observe(
                time.perf_counter() - started
            )
            if not self._send(reply):
                return

    def _send(self, reply: dict[str, Any]) -> bool:
        try:
            wfile: BinaryIO = self.wfile
            wfile.write(encode_message(reply))
            wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    dkb: "DkbServer"


class DkbServer:
    """The multi-session D/KBMS service.

    Owns the metrics registry, the versioned result cache, and the session
    pool; serves the wire protocol of :mod:`repro.server.protocol` on a TCP
    socket.  Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        self.cache: Optional[VersionedResultCache] = (
            VersionedResultCache(config.cache_size, metrics=self.metrics)
            if config.cache_size > 0
            else None
        )
        self.pool = SessionPool(
            config.path,
            readers=config.readers,
            max_waiters=config.max_waiters,
            session_timeout=config.session_timeout,
            cache=self.cache,
            reader_fastpath=config.reader_fastpath,
            metrics=self.metrics,
            trace=config.trace,
            **config.pool_kwargs,
        )
        self._tcp = _TcpServer((config.host, config.port), _Handler)
        self._tcp.dkb = self
        self._thread: Optional[threading.Thread] = None
        self.started_at = time.time()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def start(self) -> "DkbServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="dkb-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (for ``python -m repro serve``)."""
        self._tcp.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        """Stop accepting, join the serve thread, close the pool."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.pool.close()

    def __enter__(self) -> "DkbServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request dispatch --------------------------------------------------

    def dispatch(
        self, message: dict[str, Any], session: ReaderSession
    ) -> dict[str, Any]:
        """Serve one validated request; returns the success reply."""
        op = message["op"]
        request_id = message.get("id")
        if op == "ping":
            return ok_reply(
                request_id,
                pong=True,
                protocol=PROTOCOL_VERSION,
                version=self.pool.version(),
            )
        if op == "query":
            return self._dispatch_query(message, session)
        if op == "update":
            return self._dispatch_update(message)
        if op == "define":
            added = self.pool.define(message["program"])
            return ok_reply(request_id, added=added, version=self.pool.version())
        if op == "materialize":
            count = self.pool.materialize(message["predicate"])
            return ok_reply(request_id, count=count, version=self.pool.version())
        if op == "lint":
            report = session.lint(message.get("q"))
            return ok_reply(
                request_id,
                diagnostics=[
                    {
                        "code": d.code,
                        "severity": d.severity.value,
                        "message": d.message,
                        "predicate": d.predicate,
                    }
                    for d in report.diagnostics
                ],
            )
        if op == "stats":
            return ok_reply(request_id, stats=self.stats())
        raise ProtocolError(ErrorCode.BAD_REQUEST, f"unknown op {op!r}")

    def _dispatch_query(
        self, message: dict[str, Any], session: ReaderSession
    ) -> dict[str, Any]:
        strategy_name = message.get("strategy", LfpStrategy.SEMINAIVE.value)
        try:
            strategy = LfpStrategy(strategy_name)
        except ValueError:
            known = ", ".join(s.value for s in LfpStrategy)
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"unknown strategy {strategy_name!r}; expected one of: {known}",
            ) from None
        result = session.query(
            message["q"],
            bindings=message.get("bindings"),
            strategy=strategy,
            optimize=message.get("optimize", False),
            use_views=message.get("use_views", True),
            use_cache=message.get("use_cache", True),
            timeout=self.config.request_timeout,
        )
        return ok_reply(
            message.get("id"),
            rows=[list(row) for row in result.rows],
            count=len(result.rows),
            version=result.version,
            cached=result.cached,
            answered_from_view=result.answered_from_view,
            seconds=result.seconds,
        )

    def _dispatch_update(self, message: dict[str, Any]) -> dict[str, Any]:
        predicate = message["predicate"]
        rows = [tuple(row) for row in message["rows"]]
        if message["action"] == "insert":
            count = self.pool.load_facts(predicate, rows)
        else:
            count = self.pool.delete_facts(predicate, rows)
        return ok_reply(
            message.get("id"), count=count, version=self.pool.version()
        )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``stats`` op payload: pool, cache, admission, and metrics."""
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "pool": self.pool.snapshot(),
            "metrics": self.metrics.snapshot(),
        }
