"""The concurrent query server: a threaded TCP service over a SessionPool.

Connection model (the classic RDBMS connection-slot discipline): a client
connection checks one reader session out of the pool for its whole
lifetime, so ``readers`` bounds the number of simultaneously *connected*
clients, and admission control (bounded wait queue + ``SERVER_BUSY``
shedding) governs the connect path.  Requests on an admitted connection
then run one at a time in that connection's handler thread.

Updates do not consume the connection's reader session — they funnel
through the pool's single writer under the writer lock, each bumping the
persistent D/KB version (see :mod:`repro.server.pool`).
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Optional

from ..errors import ParseError, TestbedError
from ..km.partition import PartitionSpec
from ..km.policy import ServingPolicy
from ..obs.metrics import MetricsRegistry
from ..obs.live.exporter import MetricsExporter
from ..obs.live.timeseries import TimeSeriesStore
from ..obs.live.watchdog import CallbackAction, SloRule, SloWatchdog
from ..runtime.context import FastPathConfig
from ..runtime.program import LfpStrategy
from .admission import AdmissionError
from .cache import VersionedResultCache
from .pool import ReaderSession, SessionPool, StaleSnapshot
from .protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    decode_line,
    encode_message,
    error_reply,
    ok_reply,
    validate_request,
)


@dataclass(frozen=True)
class WatchdogConfig:
    """The SLO watchdog's rules and escalation levers for one server.

    Two built-in rules (each disabled by passing ``None``):

    * **latency**: breach when the EWMA of per-window p95 request latency
      exceeds ``p95_ms`` milliseconds;
    * **cache**: breach when the EWMA of the per-window result-cache hit
      rate falls below ``cache_hit_rate``.

    Escalations on a latency breach (each individually reversible, all
    reverted on recovery): ``escalate_tracing`` turns structured tracing
    on across the pool's sessions (diagnostic mode), ``switch_strategy``
    overrides the default LFP strategy on :class:`~repro.km.policy.
    ServingPolicy` (e.g. onto the recursive-CTE fast path),
    ``switch_optimize`` overrides the magic-sets default, and
    ``tighten_waiters`` shrinks the admission wait queue to shed earlier.
    A cache breach escalates tracing only — a cold cache is a thing to
    diagnose, not to shed over.

    ``auto_start`` runs the evaluation loop on a background thread once
    per window; benches and deterministic tests pass ``False`` and drive
    :meth:`~repro.obs.live.watchdog.SloWatchdog.tick` themselves.
    """

    window_seconds: float = 5.0
    capacity: int = 120
    p95_ms: Optional[float] = 250.0
    cache_hit_rate: Optional[float] = None
    breach_windows: int = 2
    recover_windows: int = 2
    alpha: float = 0.5
    min_requests: int = 1
    escalate_tracing: bool = True
    switch_strategy: Optional[str] = LfpStrategy.LFP_CTE.value
    switch_optimize: "bool | str | None" = None
    tighten_waiters: Optional[int] = 2
    auto_start: bool = True


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`DkbServer` needs to boot.

    Attributes:
        path: the shared SQLite file backing the D/KB.
        host: bind address (loopback by default — this is a testbed).
        port: bind port; ``0`` picks an ephemeral port (see
            :attr:`DkbServer.address` for the bound one).
        readers: reader sessions in the pool = max concurrent connections.
        max_waiters: connect attempts allowed to queue before shedding.
        session_timeout: seconds a connect attempt waits for a session.
        request_timeout: per-request evaluation budget in seconds
            (``None`` = unbounded); enforced by interrupting the reader's
            SQLite connection.
        cache_size: result-cache capacity (entries); ``0`` disables the
            cache entirely.
        reader_fastpath: execution configuration for reader sessions.
        trace: open pooled sessions with structured tracing enabled.
        shard_id: this server's shard number inside a cluster (``None``
            for the single-node server).  When set, requests carrying a
            ``shard`` field that names a different shard are refused with
            the retryable ``WRONG_SHARD`` code, and updates into
            partitioned relations are hash-checked against ``partition``.
        partition: the cluster's partition metadata (for the ownership
            check and the sessions' TestbedConfig).
        role: ``"primary"`` serves reads and writes; a ``"replica"``
            (fed by snapshot copy) refuses every mutating op with
            ``WRONG_SHARD`` + a ``leader`` hint.
        leader: advertised ``(host, port)`` of this shard's primary —
            carried in ``STALE_REPLICA``/``WRONG_SHARD`` hints.
        replication_poll: the replica refresh cadence advertised as
            ``retry_after`` in ``STALE_REPLICA`` replies.
        metrics_port: serve Prometheus ``/metrics`` on this side port
            (``0`` = ephemeral; ``None`` = no exporter, no HTTP listener,
            zero added work on the serving path).
        watchdog: SLO monitoring + adaptive escalation configuration
            (``None`` = off).  Enabling either ``metrics_port`` or
            ``watchdog`` also turns on the rolling time-series store fed
            by per-request spans.
    """

    path: str
    host: str = "127.0.0.1"
    port: int = 0
    readers: int = 4
    max_waiters: int = 16
    session_timeout: float | None = 5.0
    request_timeout: float | None = 30.0
    cache_size: int = 256
    reader_fastpath: Optional[FastPathConfig] = None
    trace: bool = False
    shard_id: Optional[int] = None
    partition: Optional[PartitionSpec] = None
    role: str = "primary"
    leader: Optional[tuple[str, int]] = None
    replication_poll: float = 0.25
    metrics_port: Optional[int] = None
    watchdog: Optional[WatchdogConfig] = None

    pool_kwargs: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.role not in ("primary", "replica"):
            raise ValueError(f"role must be primary or replica: {self.role!r}")


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: check out a session, then serve line requests."""

    server: "_TcpServer"

    def handle(self) -> None:
        dkb = self.server.dkb
        try:
            with dkb.pool.reader(dkb.config.session_timeout) as session:
                dkb.metrics.counter("server.connections").inc()
                self._serve(session)
        except AdmissionError as error:
            dkb.metrics.counter("server.busy").inc()
            self._send(error_reply(None, error.code, str(error)))

    def _serve(self, session: ReaderSession) -> None:
        dkb = self.server.dkb
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionResetError, BrokenPipeError, OSError):
                return  # the client went away mid-read: a normal ending
            if not line:
                return
            if not line.strip():
                continue
            started = time.perf_counter()
            request_id: Any = None
            try:
                message = decode_line(line)
                request_id = message.get("id")
                validate_request(message)
                reply = dkb.dispatch(message, session)
                reply["id"] = request_id
            except ProtocolError as error:
                reply = error_reply(
                    request_id, error.code, error.message, error.details
                )
            except StaleSnapshot as error:
                reply = error_reply(
                    request_id,
                    ErrorCode.STALE_REPLICA,
                    str(error),
                    dkb.stale_details(error),
                )
            except AdmissionError as error:
                reply = error_reply(request_id, error.code, str(error))
            except ParseError as error:
                reply = error_reply(request_id, ErrorCode.BAD_REQUEST, str(error))
            except TestbedError as error:
                reply = error_reply(
                    request_id, ErrorCode.EVALUATION_ERROR, str(error)
                )
            except Exception as error:  # pragma: no cover - defensive
                reply = error_reply(
                    request_id,
                    ErrorCode.INTERNAL,
                    f"{type(error).__name__}: {error}",
                )
            elapsed = time.perf_counter() - started
            dkb.metrics.counter("server.requests").inc()
            if not reply.get("ok"):
                dkb.metrics.counter("server.errors").inc()
            dkb.metrics.histogram("server.request_seconds").observe(elapsed)
            if dkb.timeseries is not None:
                dkb.record_span(reply, elapsed)
            if not self._send(reply):
                return

    def _send(self, reply: dict[str, Any]) -> bool:
        try:
            wfile: BinaryIO = self.wfile
            wfile.write(encode_message(reply))
            wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    dkb: "DkbServer"


class DkbServer:
    """The multi-session D/KBMS service.

    Owns the metrics registry, the versioned result cache, and the session
    pool; serves the wire protocol of :mod:`repro.server.protocol` on a TCP
    socket.  Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.policy = ServingPolicy()
        self.cache: Optional[VersionedResultCache] = (
            VersionedResultCache(config.cache_size, metrics=self.metrics)
            if config.cache_size > 0
            else None
        )
        self.pool = SessionPool(
            config.path,
            readers=config.readers,
            max_waiters=config.max_waiters,
            session_timeout=config.session_timeout,
            cache=self.cache,
            reader_fastpath=config.reader_fastpath,
            metrics=self.metrics,
            trace=config.trace,
            partition=config.partition,
            shard_index=config.shard_id,
            **config.pool_kwargs,
        )
        # Live observability: the time-series store exists whenever
        # something consumes it (the exporter or the watchdog); otherwise
        # the serving path pays exactly one `is not None` test per request.
        self.timeseries: Optional[TimeSeriesStore] = None
        self.exporter: Optional[MetricsExporter] = None
        self.watchdog: Optional[SloWatchdog] = None
        window = config.watchdog or WatchdogConfig()
        if config.metrics_port is not None or config.watchdog is not None:
            self.timeseries = TimeSeriesStore(
                window_seconds=window.window_seconds,
                capacity=window.capacity,
            )
        if config.watchdog is not None:
            assert self.timeseries is not None  # created just above
            self.watchdog = SloWatchdog(
                self.timeseries, self._watchdog_rules(config.watchdog)
            )
            if config.watchdog.auto_start:
                self.watchdog.start()
        if config.metrics_port is not None:
            self.exporter = (
                MetricsExporter(config.host, config.metrics_port)
                .add_source(self.metrics, self._identity())
                .add_refresher(self._refresh_gauges)
                .start()
            )
        self._tcp = _TcpServer((config.host, config.port), _Handler)
        self._tcp.dkb = self
        self._thread: Optional[threading.Thread] = None
        self.started_at = time.time()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def start(self) -> "DkbServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="dkb-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (for ``python -m repro serve``)."""
        self._tcp.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        """Stop accepting, join the serve thread, close the pool."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.watchdog is not None:
            self.watchdog.close()  # reverts any escalation still applied
        if self.exporter is not None:
            self.exporter.close()
        self.pool.close()

    def __enter__(self) -> "DkbServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- live observability ------------------------------------------------

    def record_span(self, reply: dict[str, Any], elapsed: float) -> None:
        """Feed one finished request into the rolling time-series store."""
        store = self.timeseries
        if store is None:  # pragma: no cover - callers check first
            return
        ok = bool(reply.get("ok"))
        code = "" if ok else str(reply.get("error", {}).get("code", ""))
        shed = code in ("SERVER_BUSY", "TIMEOUT")
        store.record_request(
            elapsed,
            cached=bool(reply.get("cached")),
            error=not ok and not shed,
            shed=shed,
        )
        version = reply.get("version")
        if isinstance(version, int):
            store.record_version(version)

    def _watchdog_rules(
        self, config: WatchdogConfig
    ) -> "list[tuple[SloRule, list[CallbackAction]]]":
        """The built-in SLO rules wired to this server's levers."""
        rules: list[tuple[SloRule, list[CallbackAction]]] = []
        if config.p95_ms is not None:
            actions: list[CallbackAction] = []
            if config.escalate_tracing:
                actions.append(self._tracing_action())
            if config.switch_strategy is not None:
                actions.append(
                    self._policy_action(
                        "policy.strategy",
                        self.policy.set_strategy,
                        config.switch_strategy,
                    )
                )
            if config.switch_optimize is not None:
                actions.append(
                    self._policy_action(
                        "policy.optimize",
                        self.policy.set_optimize,
                        config.switch_optimize,
                    )
                )
            if config.tighten_waiters is not None:
                actions.append(self._admission_action(config.tighten_waiters))
            rules.append(
                (
                    SloRule(
                        "p95_latency",
                        "p95_ms",
                        config.p95_ms,
                        direction="gt",
                        breach_windows=config.breach_windows,
                        recover_windows=config.recover_windows,
                        alpha=config.alpha,
                        min_requests=config.min_requests,
                    ),
                    actions,
                )
            )
        if config.cache_hit_rate is not None:
            cache_actions = (
                [self._tracing_action()] if config.escalate_tracing else []
            )
            rules.append(
                (
                    SloRule(
                        "cache_hit_rate",
                        "cache_hit_rate",
                        config.cache_hit_rate,
                        direction="lt",
                        breach_windows=config.breach_windows,
                        recover_windows=config.recover_windows,
                        alpha=config.alpha,
                        min_requests=config.min_requests,
                    ),
                    cache_actions,
                )
            )
        return rules

    def _tracing_action(self) -> CallbackAction:
        """Escalate/restore structured tracing on the pool's sessions."""

        def apply() -> str:
            self.pool.escalate_tracing()
            self.metrics.counter("server.watchdog.trace_escalations").inc()
            return "tracing escalated"

        return CallbackAction("escalate_tracing", apply, self.pool.restore_tracing)

    def _policy_action(
        self, name: str, setter: Any, value: Any
    ) -> CallbackAction:
        """Flip one ServingPolicy knob, restoring the previous override."""
        previous: list[Any] = []

        def apply() -> str:
            previous.append(setter(value))
            self.metrics.counter("server.watchdog.policy_switches").inc()
            return f"{name} -> {value!r}"

        def revert() -> None:
            setter(previous.pop() if previous else None)

        return CallbackAction(name, apply, revert)

    def _admission_action(self, waiters: int) -> CallbackAction:
        """Tighten the admission wait queue; restore the old bound after."""
        previous: list[tuple[int, int]] = []

        def apply() -> str:
            previous.append(self.pool.admission.resize(max_waiters=waiters))
            self.metrics.counter("server.watchdog.admission_tightenings").inc()
            return f"admission max_waiters -> {waiters}"

        def revert() -> None:
            if previous:
                _, max_waiters = previous.pop()
                self.pool.admission.resize(max_waiters=max_waiters)

        return CallbackAction("tighten_admission", apply, revert)

    def _refresh_gauges(self) -> None:
        """Pre-scrape hook: mirror point-in-time state into gauges."""
        admission = self.pool.admission.snapshot()
        self.metrics.gauge("server.admission.in_use").set(
            float(admission["in_use"] or 0)
        )
        self.metrics.gauge("server.admission.waiting").set(
            float(admission["waiting"] or 0)
        )
        self.metrics.gauge("server.admission.slots").set(
            float(admission["slots"] or 0)
        )
        self.metrics.gauge("server.admission.max_waiters").set(
            float(admission["max_waiters"] or 0)
        )
        self.metrics.gauge("server.dkb_version").set(float(self.pool.version()))
        store = self.timeseries
        if store is not None:
            latest = store.latest()
            if latest is not None:
                for stat in (
                    "throughput",
                    "p50_ms",
                    "p95_ms",
                    "p99_ms",
                    "cache_hit_rate",
                    "shed_rate",
                    "error_rate",
                    "version_advance",
                ):
                    self.metrics.gauge(f"server.window.{stat}").set(
                        latest.stat(stat)
                    )
        if self.watchdog is not None:
            self.metrics.gauge("server.watchdog.breached").set(
                float(len(self.watchdog.breached_rules()))
            )

    # -- request dispatch --------------------------------------------------

    # -- cluster helpers ---------------------------------------------------

    def stale_details(self, error: StaleSnapshot) -> dict[str, Any]:
        """The structured hint payload of a ``STALE_REPLICA`` reply."""
        details: dict[str, Any] = {
            "version": error.version,
            "min_version": error.min_version,
            "retry_after": self.config.replication_poll,
        }
        if self.config.leader is not None:
            details["leader"] = list(self.config.leader)
        return details

    def _check_shard(self, message: dict[str, Any]) -> None:
        """Refuse requests addressed to a different shard (retryable)."""
        target = message.get("shard")
        if target is None or self.config.shard_id is None:
            return
        if target != self.config.shard_id:
            raise ProtocolError(
                ErrorCode.WRONG_SHARD,
                f"request addressed to shard {target}, but this is "
                f"shard {self.config.shard_id}",
                {"shard": self.config.shard_id},
            )

    def _check_writable(self, op: str) -> None:
        """Replicas refuse every mutating op, pointing at the primary."""
        if self.config.role == "replica":
            details: dict[str, Any] = {}
            if self.config.shard_id is not None:
                details["shard"] = self.config.shard_id
            if self.config.leader is not None:
                details["leader"] = list(self.config.leader)
            raise ProtocolError(
                ErrorCode.WRONG_SHARD,
                f"op {op!r} needs the shard's writer, but this is a "
                "read-only replica",
                details,
            )

    def _identity(self) -> dict[str, Any]:
        """Shard-identity fields stamped onto replies inside a cluster."""
        if self.config.shard_id is None:
            return {}
        return {"shard": self.config.shard_id, "role": self.config.role}

    # -- ops ---------------------------------------------------------------

    def dispatch(
        self, message: dict[str, Any], session: ReaderSession
    ) -> dict[str, Any]:
        """Serve one validated request; returns the success reply."""
        op = message["op"]
        request_id = message.get("id")
        self._check_shard(message)
        if op in ("update", "define", "materialize"):
            self._check_writable(op)
        if op == "ping":
            return ok_reply(
                request_id,
                pong=True,
                protocol=PROTOCOL_VERSION,
                version=self.pool.version(),
                **self._identity(),
            )
        if op == "query":
            return self._dispatch_query(message, session)
        if op == "update":
            return self._dispatch_update(message)
        if op == "define":
            added = self.pool.define(message["program"])
            return ok_reply(request_id, added=added, version=self.pool.version())
        if op == "materialize":
            count = self.pool.materialize(message["predicate"])
            return ok_reply(request_id, count=count, version=self.pool.version())
        if op == "lint":
            report = session.lint(message.get("q"))
            return ok_reply(
                request_id,
                diagnostics=[
                    {
                        "code": d.code,
                        "severity": d.severity.value,
                        "message": d.message,
                        "predicate": d.predicate,
                    }
                    for d in report.diagnostics
                ],
            )
        if op == "stats":
            return ok_reply(request_id, stats=self.stats())
        raise ProtocolError(ErrorCode.BAD_REQUEST, f"unknown op {op!r}")

    def _dispatch_query(
        self, message: dict[str, Any], session: ReaderSession
    ) -> dict[str, Any]:
        # ServingPolicy overrides fill in knobs the client left out; an
        # explicit value in the request always wins (see km.policy).
        strategy_name = message.get(
            "strategy",
            self.policy.default_strategy(LfpStrategy.SEMINAIVE.value),
        )
        try:
            strategy = LfpStrategy(strategy_name)
        except ValueError:
            known = ", ".join(s.value for s in LfpStrategy)
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"unknown strategy {strategy_name!r}; expected one of: {known}",
            ) from None
        optimize = message.get("optimize", self.policy.default_optimize(False))
        use_cache = message.get("use_cache", self.policy.default_use_cache(True))
        result = session.query(
            message["q"],
            bindings=message.get("bindings"),
            strategy=strategy,
            optimize=optimize,
            use_views=message.get("use_views", True),
            use_cache=use_cache,
            timeout=self.config.request_timeout,
            min_version=message.get("min_version"),
        )
        return ok_reply(
            message.get("id"),
            rows=[list(row) for row in result.rows],
            count=len(result.rows),
            version=result.version,
            cached=result.cached,
            answered_from_view=result.answered_from_view,
            seconds=result.seconds,
            **self._identity(),
        )

    def _dispatch_update(self, message: dict[str, Any]) -> dict[str, Any]:
        predicate = message["predicate"]
        rows = [tuple(row) for row in message["rows"]]
        self._check_row_ownership(predicate, rows)
        if message["action"] == "insert":
            types = message.get("types")
            count = self.pool.load_facts(predicate, rows, types=types)
        else:
            count = self.pool.delete_facts(predicate, rows)
        return ok_reply(
            message.get("id"),
            count=count,
            version=self.pool.version(),
            **self._identity(),
        )

    def _check_row_ownership(
        self, predicate: str, rows: list[tuple]
    ) -> None:
        """Hash-check update rows against this shard's partition."""
        spec = self.config.partition
        shard = self.config.shard_id
        if spec is None or shard is None or not spec.is_partitioned(predicate):
            return
        for row in rows:
            owner = spec.shard_of_row(predicate, row)
            if owner != shard:
                raise ProtocolError(
                    ErrorCode.WRONG_SHARD,
                    f"row {list(row)!r} of {predicate!r} hashes to shard "
                    f"{owner}, not this shard ({shard})",
                    {"shard": shard, "owner": owner},
                )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``stats`` op payload: pool, cache, admission, and metrics."""
        payload = {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "pool": self.pool.snapshot(),
            "metrics": self.metrics.snapshot(),
            "policy": self.policy.overrides(),
            **self._identity(),
        }
        if self.timeseries is not None:
            payload["windows"] = self.timeseries.snapshot()
        if self.watchdog is not None:
            payload["watchdog"] = self.watchdog.snapshot()
        if self.exporter is not None:
            payload["metrics_address"] = list(self.exporter.address)
        return payload
