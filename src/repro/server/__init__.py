"""The concurrent query server: a multi-session D/KBMS service.

The paper's testbed is one interactive session — one Knowledge Manager
compiling one query at a time over one embedded-SQL connection.  This
package grows that into a service: a :class:`~repro.server.service.DkbServer`
accepts many TCP clients, draws per-connection :class:`~repro.km.session.
Testbed` handles from a :class:`~repro.server.pool.SessionPool` over one
SQLite file in WAL mode, serializes updates through a single-writer lock
that bumps a persistent D/KB version, and answers repeated queries from a
version-keyed result cache.

Layers:

* :mod:`~repro.server.protocol` — the line-oriented JSON wire protocol;
* :mod:`~repro.server.admission` — bounded admission control (slots,
  waiter cap, timeouts, ``SERVER_BUSY`` load shedding);
* :mod:`~repro.server.pool` — the session pool: single writer, many
  snapshot readers, monotonic D/KB version persisted in the catalog;
* :mod:`~repro.server.cache` — the versioned query-result cache;
* :mod:`~repro.server.service` — the ``ThreadingTCPServer`` service;
* :mod:`~repro.server.client` — a blocking client;
* :mod:`~repro.server.loadgen` — a multi-process closed-loop load
  generator reporting throughput and latency percentiles.
"""

from .admission import AdmissionController, AdmissionTimeout, ServerBusy
from .cache import VersionedResultCache, canonical_query
from .client import (
    DkbClient,
    ServerError,
    StaleReplicaError,
    WrongShardError,
)
from .loadgen import LoadgenReport, run_loadgen
from .pool import ReadResult, SessionPool, StaleSnapshot
from .protocol import ErrorCode, ProtocolError
from .service import DkbServer, ServerConfig

__all__ = [
    "AdmissionController",
    "AdmissionTimeout",
    "DkbClient",
    "DkbServer",
    "ErrorCode",
    "LoadgenReport",
    "ProtocolError",
    "ReadResult",
    "ServerBusy",
    "ServerConfig",
    "ServerError",
    "SessionPool",
    "StaleReplicaError",
    "StaleSnapshot",
    "VersionedResultCache",
    "WrongShardError",
    "canonical_query",
    "run_loadgen",
]
