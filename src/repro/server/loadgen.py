"""A closed-loop load generator for the query server.

Each simulated client is a closed loop in its own worker (a forked process
when the platform allows, else a thread): connect, issue a query, record
the latency, *think* for ``think_time`` seconds, repeat, and reconnect
every ``reconnect_every`` requests so connection slots recycle.  With the
server's per-connection session checkout this is the textbook interactive
workload: a single-session server serves roughly ``1 / (S + Z)`` requests
per second (service time S, think time Z), and adding reader sessions
scales throughput by overlapping the clients' think time — the effect the
throughput-scaling benchmark measures.

``SERVER_BUSY`` / admission-timeout replies are counted separately from
errors: shedding under overload is the server *working as designed*.
"""

from __future__ import annotations

import math
import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from .client import DkbClient, ServerError

QuerySpec = Union[str, dict]
#: One loadgen target: ``(host, port)`` or a ``"host:port"`` string.
Target = Union[tuple[str, int], str]

_SHED_CODES = frozenset({"SERVER_BUSY", "TIMEOUT", "SHUTTING_DOWN"})


def parse_target(target: Target) -> tuple[str, int]:
    """Normalize one target address to ``(host, port)``."""
    if isinstance(target, str):
        host, _, port = target.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"target must look like host:port, got {target!r}")
        return host, int(port)
    host, port = target
    return str(host), int(port)


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` (0..1) percentile of ``samples`` (nearest-rank).

    Nearest-rank: the smallest ordered sample whose cumulative share of the
    data is at least ``fraction`` — rank ``ceil(fraction * n)``, 1-based.
    This always returns an actual sample (no interpolation), and the p100
    of any non-empty sequence is its maximum.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


@dataclass
class LoadgenReport:
    """Aggregate outcome of one load-generation run."""

    clients: int
    duration_seconds: float
    requests: int
    errors: int
    busy: int
    cached: int
    throughput: float
    latency_ms: dict[str, float] = field(default_factory=dict)
    #: successful requests per target address ("host:port"), for runs that
    #: spread clients over several targets (router vs direct-shard A/B).
    by_target: dict[str, int] = field(default_factory=dict)
    #: per-interval breakdown (``interval`` runs only): one dict per
    #: elapsed window with start offset, requests, throughput, latency
    #: quantiles, and cache hits — how throughput/latency *moved* during
    #: the run, which is what the adaptive bench plots.
    windows: list[dict[str, float]] = field(default_factory=list)

    @property
    def cache_hit_fraction(self) -> float:
        """Fraction of successful requests answered from the result cache."""
        return self.cached / self.requests if self.requests else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form for bench reports and the CLI."""
        payload = {
            "clients": self.clients,
            "duration_seconds": self.duration_seconds,
            "requests": self.requests,
            "errors": self.errors,
            "busy": self.busy,
            "cached": self.cached,
            "cache_hit_fraction": self.cache_hit_fraction,
            "throughput_rps": self.throughput,
            "latency_ms": dict(self.latency_ms),
            "by_target": dict(self.by_target),
        }
        if self.windows:
            payload["windows"] = [dict(window) for window in self.windows]
        return payload


def _normalize(spec: QuerySpec) -> dict[str, Any]:
    return {"q": spec} if isinstance(spec, str) else dict(spec)


def _client_loop(
    host: str,
    port: int,
    worker_id: int,
    duration: float,
    think_time: float,
    queries: Sequence[dict[str, Any]],
    reconnect_every: int,
    connect_timeout: float,
    out: Any,
    epoch: Optional[float] = None,
) -> None:
    """One closed-loop client; must stay module-level for process fork/spawn.

    ``epoch`` (a parent-captured ``time.monotonic()`` value) turns on
    per-sample timestamping for windowed reports: CLOCK_MONOTONIC is
    system-wide, so offsets computed in forked workers line up with the
    parent's windows.
    """
    deadline = time.monotonic() + duration
    latencies: list[float] = []
    samples: list[tuple[float, float, bool]] = []
    requests = errors = busy = cached = 0
    position = worker_id  # stagger which query each client starts on
    while time.monotonic() < deadline:
        try:
            with DkbClient(host, port, timeout=connect_timeout) as client:
                for _ in range(reconnect_every):
                    if time.monotonic() >= deadline:
                        break
                    spec = queries[position % len(queries)]
                    position += 1
                    started = time.perf_counter()
                    reply = client.query(**spec)
                    elapsed = time.perf_counter() - started
                    latencies.append(elapsed)
                    requests += 1
                    hit = bool(reply.get("cached"))
                    if hit:
                        cached += 1
                    if epoch is not None:
                        samples.append(
                            (time.monotonic() - epoch, elapsed, hit)
                        )
                    if think_time:
                        time.sleep(think_time)
        except ServerError as error:
            if error.code in _SHED_CODES:
                busy += 1
                time.sleep(0.005)
            else:
                errors += 1
        except (ConnectionError, OSError):
            errors += 1
            time.sleep(0.005)
    out.put(
        {
            "requests": requests,
            "errors": errors,
            "busy": busy,
            "cached": cached,
            "latencies": latencies,
            "samples": samples,
            "target": f"{host}:{port}",
        }
    )


def _window_rows(
    samples: "list[tuple[float, float, bool]]", interval: float
) -> "list[dict[str, float]]":
    """Bucket timestamped samples into tumbling ``interval``-wide windows."""
    if not samples:
        return []
    buckets: dict[int, list[tuple[float, bool]]] = {}
    for offset, latency, hit in samples:
        buckets.setdefault(int(offset // interval), []).append((latency, hit))
    rows: list[dict[str, float]] = []
    for index in range(max(buckets) + 1):
        entries = buckets.get(index, [])
        window_latencies = [latency for latency, _ in entries]
        hits = sum(1 for _, hit in entries if hit)
        rows.append(
            {
                "start_seconds": round(index * interval, 6),
                "requests": len(entries),
                "throughput_rps": len(entries) / interval,
                "cached": hits,
                "cache_hit_fraction": (
                    hits / len(entries) if entries else 0.0
                ),
                "mean_ms": (
                    sum(window_latencies) / len(window_latencies) * 1000.0
                    if window_latencies
                    else 0.0
                ),
                "p50_ms": percentile(window_latencies, 0.50) * 1000.0,
                "p95_ms": percentile(window_latencies, 0.95) * 1000.0,
                "p99_ms": percentile(window_latencies, 0.99) * 1000.0,
            }
        )
    return rows


def run_loadgen(
    host: Optional[str] = None,
    port: Optional[int] = None,
    queries: Sequence[QuerySpec] = (),
    clients: int = 8,
    duration: float = 5.0,
    think_time: float = 0.02,
    reconnect_every: int = 5,
    connect_timeout: float = 30.0,
    use_processes: Optional[bool] = None,
    targets: Optional[Sequence[Target]] = None,
    interval: Optional[float] = None,
) -> LoadgenReport:
    """Drive one or more servers with ``clients`` closed-loop clients.

    Args:
        host, port: the server's bound address (single-target form).
        queries: the query mix, round-robined per client (strings or
            ``{"q": ..., "bindings": ...}`` dicts).
        clients: number of concurrent simulated clients.
        duration: wall-clock seconds each client keeps looping.
        think_time: seconds a client idles between requests.
        reconnect_every: requests per connection before reconnecting, so
            session slots recycle across clients.
        use_processes: fork one process per client (default: yes when the
            platform supports ``fork``; else threads).
        targets: several addresses instead of ``host``/``port`` — client
            ``i`` drives ``targets[i % len(targets)]`` for its whole run
            (per-client round-robin assignment), so one run can spread an
            identical population over a router and its shards for an A/B
            comparison.  ``LoadgenReport.by_target`` breaks the successful
            requests down per address.
        interval: also report per-interval windows of that many seconds
            (``LoadgenReport.windows``): throughput, latency quantiles,
            and cache hits per elapsed window — the during-the-run view
            the adaptive bench needs.

    Returns:
        The aggregated :class:`LoadgenReport`.
    """
    if not queries:
        raise ValueError("queries must be non-empty")
    if interval is not None and interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if clients <= 0:
        raise ValueError(f"clients must be positive, got {clients}")
    if targets:
        if host is not None or port is not None:
            raise ValueError("pass either host/port or targets, not both")
        addresses = [parse_target(target) for target in targets]
    else:
        if host is None or port is None:
            raise ValueError("host and port are required without targets")
        addresses = [(host, int(port))]
    normalized = [_normalize(spec) for spec in queries]
    if use_processes is None:
        use_processes = "fork" in multiprocessing.get_all_start_methods()

    epoch = time.monotonic() if interval is not None else None

    def worker_args(index: int) -> tuple:
        target_host, target_port = addresses[index % len(addresses)]
        return (
            target_host, target_port, index, duration, think_time,
            normalized, reconnect_every, connect_timeout, out, epoch,
        )

    out: Any
    workers: list[Any]
    if use_processes:
        context = multiprocessing.get_context("fork")
        out = context.Queue()
        workers = [
            context.Process(
                target=_client_loop, args=worker_args(index), daemon=True
            )
            for index in range(clients)
        ]
    else:
        out = queue_module.Queue()
        workers = [
            threading.Thread(
                target=_client_loop, args=worker_args(index), daemon=True
            )
            for index in range(clients)
        ]

    started = time.perf_counter()
    for worker in workers:
        worker.start()
    results = [out.get(timeout=duration + 60.0) for _ in workers]
    for worker in workers:
        worker.join(timeout=10.0)
    elapsed = time.perf_counter() - started

    latencies = [sample for result in results for sample in result["latencies"]]
    requests = sum(result["requests"] for result in results)
    by_target: dict[str, int] = {}
    for result in results:
        address = result["target"]
        by_target[address] = by_target.get(address, 0) + result["requests"]
    report = LoadgenReport(
        clients=clients,
        duration_seconds=elapsed,
        requests=requests,
        errors=sum(result["errors"] for result in results),
        busy=sum(result["busy"] for result in results),
        cached=sum(result["cached"] for result in results),
        throughput=requests / elapsed if elapsed > 0 else 0.0,
        latency_ms={
            "mean": (sum(latencies) / len(latencies) * 1000.0)
            if latencies
            else 0.0,
            "p50": percentile(latencies, 0.50) * 1000.0,
            "p95": percentile(latencies, 0.95) * 1000.0,
            "p99": percentile(latencies, 0.99) * 1000.0,
        },
        by_target=by_target,
    )
    if interval is not None:
        samples = [
            tuple(sample)
            for result in results
            for sample in result.get("samples", ())
        ]
        report.windows = _window_rows(samples, interval)
    return report
