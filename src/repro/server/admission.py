"""Admission control: bounded concurrency with load shedding.

The server must degrade predictably under overload: a request that cannot
get a session slot either waits in a *bounded* queue or is shed immediately
with a ``SERVER_BUSY`` reply — never queued without bound.  The controller
is a counting semaphore with an explicit waiter cap and per-acquire
timeout, plus the counters the service exports through ``stats``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..obs.metrics import MetricsRegistry
from .protocol import ErrorCode


class AdmissionError(Exception):
    """A request the controller refused; carries the protocol error code."""

    code = ErrorCode.INTERNAL


class ServerBusy(AdmissionError):
    """All slots taken and the wait queue is full: shed the request."""

    code = ErrorCode.SERVER_BUSY


class AdmissionTimeout(AdmissionError):
    """The request waited its full time budget without getting a slot."""

    code = ErrorCode.TIMEOUT


class AdmissionController:
    """``slots`` concurrent holders, at most ``max_waiters`` queued behind.

    ``acquire`` admits immediately when a slot is free; otherwise it joins
    the wait queue unless the queue is full (``ServerBusy``) and waits up
    to ``timeout`` seconds (``AdmissionTimeout``).  Fairness follows the
    condition variable's wakeup order — good enough for a testbed service.
    """

    def __init__(
        self,
        slots: int,
        max_waiters: int = 16,
        default_timeout: float | None = 30.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if max_waiters < 0:
            raise ValueError(f"max_waiters must be >= 0, got {max_waiters}")
        self.slots = slots  # guarded-by: _lock
        self.max_waiters = max_waiters  # guarded-by: _lock
        self.default_timeout = default_timeout
        # Mirror the outcome counters into the shared registry at the
        # moment they happen, so the /metrics exporter sees admission
        # decisions (shed rate in particular) without bespoke plumbing.
        self._metrics = metrics
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._in_use = 0  # guarded-by: _lock
        self._waiting = 0  # guarded-by: _lock
        self.admitted = 0  # guarded-by: _lock
        self.rejected_busy = 0  # guarded-by: _lock
        self.rejected_timeout = 0  # guarded-by: _lock
        self.peak_in_use = 0  # guarded-by: _lock

    def _count(self, name: str) -> None:
        """Bump one mirrored ``server.admission.*`` counter (if wired)."""
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        with self._lock:
            return self._in_use

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._lock:
            return self._waiting

    def acquire(self, timeout: float | None = None) -> None:
        """Take one slot, waiting in the bounded queue if necessary.

        Args:
            timeout: seconds to wait for a slot; ``None`` uses the
                controller's default (which may itself be ``None`` =
                unbounded wait).

        Raises:
            ServerBusy: no slot free and the wait queue is full.
            AdmissionTimeout: no slot freed up within the time budget.
        """
        if timeout is None:
            timeout = self.default_timeout
        with self._lock:
            if self._in_use >= self.slots:
                if self._waiting >= self.max_waiters:
                    self.rejected_busy += 1
                    self._count("server.admission.rejected_busy")
                    raise ServerBusy(
                        f"all {self.slots} session slots busy and "
                        f"{self._waiting} requests already queued"
                    )
                self._waiting += 1
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                try:
                    while self._in_use >= self.slots:
                        remaining = (
                            None
                            if deadline is None
                            else deadline - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            self.rejected_timeout += 1
                            self._count("server.admission.rejected_timeout")
                            raise AdmissionTimeout(
                                f"no session slot freed within {timeout:.3f}s"
                            )
                        self._free.wait(remaining)
                finally:
                    self._waiting -= 1
            self._in_use += 1
            self.admitted += 1
            self._count("server.admission.admitted")
            self.peak_in_use = max(self.peak_in_use, self._in_use)

    def release(self) -> None:
        """Return one slot and wake a waiter."""
        with self._lock:
            if self._in_use <= 0:
                raise RuntimeError("release without a matching acquire")
            self._in_use -= 1
            self._free.notify()

    def record_rejected_timeout(self) -> None:
        """Count a timeout enforced outside the controller.

        The session pool's write path waits on its own writer lock; when
        that wait times out the rejection still belongs in these counters,
        so it lands here rather than poking the guarded attribute from
        another class.
        """
        with self._lock:
            self.rejected_timeout += 1
            self._count("server.admission.rejected_timeout")

    def resize(
        self,
        slots: Optional[int] = None,
        max_waiters: Optional[int] = None,
    ) -> tuple[int, int]:
        """Change the concurrency limits of a live controller.

        The SLO watchdog's tighten/relax action: shrinking ``max_waiters``
        sheds earlier (overload protection), shrinking ``slots`` drains
        naturally — holders finish, new admissions wait until the in-use
        count is under the new bound.  Growing either wakes every waiter
        so newly legal admissions happen immediately.

        Returns the previous ``(slots, max_waiters)`` pair so the caller
        can restore it on recovery.
        """
        if slots is not None and slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if max_waiters is not None and max_waiters < 0:
            raise ValueError(f"max_waiters must be >= 0, got {max_waiters}")
        with self._lock:
            previous = (self.slots, self.max_waiters)
            if slots is not None:
                grew = slots > self.slots
                self.slots = slots
                if grew:
                    self._free.notify_all()
            if max_waiters is not None:
                self.max_waiters = max_waiters
            return previous

    @contextmanager
    def admit(self, timeout: float | None = None) -> Iterator[None]:
        """``with`` form of acquire/release."""
        self.acquire(timeout)
        try:
            yield
        finally:
            self.release()

    def snapshot(self) -> dict[str, int | float | None]:
        """JSON-friendly counters for the ``stats`` op."""
        with self._lock:
            return {
                "slots": self.slots,
                "max_waiters": self.max_waiters,
                "in_use": self._in_use,
                "waiting": self._waiting,
                "admitted": self.admitted,
                "rejected_busy": self.rejected_busy,
                "rejected_timeout": self.rejected_timeout,
                "peak_in_use": self.peak_in_use,
            }
