"""Consolidated Testbed configuration.

Every session knob lives in one frozen :class:`TestbedConfig` value instead
of a growing pile of ``Testbed.__init__`` keywords.  The legacy keyword form
(``Testbed(compiled_rule_storage=False, ...)``) still works but emits a
:class:`DeprecationWarning`; new code writes::

    from repro import Testbed, TestbedConfig

    with Testbed(TestbedConfig(fastpath=FastPathConfig(), trace=True)) as tb:
        ...

``dataclasses.replace`` gives cheap variants of a base configuration, which
the benchmark drivers use to sweep one knob at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dbms.engine import DEFAULT_STATEMENT_CACHE_SIZE, ConnectionOptions
from ..maintenance.dred import MaintenancePolicy
from ..runtime.context import FastPathConfig
from .partition import PartitionSpec


@dataclass(frozen=True)
class TestbedConfig:
    """Everything a :class:`~repro.km.session.Testbed` can be told at birth.

    Attributes:
        path: SQLite database path (default: in-memory).
        compiled_rule_storage: maintain ``reachablepreds`` (the compiled
            rule form).  Turning this off reproduces the paper's
            source-form-only configuration: updates get much faster, query
            compilation slower.
        fastpath: default fast-path configuration for query execution
            (``None`` = the paper-faithful slow path; individual ``query``
            calls can override it).
        statement_cache_size: prepared-statement cache capacity of the
            underlying :class:`~repro.dbms.engine.Database`; ``0`` disables
            the cache.
        maintenance_policy: the DRed-vs-refresh cost heuristic used for
            delete maintenance of materialized views.
        trace: start the session with structured tracing enabled (spans,
            metrics, plan capture).  Off by default — tracing is designed to
            be zero-cost when disabled, and enabling it here is equivalent
            to calling :meth:`~repro.km.session.Testbed.enable_tracing`
            right after construction.
        connection: how the SQLite connection is opened
            (:class:`~repro.dbms.engine.ConnectionOptions`).  The default
            keeps the seed single-session behaviour; the concurrent query
            server opens its pooled sessions with the WAL-mode
            reader/writer presets.
        backend: name of the SQL backend holding the extensional database
            (see :func:`repro.dbms.backends.registered_backends`).  The
            default ``"sqlite"`` preserves the seed behaviour exactly;
            ``"duckdb"`` needs the optional ``duckdb`` package installed.
        partition: how the cluster splits the EDB across shards
            (:class:`~repro.km.partition.PartitionSpec`); ``None`` for the
            single-node testbed.  With ``shard_index`` set, fact loads
            into partitioned relations reject rows this shard does not
            own — the deepest layer of the cluster's WRONG_SHARD defense.
        shard_index: which hash partition this session's database holds
            (``None`` outside a cluster).
    """

    # Not a test class, despite the name — keeps pytest collection quiet.
    __test__ = False

    path: str = ":memory:"
    compiled_rule_storage: bool = True
    fastpath: FastPathConfig | None = None
    statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE
    maintenance_policy: MaintenancePolicy = field(
        default_factory=MaintenancePolicy
    )
    trace: bool = False
    connection: ConnectionOptions = field(default_factory=ConnectionOptions)
    backend: str = "sqlite"
    partition: PartitionSpec | None = None
    shard_index: int | None = None
