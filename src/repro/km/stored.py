"""The Stored D/KB Manager (paper sections 3.2.3 and 4.1).

The intensional database lives in the DBMS as four relations:

* ``ipredicates(predname, arity)`` and ``icolumns(predname, colnumber,
  coltype)`` — the intensional data dictionary, holding the inferred column
  types of derived predicates;
* ``rulesource(ruleid, headpredname, ruletext)`` — the source form of every
  stored rule;
* ``reachablepreds(frompredname, topredname)`` — the *compiled* form: the
  transitive closure of the Predicate Connection Graph of the stored rules.

``reachablepreds`` is what makes relevant-rule extraction a single indexed
SQL query whose cost depends only on the number of rules *extracted*, not on
the total number of rules stored — the paper's central rule-storage-structure
claim (Test 1).  A :class:`StoredDKB` can also be configured *without* the
compiled form (``compiled_storage=False``), in which case extraction must
chase reachability with repeated queries but updates become almost an order
of magnitude faster (Test 8).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..datalog.clauses import Clause, Program
from ..datalog.parser import parse_clause
from ..datalog.pcg import PredicateConnectionGraph
from ..dbms.engine import Database
from ..errors import UpdateError

IPREDICATES = "ipredicates"
ICOLUMNS = "icolumns"
RULESOURCE = "rulesource"
REACHABLEPREDS = "reachablepreds"


class StoredDKB:
    """Manages the intensional database storage structures."""

    def __init__(self, database: Database, compiled_storage: bool = True):
        self.database = database
        self.compiled_storage = compiled_storage
        self._ensure_tables()

    def _ensure_tables(self) -> None:
        if self.database.table_exists(RULESOURCE):
            return
        self.database.execute(
            f"CREATE TABLE {IPREDICATES} ("
            "predname TEXT PRIMARY KEY, arity INTEGER NOT NULL)"
        )
        self.database.execute(
            f"CREATE TABLE {ICOLUMNS} ("
            "predname TEXT NOT NULL, colnumber INTEGER NOT NULL, "
            "coltype TEXT NOT NULL, PRIMARY KEY (predname, colnumber))"
        )
        self.database.execute(
            f"CREATE TABLE {RULESOURCE} ("
            "ruleid INTEGER PRIMARY KEY AUTOINCREMENT, "
            "headpredname TEXT NOT NULL, ruletext TEXT NOT NULL UNIQUE)"
        )
        self.database.execute(
            f"CREATE TABLE {REACHABLEPREDS} ("
            "frompredname TEXT NOT NULL, topredname TEXT NOT NULL, "
            "PRIMARY KEY (frompredname, topredname))"
        )
        # "To speed up the execution of this query, both rulesource and
        # reachablepreds are indexed" (section 4.1).
        self.database.create_index("idx_rulesource_head", RULESOURCE, ["headpredname"])
        self.database.create_index(
            "idx_reachable_from", REACHABLEPREDS, ["frompredname"]
        )
        self.database.create_index("idx_reachable_to", REACHABLEPREDS, ["topredname"])
        self.database.create_index("idx_icolumns_pred", ICOLUMNS, ["predname"])
        self.database.commit()

    # -- extraction (query compilation path) ---------------------------------

    def extract_relevant_rules(self, predicates: Iterable[str]) -> Program:
        """All stored rules needed to solve goals over ``predicates``.

        With compiled storage this is the single SQL query of section 4.1:
        rules whose head is one of the predicates *or* reachable from one.
        Without compiled storage, reachability is chased with one query per
        frontier round.
        """
        wanted = sorted(set(predicates))
        if not wanted:
            return Program()
        if self.compiled_storage:
            return self._extract_compiled(wanted)
        return self._extract_source_only(wanted)

    def _extract_compiled(self, predicates: Sequence[str]) -> Program:
        placeholders = ", ".join("?" for __ in predicates)
        rows = self.database.execute(
            f"SELECT DISTINCT r.ruletext FROM {RULESOURCE} AS r "
            f"WHERE r.headpredname IN ({placeholders}) "
            f"OR r.headpredname IN ("
            f"  SELECT topredname FROM {REACHABLEPREDS} "
            f"  WHERE frompredname IN ({placeholders}))",
            list(predicates) * 2,
        )
        program = Program()
        for (text,) in rows:
            program.add(parse_clause(text))
        return program

    def _extract_source_only(self, predicates: Sequence[str]) -> Program:
        """Frontier-chasing extraction when only source form is stored.

        The transitive closure of the PCG "would have to be computed during
        query compilation" (section 5.3's discussion of Test 1): one indexed
        query per round, parsing as we go, until no new predicate appears.
        """
        program = Program()
        seen: set[str] = set()
        frontier = sorted(set(predicates))
        while frontier:
            placeholders = ", ".join("?" for __ in frontier)
            rows = self.database.execute(
                f"SELECT ruletext FROM {RULESOURCE} "
                f"WHERE headpredname IN ({placeholders})",
                frontier,
            )
            seen.update(frontier)
            next_frontier: set[str] = set()
            for (text,) in rows:
                clause = parse_clause(text)
                if program.add(clause):
                    for predicate in clause.body_predicates:
                        if predicate not in seen:
                            next_frontier.add(predicate)
            frontier = sorted(next_frontier)
        return program

    def reachable_predicates(self, predicates: Iterable[str]) -> set[str]:
        """Predicates reachable from ``predicates`` per the compiled closure."""
        wanted = sorted(set(predicates))
        if not wanted or not self.compiled_storage:
            return set()
        placeholders = ", ".join("?" for __ in wanted)
        rows = self.database.execute(
            f"SELECT DISTINCT topredname FROM {REACHABLEPREDS} "
            f"WHERE frompredname IN ({placeholders})",
            wanted,
        )
        return {name for (name,) in rows}

    # -- intensional data dictionary -----------------------------------------

    def derived_types_of(
        self, predicates: Iterable[str]
    ) -> dict[str, tuple[str, ...]]:
        """Column types of stored derived predicates (the ``t_readdict`` read)."""
        wanted = sorted(set(predicates))
        if not wanted:
            return {}
        placeholders = ", ".join("?" for __ in wanted)
        rows = self.database.execute(
            f"SELECT p.predname, c.colnumber, c.coltype "
            f"FROM {IPREDICATES} AS p, {ICOLUMNS} AS c "
            f"WHERE p.predname = c.predname AND p.predname IN ({placeholders}) "
            f"ORDER BY p.predname, c.colnumber",
            wanted,
        )
        out: dict[str, list[str]] = {}
        for predicate, __, coltype in rows:
            out.setdefault(predicate, []).append(coltype)
        return {p: tuple(ts) for p, ts in out.items()}

    def has_predicate(self, predicate: str) -> bool:
        """Whether the intensional dictionary knows ``predicate``."""
        rows = self.database.execute(
            f"SELECT 1 FROM {IPREDICATES} WHERE predname = ?", (predicate,)
        )
        return bool(rows)

    def register_predicate(self, predicate: str, types: Sequence[str]) -> None:
        """Add a derived predicate to the intensional dictionary.

        Raises:
            UpdateError: on a type conflict with an existing registration.
        """
        existing = self.derived_types_of([predicate]).get(predicate)
        if existing is not None:
            if existing != tuple(types):
                raise UpdateError(
                    f"stored predicate {predicate!r} has types {existing}, "
                    f"update would change them to {tuple(types)}"
                )
            return
        self.database.execute(
            f"INSERT INTO {IPREDICATES} VALUES (?, ?)", (predicate, len(types))
        )
        self.database.executemany(
            f"INSERT INTO {ICOLUMNS} VALUES (?, ?, ?)",
            [(predicate, i, t) for i, t in enumerate(types)],
        )

    # -- rule storage ----------------------------------------------------------

    def stored_rule_texts(self) -> set[str]:
        """Canonical texts of all stored rules."""
        rows = self.database.execute(f"SELECT ruletext FROM {RULESOURCE}")
        return {text for (text,) in rows}

    def rule_count(self) -> int:
        """Total number of stored rules (the paper's R_s)."""
        rows = self.database.execute(f"SELECT COUNT(*) FROM {RULESOURCE}")
        return int(rows[0][0])

    def predicate_count(self) -> int:
        """Total number of stored derived predicates (the paper's P_s)."""
        rows = self.database.execute(f"SELECT COUNT(*) FROM {IPREDICATES}")
        return int(rows[0][0])

    def store_rules(self, clauses: Iterable[Clause]) -> int:
        """Append rules in source form; returns how many were new."""
        new = 0
        for clause in clauses:
            text = str(clause)
            rows = self.database.execute(
                f"SELECT 1 FROM {RULESOURCE} WHERE ruletext = ?", (text,)
            )
            if rows:
                continue
            self.database.execute(
                f"INSERT INTO {RULESOURCE} (headpredname, ruletext) VALUES (?, ?)",
                (clause.head_predicate, text),
            )
            new += 1
        return new

    def all_rules(self) -> Program:
        """Every stored rule, parsed."""
        rows = self.database.execute(
            f"SELECT ruletext FROM {RULESOURCE} ORDER BY ruleid"
        )
        program = Program()
        for (text,) in rows:
            program.add(parse_clause(text))
        return program

    # -- compiled form maintenance ----------------------------------------------

    def closure_pairs(self) -> set[tuple[str, str]]:
        """The whole ``reachablepreds`` relation (testing/verification aid)."""
        rows = self.database.execute(
            f"SELECT frompredname, topredname FROM {REACHABLEPREDS}"
        )
        return set(rows)

    def add_edges_incremental(self, edges: Iterable[tuple[str, str]]) -> int:
        """Fold new PCG edges into the stored transitive closure.

        Implements the incremental computation of section 4.3: per new edge
        ``(u, v)``, everything that reaches ``u`` now also reaches ``v`` and
        everything ``v`` reaches — all discovered with indexed point queries,
        never touching the unaffected part of the closure.

        Returns:
            Number of closure pairs inserted.
        """
        inserted = 0
        for source, target in edges:
            rows = self.database.execute(
                f"SELECT 1 FROM {REACHABLEPREDS} "
                "WHERE frompredname = ? AND topredname = ?",
                (source, target),
            )
            if rows:
                continue
            reaches_source = {
                name
                for (name,) in self.database.execute(
                    f"SELECT frompredname FROM {REACHABLEPREDS} "
                    "WHERE topredname = ?",
                    (source,),
                )
            }
            reaches_source.add(source)
            reached_from_target = {
                name
                for (name,) in self.database.execute(
                    f"SELECT topredname FROM {REACHABLEPREDS} "
                    "WHERE frompredname = ?",
                    (target,),
                )
            }
            reached_from_target.add(target)
            before = self.database.row_count(REACHABLEPREDS)
            self.database.executemany(
                f"INSERT OR IGNORE INTO {REACHABLEPREDS} VALUES (?, ?)",
                [
                    (left, right)
                    for left in sorted(reaches_source)
                    for right in sorted(reached_from_target)
                ],
            )
            inserted += self.database.row_count(REACHABLEPREDS) - before
        return inserted

    def rebuild_closure(self) -> int:
        """Recompute ``reachablepreds`` from scratch (recovery/verification).

        Returns the number of closure pairs.
        """
        program = self.all_rules()
        pcg = PredicateConnectionGraph(program.rules)
        pairs = pcg.transitive_closure()
        self.database.execute(f"DELETE FROM {REACHABLEPREDS}")
        self.database.executemany(
            f"INSERT INTO {REACHABLEPREDS} VALUES (?, ?)", sorted(pairs)
        )
        self.database.commit()
        return len(pairs)
