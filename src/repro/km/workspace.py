"""The Workspace D/KB Manager (paper section 3.2.2).

The workspace is the memory-resident environment where the user creates rules
and facts before querying them or committing them to the Stored D/KB.  The
manager provides the three functions the paper lists: determine the
predicates reachable from a given predicate, find the cliques, and generate
the evaluation order list.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.clauses import Clause, Program
from ..datalog.evalgraph import (
    EvaluationNode,
    build_evaluation_graph,
    evaluation_order,
)
from ..datalog.parser import iter_clauses
from ..datalog.pcg import Clique, PredicateConnectionGraph, find_cliques


class WorkspaceDKB:
    """The memory-resident rule and fact workspace."""

    def __init__(self) -> None:
        self._program = Program()

    def define(self, source: str) -> list[Clause]:
        """Parse ``source`` and add every clause; returns the new clauses."""
        added = []
        for clause in iter_clauses(source):
            if self._program.add(clause):
                added.append(clause)
        return added

    def add_clause(self, clause: Clause) -> bool:
        """Add one already-parsed clause; ``False`` when already present."""
        return self._program.add(clause)

    def add_clauses(self, clauses: Iterable[Clause]) -> int:
        """Add many clauses; returns how many were new."""
        return self._program.extend(clauses)

    def clear(self) -> None:
        """Empty the workspace."""
        self._program = Program()

    def simplify(self) -> list[Clause]:
        """Drop tautological and subsumed rules; return what was removed.

        Uses theta-subsumption (:mod:`repro.datalog.subsumption`), so the
        workspace's least fixed point is unchanged.
        """
        from ..datalog.subsumption import simplify_program

        simplified, removed = simplify_program(self._program)
        if removed:
            self._program = simplified
        return removed

    @property
    def program(self) -> Program:
        """The current workspace contents."""
        return self._program

    @property
    def rules(self) -> list[Clause]:
        """Workspace rules, in entry order."""
        return self._program.rules

    @property
    def facts(self) -> list[Clause]:
        """Workspace facts, in entry order."""
        return self._program.facts

    @property
    def derived_predicates(self) -> set[str]:
        """Predicates defined by workspace rules."""
        return self._program.derived_predicates

    def pcg(self) -> PredicateConnectionGraph:
        """The Predicate Connection Graph of the workspace rules."""
        return PredicateConnectionGraph(self._program.rules)

    def reachable_from(self, *predicates: str) -> set[str]:
        """All predicates reachable from ``predicates`` in the workspace PCG."""
        return self.pcg().reachable_from(*predicates)

    def cliques(self) -> list[Clique]:
        """The cliques of the workspace rules, in evaluation order."""
        return find_cliques(self._program)

    def evaluation_order_list(self) -> list[EvaluationNode]:
        """The evaluation order list for the full workspace."""
        return evaluation_order(build_evaluation_graph(self._program))
