"""The Stored D/KB update algorithm (paper section 4.3), instrumented.

Updating moves the Workspace D/KB rules into the Stored D/KB, maintaining the
compiled rule storage structure (the transitive closure of the PCG)
*incrementally*: only the portion of the closure affected by the new rules is
recomputed, never the whole rule base.

The measured components mirror Test 9's breakdown:

* ``extract`` (``t_uextract``) — pulling the stored rules relevant to the
  workspace rules, so the composite PCG can be built;
* ``closure`` (``t_utc``)     — the incremental transitive closure;
* ``typecheck``               — the type checking step;
* ``lint``                    — the optional static-analysis vetting pass;
* ``store`` (``t_ustore``)    — writing ``rulesource``, ``ipredicates``,
  ``icolumns`` and ``reachablepreds``.

With ``compiled_storage=False`` only the source form is written, which is the
"without compiled rule storage structures" configuration of Test 8 — almost
an order of magnitude faster, at the price of slower query compilation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis import AnalysisConfig, analyze
from ..datalog.clauses import Clause, Program
from ..datalog.typecheck import infer_types
from ..dbms.catalog import ExtensionalCatalog
from ..errors import UpdateError
from ..obs.timings import TimingsMapping
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .stored import StoredDKB
from .workspace import WorkspaceDKB


@dataclass
class UpdateTimings(TimingsMapping):
    """Wall-clock seconds per update component.

    Also a read-only :class:`~collections.abc.Mapping` over the components
    (iteration excludes ``total``, so ``sum(t.values()) == t.total``).
    """

    extract: float = 0.0
    closure: float = 0.0
    typecheck: float = 0.0
    lint: float = 0.0
    store: float = 0.0

    @property
    def total(self) -> float:
        """Total update time ``t_u``."""
        return (
            self.extract
            + self.closure
            + self.typecheck
            + self.lint
            + self.store
        )

    def as_dict(self) -> dict[str, float]:
        """Component name to seconds, plus the total."""
        return {
            "extract": self.extract,
            "closure": self.closure,
            "typecheck": self.typecheck,
            "lint": self.lint,
            "store": self.store,
            "total": self.total,
        }


@dataclass
class UpdateResult:
    """Outcome of one stored-D/KB update."""

    new_rules: list[Clause]
    new_closure_pairs: int
    new_predicates: list[str]
    timings: UpdateTimings

    @property
    def total_seconds(self) -> float:
        """Total update time (the common result-object timing contract)."""
        return self.timings.total


#: Vetting configuration: undefined predicates are allowed — a stored rule
#: may reference predicates whose definitions arrive in a later update
#: (paper section 3.1) — and dictionary entries count as definitions.
VET_CONFIG = AnalysisConfig(allow_undefined=True)


def update_stored_dkb(
    workspace: WorkspaceDKB,
    stored: StoredDKB,
    catalog: ExtensionalCatalog,
    lint: bool = False,
    tracer: "Tracer | NullTracer | None" = None,
) -> UpdateResult:
    """Fold the workspace rules into the Stored D/KB.

    Follows the paper's algorithm: compute the rule difference, extract the
    relevant stored rules, build the composite PCG, incrementally extend the
    stored transitive closure, type check, then write the storage structures.

    Args:
        workspace: the Workspace D/KB whose rules are folded in.
        stored: the target Stored D/KB.
        catalog: the extensional data dictionary.
        lint: additionally vet the composite rules with the full
            static-analysis pass set and reject the update when any
            error-level diagnostic is found; the time spent is the ``lint``
            timing component.
        tracer: optional observability sink; each update component becomes
            a child span of one ``update`` span.

    Raises:
        UpdateError: when type checking fails against the stored dictionary,
            or (with ``lint=True``) when vetting finds an error.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("update", category="update") as update_span:
        result = _update_stored_dkb(workspace, stored, catalog, lint, tracer)
        if tracer.enabled:
            update_span.set("new_rules", len(result.new_rules))
            update_span.set("new_closure_pairs", result.new_closure_pairs)
    return result


def _update_stored_dkb(
    workspace: WorkspaceDKB,
    stored: StoredDKB,
    catalog: ExtensionalCatalog,
    lint: bool,
    tracer: "Tracer | NullTracer",
) -> UpdateResult:
    timings = UpdateTimings()

    # Step 1: the difference between the workspace and the stored rules, and
    # the stored rules relevant to it.  Without compiled storage there is no
    # closure to maintain, so the relevant-rule extraction — the dominant
    # update cost per Test 9 — is skipped entirely: "the update time is
    # simply the time to store the source form of the rules" (Test 8).
    started = time.perf_counter()
    with tracer.span("extract", category="update"):
        stored_texts = stored.stored_rule_texts()
        delta_rules = [c for c in workspace.rules if str(c) not in stored_texts]
        referenced: set[str] = set()
        for clause in delta_rules:
            referenced.add(clause.head_predicate)
            referenced.update(clause.body_predicates)
        if stored.compiled_storage:
            extracted = stored.extract_relevant_rules(sorted(referenced))
        else:
            extracted = Program()
    timings.extract = time.perf_counter() - started

    if not delta_rules:
        return UpdateResult([], 0, [], timings)

    # Steps 2-3: composite PCG and its (incremental) transitive closure.
    started = time.perf_counter()
    with tracer.span("closure", category="update"):
        composite = Program(list(extracted) + delta_rules)
        new_closure_pairs = 0
        if stored.compiled_storage:
            new_edges: list[tuple[str, str]] = []
            for clause in delta_rules:
                for atom in clause.body:
                    new_edges.append((clause.head_predicate, atom.predicate))
            new_closure_pairs = stored.add_edges_incremental(new_edges)
    timings.closure = time.perf_counter() - started

    # Step 4: type checking over the composite rules.
    started = time.perf_counter()
    with tracer.span("typecheck", category="update"):
        derived = composite.derived_predicates
        base_candidates = sorted(
            {
                p
                for clause in composite.rules
                for p in clause.body_predicates
                if p not in derived
            }
        )
        base_types = catalog.types_of(base_candidates)
        # Body references may point at stored derived predicates whose rules
        # were not extracted (always so in source-only mode); their types come
        # from the intensional dictionary.
        dictionary_types = stored.derived_types_of(
            sorted(derived | set(base_candidates))
        )
        try:
            # allow_undefined: a stored rule may reference predicates whose
            # definitions arrive in a later update (paper section 3.1).
            environment = infer_types(
                composite,
                {**base_types, **dictionary_types},
                allow_undefined=True,
            )
        except Exception as error:
            # Undo any closure pairs already written in step 3.
            stored.database.rollback()
            raise UpdateError(
                f"update rejected by type checking: {error}"
            ) from error
    timings.typecheck = time.perf_counter() - started

    # Optional vetting: collect-all analysis over the composite rules, run
    # before anything is written so a rejected update leaves the Stored D/KB
    # untouched (the closure pairs from step 3 are rolled back).
    if lint:
        started = time.perf_counter()
        with tracer.span("lint", category="update"):
            report = analyze(
                composite,
                config=VET_CONFIG,
                base_types=base_types,
                dictionary_types=dictionary_types,
            )
        timings.lint = time.perf_counter() - started
        if report.has_errors:
            stored.database.rollback()
            raise UpdateError(
                "update rejected by static analysis: "
                + "; ".join(str(d) for d in report.errors)
            )

    # Steps 5-7: write the dictionary, closure, and source structures.
    started = time.perf_counter()
    with tracer.span("store", category="update"):
        new_predicates: list[str] = []
        for predicate in sorted(derived):
            if not stored.has_predicate(predicate):
                stored.register_predicate(predicate, environment.of(predicate))
                new_predicates.append(predicate)
        stored.store_rules(delta_rules)
        stored.database.commit()
    timings.store = time.perf_counter() - started

    return UpdateResult(delta_rules, new_closure_pairs, new_predicates, timings)
