"""The Testbed facade: the public user API (paper section 3.1's "typical
session").

A session owns one DBMS (SQLite database), the extensional catalog, the
Stored D/KB, and a Workspace D/KB.  The user creates rules and facts in the
workspace, issues queries against workspace + stored rules, and — when
satisfied — updates the Stored D/KB with the workspace rules.

Facts always describe *base* predicates: they are loaded straight into the
extensional database.  A predicate must be purely extensional or purely
intensional (the paper's section 2.1 convention); ``define`` applies the
standard normalisation automatically when a text program mixes them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..datalog.clauses import Clause, Query
from ..datalog.parser import parse_program
from ..dbms.catalog import ExtensionalCatalog
from ..dbms.engine import DEFAULT_STATEMENT_CACHE_SIZE, Database
from ..errors import CatalogError, SemanticError
from ..runtime.context import FastPathConfig
from ..runtime.program import ExecutionResult, LfpStrategy
from .compiler import CompilationResult, QueryCompiler
from .constraints import assert_consistent, check_consistency
from .precompile import PrecompiledQueryCache, cache_key
from .stored import StoredDKB
from .update import UpdateResult, update_stored_dkb
from .workspace import WorkspaceDKB


@dataclass
class QueryResult:
    """The full outcome of one D/KB query: rows plus both measurement sets."""

    rows: list[tuple]
    compilation: CompilationResult
    execution: ExecutionResult
    execution_seconds: float

    @property
    def compile_seconds(self) -> float:
        """The paper's ``t_c``."""
        return self.compilation.timings.total

    @property
    def total_seconds(self) -> float:
        """Compilation plus execution."""
        return self.compile_seconds + self.execution_seconds


class Testbed:
    """A D/KBMS testbed session.

    Args:
        path: SQLite database path (default: in-memory).
        compiled_rule_storage: maintain ``reachablepreds`` (the compiled rule
            form).  Turning this off reproduces the paper's source-form-only
            configuration: updates get much faster, query compilation slower.
        fastpath: default fast-path configuration for query execution
            (``None`` = the paper-faithful slow path; individual ``query``
            calls can override it).
        statement_cache_size: prepared-statement cache capacity of the
            underlying :class:`Database`; ``0`` disables the cache.
    """

    # Despite the Test* name (from the paper), this is not a pytest case.
    __test__ = False

    def __init__(
        self,
        path: str = ":memory:",
        compiled_rule_storage: bool = True,
        fastpath: FastPathConfig | None = None,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
    ):
        self.database = Database(path, statement_cache_size=statement_cache_size)
        self.catalog = ExtensionalCatalog(self.database)
        self.stored = StoredDKB(self.database, compiled_storage=compiled_rule_storage)
        self.workspace = WorkspaceDKB()
        self._compiler = QueryCompiler(self.workspace, self.stored, self.catalog)
        self.precompiled = PrecompiledQueryCache()
        self.fastpath = fastpath

    def close(self) -> None:
        """Close the DBMS connection."""
        self.database.close()

    def __enter__(self) -> "Testbed":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- building the D/KB ----------------------------------------------------

    def define(self, source: str) -> list[Clause]:
        """Add rules and facts from concrete syntax.

        Rules go to the workspace; facts go to the extensional database,
        creating base relations on first use (column types inferred from the
        first fact).  Mixed predicates are normalised first.

        Returns:
            The clauses added (after normalisation).
        """
        program = parse_program(source).normalized()
        added: list[Clause] = []
        for clause in program:
            if clause.is_fact:
                self._load_fact(clause)
                added.append(clause)
            elif self.workspace.add_clause(clause):
                added.append(clause)
        # New rules can change compiled plans that depend on their head
        # predicates; the precompiled-query cache must drop those entries.
        new_rule_heads = {c.head_predicate for c in added if c.is_rule}
        self.precompiled.invalidate_for(new_rule_heads)
        return added

    def _load_fact(self, clause: Clause) -> None:
        predicate = clause.head_predicate
        row = clause.head.ground_tuple()
        if not self.catalog.has_relation(predicate):
            types = tuple(
                "INTEGER" if isinstance(value, int) else "TEXT" for value in row
            )
            self.catalog.create_relation(predicate, types)
        self.catalog.insert_facts(predicate, [row])

    def define_base_relation(
        self, predicate: str, types: Sequence[str], indexed: bool = True
    ) -> None:
        """Create an (empty) base relation with explicit column types."""
        self.catalog.create_relation(predicate, types, indexed=indexed)

    def load_facts(self, predicate: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load tuples into a base relation; returns the count loaded.

        Raises:
            CatalogError: when the relation does not exist.
        """
        if not self.catalog.has_relation(predicate):
            raise CatalogError(
                f"base relation {predicate!r} does not exist; call "
                "define_base_relation first"
            )
        return self.catalog.insert_facts(predicate, rows)

    # -- querying ----------------------------------------------------------------

    def compile_query(
        self,
        query: Union[Query, str],
        optimize: Union[bool, str] = False,
        strategy: LfpStrategy = LfpStrategy.SEMINAIVE,
    ) -> CompilationResult:
        """Compile a query without executing it (Tests 1-3 use this).

        ``optimize`` is ``True``/``False``, or ``"auto"`` to let the
        adaptive policy choose by estimated selectivity.
        """
        self._check_workspace_consistency()
        return self._compiler.compile(query, optimize, strategy)

    def query(
        self,
        query: Union[Query, str],
        optimize: Union[bool, str] = False,
        strategy: LfpStrategy = LfpStrategy.SEMINAIVE,
        precompile: bool = False,
        fastpath: FastPathConfig | None = None,
    ) -> QueryResult:
        """Compile and execute a query; returns rows and all measurements.

        With ``precompile=True`` the compiled program is looked up in (and
        stored into) the precompiled-query cache — paper conclusion 3.
        Cached plans are invalidated automatically when new rules are
        defined or the stored D/KB is updated.

        ``fastpath`` overrides the session's default fast-path
        configuration for this one execution.
        """
        if precompile:
            key = cache_key(query, optimize, strategy)
            compilation = self.precompiled.get(key)
            if compilation is None:
                compilation = self.compile_query(query, optimize, strategy)
                self.precompiled.put(key, compilation)
        else:
            compilation = self.compile_query(query, optimize, strategy)
        started = time.perf_counter()
        execution = compilation.program.execute(
            self.database,
            self.catalog,
            fastpath=fastpath if fastpath is not None else self.fastpath,
        )
        elapsed = time.perf_counter() - started
        return QueryResult(execution.rows, compilation, execution, elapsed)

    def _check_workspace_consistency(self) -> None:
        derived = self.workspace.derived_predicates
        clashes = sorted(
            p for p in derived if self.catalog.has_relation(p)
        )
        if clashes:
            raise SemanticError(
                "predicates defined by both facts and rules: "
                + ", ".join(repr(p) for p in clashes)
                + "; rename the base relation or the rule heads"
            )

    # -- updating the stored D/KB ---------------------------------------------------

    def update_stored_dkb(
        self, clear_workspace: bool = True, verify_consistency: bool = False
    ) -> UpdateResult:
        """Fold the workspace rules into the Stored D/KB (paper section 4.3).

        Also performs the precompiled-query invalidation check the paper's
        conclusion 3 calls for: cached plans depending on an updated
        predicate are dropped.  With ``verify_consistency=True`` every
        integrity constraint (:mod:`repro.km.constraints`) is checked first
        and the update is refused while violations exist — the check the
        paper's section 4.3 explicitly leaves out.
        """
        if verify_consistency:
            assert_consistent(self)
        result = update_stored_dkb(self.workspace, self.stored, self.catalog)
        self.precompiled.invalidate_for(
            {c.head_predicate for c in result.new_rules}
        )
        if clear_workspace:
            self.workspace.clear()
        return result

    def check_consistency(self) -> list:
        """Evaluate every integrity constraint; return the violations.

        Constraints are denial rules with the reserved head predicate
        ``inconsistent`` (see :mod:`repro.km.constraints`).
        """
        return check_consistency(self)

    def clear_workspace(self) -> None:
        """Empty the workspace and drop every precompiled plan.

        Cached plans may embed workspace rules, so clearing the workspace
        through this method (rather than ``workspace.clear()`` directly)
        keeps the precompiled-query cache consistent.
        """
        self.workspace.clear()
        self.precompiled.clear()

    # -- introspection ------------------------------------------------------------

    @property
    def stored_rule_count(self) -> int:
        """The paper's R_s."""
        return self.stored.rule_count()

    @property
    def stored_predicate_count(self) -> int:
        """The paper's P_s."""
        return self.stored.predicate_count()

    def explain(self, query: Union[Query, str], optimize: bool = False) -> str:
        """The generated program fragment for a query (demonstration aid)."""
        return self.compile_query(query, optimize).fragment_source
