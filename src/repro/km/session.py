"""The Testbed facade: the public user API (paper section 3.1's "typical
session").

A session owns one DBMS (SQLite database), the extensional catalog, the
Stored D/KB, and a Workspace D/KB.  The user creates rules and facts in the
workspace, issues queries against workspace + stored rules, and — when
satisfied — updates the Stored D/KB with the workspace rules.

Facts always describe *base* predicates: they are loaded straight into the
extensional database.  A predicate must be purely extensional or purely
intensional (the paper's section 2.1 convention); ``define`` applies the
standard normalisation automatically when a text program mixes them.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from ..analysis import AnalysisConfig, DiagnosticReport, analyze
from ..datalog.clauses import Clause, Program, Query
from ..datalog.parser import parse_program, parse_query
from ..datalog.terms import Atom, Variable
from ..dbms.catalog import ExtensionalCatalog, fact_table_name
from ..dbms.engine import Database
from ..dbms.schema import RelationSchema, quote_identifier
from ..dbms.sqlgen import compile_rule_body
from ..errors import CatalogError, EvaluationError, SemanticError
from ..maintenance.delta import propagate_inserts
from ..maintenance.dred import DeleteMaintenance
from ..maintenance.plan import (
    MaintenancePlan,
    MaintenanceResult,
    build_plan,
    merge_plans,
)
from ..maintenance.refresh import full_refresh
from ..maintenance.registry import MaterializedViewRegistry, view_table_name
from ..obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from ..runtime.context import FastPathConfig
from ..runtime.program import ExecutionResult, LfpStrategy
from .compiler import CompilationResult, QueryCompiler
from .config import TestbedConfig
from .constraints import assert_consistent, check_consistency
from .precompile import PrecompiledQueryCache, cache_key
from .stored import StoredDKB
from .update import UpdateResult, update_stored_dkb
from .workspace import WorkspaceDKB


# Statistics phase attributed to the view-answer fast path of ``query()``.
VIEW_ANSWER_PHASE = "view_answer"


@dataclass
class QueryResult:
    """The full outcome of one D/KB query: rows plus both measurement sets.

    ``compilation`` is ``None`` when the query was answered directly from
    materialized views (``answered_from_view``) — no compilation happened.
    """

    rows: list[tuple]
    compilation: CompilationResult | None
    execution: ExecutionResult
    execution_seconds: float
    answered_from_view: bool = False

    @property
    def timings(self) -> dict[str, float]:
        """Phase -> seconds, the common result-object timing contract.

        The compilation components (empty for view-answered queries, which
        compile nothing) plus one ``execute`` entry, so
        ``sum(result.timings.values()) == result.total_seconds`` uniformly
        across query, update, and maintenance results.
        """
        mapping: dict[str, float] = (
            {} if self.compilation is None
            else dict(self.compilation.timings.components())
        )
        mapping["execute"] = self.execution_seconds
        return mapping

    @property
    def total_seconds(self) -> float:
        """Compilation plus execution."""
        return sum(self.timings.values())

    @property
    def compile_seconds(self) -> float:
        """The paper's ``t_c`` (zero for view-answered queries).

        A thin delegate over :attr:`timings` — everything except the
        ``execute`` phase.
        """
        return self.total_seconds - self.execution_seconds


#: ``Testbed(...)`` keywords accepted for backward compatibility; each maps
#: onto the :class:`TestbedConfig` field of the same name.
_LEGACY_KEYWORDS = (
    "path",
    "compiled_rule_storage",
    "fastpath",
    "statement_cache_size",
    "maintenance_policy",
)


class Testbed:
    """A D/KBMS testbed session.

    Args:
        config: a :class:`TestbedConfig` carrying every session knob, or a
            bare database path string (shorthand for
            ``TestbedConfig(path=...)``), or ``None`` for the defaults.
        **legacy: the pre-config keywords (``path``,
            ``compiled_rule_storage``, ``fastpath``,
            ``statement_cache_size``, ``maintenance_policy``) — still
            accepted, but deprecated; each emits a
            :class:`DeprecationWarning` and maps onto the
            :class:`TestbedConfig` field of the same name.  Mixing them with
            an explicit :class:`TestbedConfig` is an error.
    """

    # Despite the Test* name (from the paper), this is not a pytest case.
    __test__ = False

    def __init__(
        self,
        config: "TestbedConfig | str | None" = None,
        **legacy: object,
    ):
        if isinstance(config, TestbedConfig):
            if legacy:
                raise TypeError(
                    "pass either a TestbedConfig or legacy keywords, not "
                    "both: " + ", ".join(sorted(legacy))
                )
        else:
            unknown = sorted(set(legacy) - set(_LEGACY_KEYWORDS))
            if unknown:
                raise TypeError(
                    "unknown Testbed keyword(s): " + ", ".join(unknown)
                )
            if isinstance(config, str):
                legacy.setdefault("path", config)
            if set(legacy) - {"path"} or (
                "path" in legacy and not isinstance(config, str)
            ):
                warnings.warn(
                    "Testbed keyword configuration is deprecated; pass a "
                    "TestbedConfig instead: Testbed(TestbedConfig(...))",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = TestbedConfig(**legacy)  # type: ignore[arg-type]
        self.config = config
        self.database = Database(
            config.path,
            statement_cache_size=config.statement_cache_size,
            options=config.connection,
            backend=config.backend,
        )
        self.catalog = ExtensionalCatalog(self.database)
        self.stored = StoredDKB(
            self.database, compiled_storage=config.compiled_rule_storage
        )
        self.workspace = WorkspaceDKB()
        self._compiler = QueryCompiler(self.workspace, self.stored, self.catalog)
        self.precompiled = PrecompiledQueryCache()
        self.fastpath = config.fastpath
        self.views = MaterializedViewRegistry(self.database)
        self.maintenance_policy = config.maintenance_policy
        self.maintenance_log: list[MaintenanceResult] = []
        self._view_plans: dict[str, MaintenancePlan] = {}
        self._tracer: Tracer | None = None
        self.last_query_span: Span | None = None
        if config.trace:
            self.enable_tracing()

    def close(self) -> None:
        """Close the DBMS connection."""
        self.database.close()

    def __enter__(self) -> "Testbed":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability -----------------------------------------------------------

    @property
    def tracer(self) -> Tracer | None:
        """The active observability sink (``None`` while tracing is off)."""
        return self._tracer

    def enable_tracing(self, capture_plans: bool = True) -> Tracer:
        """Switch structured tracing on; returns the (idempotent) tracer.

        While enabled, every query/update/maintenance operation records a
        span tree, the metrics registry accumulates counters and
        histograms, and (with ``capture_plans``) each distinct compiled
        SELECT gets an ``EXPLAIN QUERY PLAN`` snapshot.
        """
        if self._tracer is None:
            self._tracer = Tracer(capture_plans=capture_plans)
            self.database.set_tracer(self._tracer)
        return self._tracer

    def disable_tracing(self) -> Tracer | None:
        """Switch tracing off; returns the detached tracer (if any)."""
        tracer, self._tracer = self._tracer, None
        self.database.set_tracer(None)
        return tracer

    @contextmanager
    def trace(self, capture_plans: bool = True) -> Iterator[Tracer]:
        """Trace the operations inside the ``with`` block.

        Installs a fresh :class:`Tracer` (or keeps the already-enabled one)
        for the duration of the block and restores the previous tracing
        state afterwards::

            with tb.trace() as tracer:
                tb.query("?- ancestor(X, \\"john\\").")
            print(render_span_tree(tracer))
        """
        previous = self._tracer
        tracer = previous if previous is not None else Tracer(
            capture_plans=capture_plans
        )
        self._tracer = tracer
        self.database.set_tracer(tracer)
        try:
            yield tracer
        finally:
            self._tracer = previous
            self.database.set_tracer(previous)

    def _active_tracer(self) -> "Tracer | NullTracer":
        return self._tracer if self._tracer is not None else NULL_TRACER

    # -- building the D/KB ----------------------------------------------------

    def define(self, source: str) -> list[Clause]:
        """Add rules and facts from concrete syntax.

        Rules go to the workspace; facts go to the extensional database,
        creating base relations on first use (column types inferred from the
        first fact).  Mixed predicates are normalised first.

        Returns:
            The clauses added (after normalisation).
        """
        program = parse_program(source).normalized()
        added: list[Clause] = []
        for clause in program:
            if clause.is_fact:
                self._load_fact(clause)
                added.append(clause)
            elif self.workspace.add_clause(clause):
                added.append(clause)
                # A new rule can change what the predicate (and everything
                # above it) derives; views built over it go stale right
                # away, so facts later in this same program are not
                # incrementally propagated under an outdated plan.
                self._invalidate_views_for({clause.head_predicate})
        # New rules can change compiled plans that depend on their head
        # predicates; the precompiled-query cache must drop those entries.
        new_rule_heads = {c.head_predicate for c in added if c.is_rule}
        self.precompiled.invalidate_for(new_rule_heads)
        return added

    def _load_fact(self, clause: Clause) -> None:
        predicate = clause.head_predicate
        row = clause.head.ground_tuple()
        if not self.catalog.has_relation(predicate):
            types = tuple(
                "INTEGER" if isinstance(value, int) else "TEXT" for value in row
            )
            self.catalog.create_relation(predicate, types)
        # Route through load_facts so materialized views stay maintained.
        self.load_facts(predicate, [row])

    def define_base_relation(
        self, predicate: str, types: Sequence[str], indexed: bool = True
    ) -> None:
        """Create an (empty) base relation with explicit column types."""
        self.catalog.create_relation(predicate, types, indexed=indexed)

    def load_facts(self, predicate: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load tuples into a base relation; returns the count loaded.

        Fresh materialized views whose rules read ``predicate`` are
        maintained incrementally (delta propagation), or fully refreshed
        when their rules contain negation.

        Raises:
            CatalogError: when the relation does not exist.
        """
        if not self.catalog.has_relation(predicate):
            raise CatalogError(
                f"base relation {predicate!r} does not exist; call "
                "define_base_relation first"
            )
        rows = [tuple(row) for row in rows]
        self._check_partition_ownership(predicate, rows)
        affected = self.views.fresh_views_on_base(predicate)
        if not affected:
            return self.catalog.insert_facts(predicate, rows)
        return self._maintain_inserts(predicate, rows, affected)

    def _check_partition_ownership(
        self, predicate: str, rows: Sequence[tuple]
    ) -> None:
        """Reject rows a sharded session's hash partition does not own."""
        spec = self.config.partition
        shard = self.config.shard_index
        if spec is None or shard is None or not spec.is_partitioned(predicate):
            return
        for row in rows:
            owner = spec.shard_of_row(predicate, row)
            if owner != shard:
                raise EvaluationError(
                    f"row {row!r} of partitioned relation {predicate!r} "
                    f"belongs to shard {owner}, not this shard ({shard})"
                )

    def delete_facts(self, predicate: str, rows: Iterable[Sequence]) -> int:
        """Delete tuples from a base relation; returns the count removed.

        Every stored copy of each listed tuple is removed.  Fresh
        materialized views whose rules read ``predicate`` are maintained by
        DRed (delete-and-rederive) when the cost heuristic
        (``maintenance_policy``) expects it to win, and by a full refresh
        otherwise.

        Raises:
            CatalogError: when the relation does not exist.
        """
        if not self.catalog.has_relation(predicate):
            raise CatalogError(
                f"base relation {predicate!r} does not exist"
            )
        rows = [tuple(row) for row in rows]
        affected = self.views.fresh_views_on_base(predicate)
        if not affected:
            return self.catalog.delete_rows(predicate, rows)
        return self._maintain_deletes(predicate, rows, affected)

    # -- materialized views -----------------------------------------------------

    def materialize(self, predicate: str) -> int:
        """Materialize a derived predicate as a persistent DBMS relation.

        The predicate's relevant rules are compiled (exactly as a query
        over it would be), its derived support set is registered in the
        materialization dictionary, and the relations are populated by a
        full semi-naive computation.  Afterwards the view is kept correct
        under :meth:`load_facts` / :meth:`delete_facts` incrementally, and
        queries over it are answered by a plain SELECT.

        Returns the number of tuples materialized for ``predicate``.

        Raises:
            SemanticError: when ``predicate`` is a base relation.
            CatalogError: when ``predicate`` is already materialized.
        """
        if self.catalog.has_relation(predicate):
            raise SemanticError(
                f"{predicate!r} is a base relation; only derived "
                "predicates can be materialized"
            )
        if self.views.is_view(predicate):
            raise CatalogError(
                f"{predicate!r} is already materialized; use refresh"
            )
        plan = self._build_plan(predicate)
        self._register_plan(predicate, plan)
        started = time.perf_counter()
        total = full_refresh(
            self.database,
            plan,
            self._tables_of(plan),
            self.fastpath,
            tracer=self._tracer,
        )
        self.views.mark_group_fresh(predicate)
        self.database.commit()
        self.maintenance_log.append(
            MaintenanceResult(
                (predicate,),
                "materialize",
                "refresh",
                seconds=time.perf_counter() - started,
                tuples_added=total,
            )
        )
        return self.views.tuple_count(predicate)

    def refresh(self, predicate: str | None = None) -> list[MaintenanceResult]:
        """Recompute materialized views from scratch.

        With ``predicate`` given, refreshes that one view; otherwise every
        registered view.  The view's plan is recompiled first, so rule-base
        changes since materialization (which mark views stale) are picked
        up.

        Raises:
            CatalogError: when ``predicate`` is not a materialized view.
        """
        if predicate is not None:
            if not self.views.is_view(predicate):
                raise CatalogError(
                    f"{predicate!r} is not a materialized view"
                )
            targets = [predicate]
        else:
            targets = [v.predicate for v in self.views.views()]
        results: list[MaintenanceResult] = []
        for view in targets:
            plan = self._build_plan(view)
            self._register_plan(view, plan)
            started = time.perf_counter()
            total = full_refresh(
                self.database,
                plan,
                self._tables_of(plan),
                self.fastpath,
                tracer=self._tracer,
            )
            self.views.mark_group_fresh(view)
            self.views.bump_epoch([view])
            result = MaintenanceResult(
                (view,),
                "refresh",
                "refresh",
                seconds=time.perf_counter() - started,
                tuples_added=total,
            )
            self.maintenance_log.append(result)
            results.append(result)
        self.database.commit()
        return results

    def drop_view(self, predicate: str) -> None:
        """Drop a materialized view (support relations other views share
        are kept).

        Raises:
            CatalogError: when ``predicate`` is not a materialized view.
        """
        self.views.unregister_view(predicate)
        self._view_plans.pop(predicate, None)

    def _build_plan(self, predicate: str) -> MaintenancePlan:
        """Compile the all-free query over ``predicate`` into a plan."""
        self._check_workspace_consistency()
        arity = self.workspace.program.arity_of(predicate)
        if arity is None:
            types = self.stored.derived_types_of([predicate]).get(predicate)
            if types is not None:
                arity = len(types)
        if arity is None:
            raise SemanticError(
                f"no rule defines {predicate!r}; cannot materialize it"
            )
        variables = tuple(Variable(f"V{i}") for i in range(arity))
        query = Query((Atom(predicate, variables),))
        compilation = self._compiler.compile(
            query,
            optimize_query=False,
            strategy=LfpStrategy.SEMINAIVE,
            tracer=self._tracer,
        )
        return build_plan(predicate, compilation)

    def _register_plan(self, view: str, plan: MaintenancePlan) -> None:
        self.views.register_view(
            view, {p: plan.types[p] for p in plan.derived}, plan.base
        )
        self._view_plans[view] = plan

    def _plan_for(self, view: str) -> MaintenancePlan:
        plan = self._view_plans.get(view)
        if plan is None:
            plan = self._build_plan(view)
            self._view_plans[view] = plan
        return plan

    def _tables_of(self, plan: MaintenancePlan) -> dict[str, str]:
        return plan.table_of(fact_table_name, view_table_name)

    def _invalidate_views_for(self, predicates: Iterable[str]) -> None:
        """Mark views stale whose derived support intersects ``predicates``."""
        stale = self.views.views_supported_by(predicates)
        if stale:
            self.views.mark_stale(stale)
            for view in stale:
                self._view_plans.pop(view, None)

    def _stage_rows(
        self, predicate: str, rows: list[tuple], keep_existing: bool
    ) -> str:
        """Stage the distinct update rows in a temporary relation.

        With ``keep_existing`` the stage keeps only rows the base relation
        currently holds (the rows a delete will actually remove); without
        it, only genuinely new rows (the Δ-seed of an insert).  Call before
        applying the base-table change.
        """
        schema = self.catalog.schema_of(predicate)
        name = self.database.fresh_temp_name(f"mstage_{predicate}")
        staged = RelationSchema(name, schema.types)
        self.database.create_relation(staged, temporary=True)
        self.database.insert_rows(staged, list(dict.fromkeys(rows)))
        columns = ", ".join(staged.columns)
        membership = "NOT IN" if keep_existing else "IN"
        self.database.execute(
            f"DELETE FROM {quote_identifier(name)} "
            f"WHERE ({columns}) {membership} "
            f"(SELECT {columns} FROM {quote_identifier(schema.name)})"
        )
        return name

    def _maintain_inserts(
        self, predicate: str, rows: list[tuple], views: list[str]
    ) -> int:
        plans = [self._plan_for(v) for v in views]
        merged = merge_plans(plans)
        stage = self._stage_rows(predicate, rows, keep_existing=False)
        count = self.catalog.insert_facts(predicate, rows)
        started = time.perf_counter()
        if merged.has_negation:
            self._refresh_fallback(
                views, plans, "insert", "rules contain negation", count
            )
        else:
            stats = propagate_inserts(
                self.database,
                merged,
                self._tables_of(merged),
                {predicate: stage},
                tracer=self._tracer,
            )
            self.views.bump_epoch(views)
            self.maintenance_log.append(
                MaintenanceResult(
                    tuple(views),
                    "insert",
                    "delta",
                    seconds=time.perf_counter() - started,
                    base_rows_changed=count,
                    tuples_added=stats.tuples_added,
                    iterations=stats.iterations,
                )
            )
        self.database.drop_relation(stage)
        self.database.commit()
        return count

    def _maintain_deletes(
        self, predicate: str, rows: list[tuple], views: list[str]
    ) -> int:
        plans = [self._plan_for(v) for v in views]
        merged = merge_plans(plans)
        stage = self._stage_rows(predicate, rows, keep_existing=True)
        decision = self.maintenance_policy.decide(
            self.database.row_count(stage),
            self.catalog.fact_count(predicate),
            sum(self.views.tuple_count(p) for p in merged.derived),
        )
        started = time.perf_counter()
        run = None
        if not merged.has_negation and decision.use_incremental:
            # Over-delete against the pre-deletion base relations: a rule
            # joining the deleted relation against itself derives
            # candidates from pairs of deleted rows, invisible afterwards.
            run = DeleteMaintenance(
                self.database, merged, self._tables_of(merged), tracer=self._tracer
            )
            run.overdelete({predicate: stage})
        deleted = self.catalog.delete_rows(predicate, rows)
        if run is not None:
            stats = run.apply_and_rederive()
            self.views.bump_epoch(views)
            self.maintenance_log.append(
                MaintenanceResult(
                    tuple(views),
                    "delete",
                    "dred",
                    seconds=time.perf_counter() - started,
                    base_rows_changed=deleted,
                    tuples_removed=stats.tuples_removed,
                    iterations=stats.iterations,
                    decision=decision,
                )
            )
        else:
            reason = (
                "rules contain negation"
                if merged.has_negation
                else decision.reason
            )
            self._refresh_fallback(
                views, plans, "delete", reason, deleted, decision
            )
        self.database.drop_relation(stage)
        self.database.commit()
        return deleted

    def _refresh_fallback(
        self,
        views: list[str],
        plans: list[MaintenancePlan],
        trigger: str,
        reason: str,
        base_rows_changed: int,
        decision: object | None = None,
    ) -> None:
        """Full-refresh every affected view (the incremental paths' fallback)."""
        started = time.perf_counter()
        total = 0
        for view, plan in zip(views, plans):
            total += full_refresh(
                self.database,
                plan,
                self._tables_of(plan),
                self.fastpath,
                tracer=self._tracer,
            )
            self.views.mark_group_fresh(view)
        self.views.bump_epoch(views)
        self.maintenance_log.append(
            MaintenanceResult(
                tuple(views),
                trigger,
                "refresh",
                fell_back=True,
                reason=reason,
                seconds=time.perf_counter() - started,
                base_rows_changed=base_rows_changed,
                tuples_added=total,
                decision=decision,
            )
        )

    def _answer_from_views(self, query: Query) -> "QueryResult | None":
        """Answer a query by a plain SELECT over views and base relations.

        Applicable when every goal predicate is either a fresh materialized
        relation or a base relation (and at least one goal is positive);
        returns ``None`` otherwise, sending the query down the ordinary
        compile-and-evaluate path.
        """
        table_of: dict[str, str] = {}
        for goal in query.goals:
            predicate = goal.predicate
            if predicate in table_of:
                continue
            if self.views.is_fresh(predicate):
                table_of[predicate] = view_table_name(predicate)
            elif self.catalog.has_relation(predicate):
                table_of[predicate] = fact_table_name(predicate)
            else:
                return None
        if all(goal.negated for goal in query.goals):
            return None
        started = time.perf_counter()
        select = compile_rule_body(query.as_clause())
        tracer = self._active_tracer()
        with tracer.span(
            "view_answer", category="query"
        ), self.database.phase(VIEW_ANSWER_PHASE):
            rows = self.database.execute(
                select.render([table_of[p] for p in select.table_slots]),
                select.parameters,
            )
        if not query.answer_variables:
            rows = [()] if rows else []
        elapsed = time.perf_counter() - started
        return QueryResult(
            rows, None, ExecutionResult(rows), elapsed, answered_from_view=True
        )

    # -- querying ----------------------------------------------------------------

    def compile_query(
        self,
        query: Union[Query, str],
        optimize: Union[bool, str] = False,
        strategy: LfpStrategy = LfpStrategy.SEMINAIVE,
        lint: bool = False,
    ) -> CompilationResult:
        """Compile a query without executing it (Tests 1-3 use this).

        ``optimize`` is ``True``/``False``, or ``"auto"`` to let the
        adaptive policy choose by estimated selectivity.  With ``lint=True``
        the full static-analysis report is attached to the result
        (``CompilationResult.diagnostics``) and its cost recorded as the
        ``lint`` timing component.
        """
        self._check_workspace_consistency()
        return self._compiler.compile(
            query, optimize, strategy, lint=lint, tracer=self._tracer
        )

    def query(
        self,
        query: Union[Query, str],
        optimize: Union[bool, str] = False,
        strategy: LfpStrategy = LfpStrategy.SEMINAIVE,
        precompile: bool = False,
        fastpath: FastPathConfig | None = None,
        use_views: bool = True,
    ) -> QueryResult:
        """Compile and execute a query; returns rows and all measurements.

        With ``precompile=True`` the compiled program is looked up in (and
        stored into) the precompiled-query cache — paper conclusion 3.
        Cached plans are invalidated automatically when new rules are
        defined or the stored D/KB is updated.

        ``fastpath`` overrides the session's default fast-path
        configuration for this one execution.

        With ``use_views=True`` (the default) a query whose goals are all
        fresh materialized views or base relations is answered by a plain
        SELECT over those relations — no compilation, no LFP evaluation
        (``QueryResult.answered_from_view`` marks such results).  Pass
        ``use_views=False`` to force the compile-and-evaluate path.
        """
        tracer = self._active_tracer()
        with tracer.span("query", category="query", text=str(query)):
            result = self._query(
                query, optimize, strategy, precompile, fastpath, use_views, tracer
            )
        if self._tracer is not None:
            self.last_query_span = self._tracer.last_root
        return result

    def _query(
        self,
        query: Union[Query, str],
        optimize: Union[bool, str],
        strategy: LfpStrategy,
        precompile: bool,
        fastpath: FastPathConfig | None,
        use_views: bool,
        tracer: "Tracer | NullTracer",
    ) -> QueryResult:
        if use_views and self.views.has_views():
            if isinstance(query, str):
                query = parse_query(query)
            answered = self._answer_from_views(query)
            if answered is not None:
                return answered
        if precompile:
            key = cache_key(query, optimize, strategy)
            compilation = self.precompiled.get(key)
            if compilation is None:
                compilation = self.compile_query(query, optimize, strategy)
                self.precompiled.put(key, compilation)
        else:
            compilation = self.compile_query(query, optimize, strategy)
        started = time.perf_counter()
        with tracer.span("execute", category="execute"):
            execution = compilation.program.execute(
                self.database,
                self.catalog,
                fastpath=fastpath if fastpath is not None else self.fastpath,
                tracer=tracer,
            )
        elapsed = time.perf_counter() - started
        return QueryResult(execution.rows, compilation, execution, elapsed)

    def _check_workspace_consistency(self) -> None:
        derived = self.workspace.derived_predicates
        clashes = sorted(
            p for p in derived if self.catalog.has_relation(p)
        )
        if clashes:
            raise SemanticError(
                "predicates defined by both facts and rules: "
                + ", ".join(repr(p) for p in clashes)
                + "; rename the base relation or the rule heads"
            )

    # -- updating the stored D/KB ---------------------------------------------------

    def update_stored_dkb(
        self,
        clear_workspace: bool = True,
        verify_consistency: bool = False,
        lint: bool = False,
    ) -> UpdateResult:
        """Fold the workspace rules into the Stored D/KB (paper section 4.3).

        Also performs the precompiled-query invalidation check the paper's
        conclusion 3 calls for: cached plans depending on an updated
        predicate are dropped.  With ``verify_consistency=True`` every
        integrity constraint (:mod:`repro.km.constraints`) is checked first
        and the update is refused while violations exist — the check the
        paper's section 4.3 explicitly leaves out.  With ``lint=True`` the
        update is vetted by the static analyzer and refused when any
        error-level diagnostic is found.
        """
        if verify_consistency:
            assert_consistent(self)
        result = update_stored_dkb(
            self.workspace, self.stored, self.catalog, lint=lint,
            tracer=self._tracer,
        )
        self.precompiled.invalidate_for(
            {c.head_predicate for c in result.new_rules}
        )
        if clear_workspace:
            self.workspace.clear()
        return result

    def lint(
        self,
        query: Union[Query, str, None] = None,
        config: AnalysisConfig | None = None,
    ) -> DiagnosticReport:
        """Statically analyze the session's whole rule base, collect-all.

        Runs every registered lint pass (:mod:`repro.analysis`) over the
        workspace rules plus *all* stored rules, with base-relation types
        from the extensional dictionary and stored derived types from the
        intensional dictionary.  Unlike compilation this never raises on
        findings — the report carries everything, errors included.

        Args:
            query: optional query context; enables the reachability and
                adornment passes.
            config: optional :class:`AnalysisConfig` overriding the pass
                selection.
        """
        if isinstance(query, str):
            query = parse_query(query)
        program = Program(
            list(self.workspace.program.rules) + list(self.stored.all_rules())
        )
        base_types = self.catalog.types_of(self.catalog.relation_names())
        dictionary_types = self.stored.derived_types_of(
            sorted(program.derived_predicates)
        )
        return analyze(
            program,
            query,
            config=config,
            base_types=base_types,
            dictionary_types=dictionary_types,
        )

    def check_consistency(self) -> list:
        """Evaluate every integrity constraint; return the violations.

        Constraints are denial rules with the reserved head predicate
        ``inconsistent`` (see :mod:`repro.km.constraints`).
        """
        return check_consistency(self)

    def clear_workspace(self) -> None:
        """Empty the workspace and drop every precompiled plan.

        Cached plans may embed workspace rules, so clearing the workspace
        through this method (rather than ``workspace.clear()`` directly)
        keeps the precompiled-query cache consistent.  Materialized views
        built over workspace rules are marked stale.
        """
        derived = self.workspace.derived_predicates
        self.workspace.clear()
        self.precompiled.clear()
        self._invalidate_views_for(derived)

    # -- introspection ------------------------------------------------------------

    @property
    def stored_rule_count(self) -> int:
        """The paper's R_s."""
        return self.stored.rule_count()

    @property
    def stored_predicate_count(self) -> int:
        """The paper's P_s."""
        return self.stored.predicate_count()

    def explain(self, query: Union[Query, str], optimize: bool = False) -> str:
        """The generated program fragment for a query (demonstration aid)."""
        return self.compile_query(query, optimize).fragment_source
