"""The Semantic Checker (paper section 3.2.4), on top of the analysis engine.

Two checks run after the relevant rules are assembled:

1. **Definedness** — every derived predicate reachable from the query has at
   least one defining rule (a predicate defined by neither rules nor a base
   relation is an error).
2. **Type checking** — infer the column types of every relevant derived
   predicate and verify all defining rules agree
   (:mod:`repro.datalog.typecheck`), cross-checking against any types already
   recorded in the intensional data dictionary.

We additionally run the safety (range-restriction) check the paper defers to
future work, because unsafe rules cannot be compiled to SQL anyway, and the
stratification check for the negation extension.

Since the analyzer PR, all four checks run through the collect-all
diagnostics engine (:mod:`repro.analysis`): :func:`check_semantics` asks the
engine for the error-level passes and, to preserve the paper's fail-fast
contract, raises the historical exception type for the highest-precedence
code present — definedness before safety before stratification before
types, the paper's check order.  (The report itself is sorted by code for
deterministic output, so precedence is applied here explicitly rather than
by report position.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..analysis import SEMANTIC_PASSES, AnalysisConfig, DiagnosticReport, analyze
from ..analysis import codes as diagnostic_codes
from ..datalog.clauses import Program, Query
from ..datalog.typecheck import TypeEnvironment, infer_types
from ..errors import (
    SafetyError,
    SemanticError,
    StratificationError,
    TypeInferenceError,
    UndefinedPredicateError,
)

#: Diagnostic code -> the exception type the Semantic Checker raises for it.
EXCEPTION_BY_CODE: dict[str, type[SemanticError]] = {
    diagnostic_codes.UNDEFINED_PREDICATE: UndefinedPredicateError,
    diagnostic_codes.UNSAFE_RULE: SafetyError,
    diagnostic_codes.UNSTRATIFIABLE_NEGATION: StratificationError,
    diagnostic_codes.TYPE_CONFLICT: TypeInferenceError,
}

#: The paper's check order: which error the fail-fast checker raises first
#: when a rule base has several independent problems.
ERROR_PRECEDENCE = (
    diagnostic_codes.UNDEFINED_PREDICATE,
    diagnostic_codes.UNSAFE_RULE,
    diagnostic_codes.UNSTRATIFIABLE_NEGATION,
    diagnostic_codes.TYPE_CONFLICT,
)

#: The engine configuration reproducing the historical fail-fast checks:
#: only the error-level passes, and intensional-dictionary entries do not
#: count as definitions (they are cross-checked, not trusted).
SEMANTIC_CONFIG = AnalysisConfig(
    passes=SEMANTIC_PASSES, dictionary_defines=False
)


@dataclass(frozen=True)
class SemanticReport:
    """Everything the checks establish about the relevant rules."""

    types: TypeEnvironment
    derived_predicates: frozenset[str]
    base_predicates: frozenset[str]


def raise_semantic_errors(report: DiagnosticReport) -> None:
    """Raise the historical exception for the worst error of ``report``.

    Codes are tried in :data:`ERROR_PRECEDENCE` (the paper's check order) —
    the report's own order is a deterministic sort by code, not check order,
    so precedence lives here.  ``DK001`` (unsafe rule) findings are
    aggregated into one :class:`SafetyError` listing every violation,
    matching the pre-engine :func:`repro.datalog.safety.check_program`
    message.

    Raises:
        UndefinedPredicateError: for a ``DK004`` finding.
        SafetyError: for ``DK001`` findings (all of them, joined).
        StratificationError: for a ``DK002`` finding.
        TypeInferenceError: for a ``DK003`` finding.
        SemanticError: for any other error-severity finding.
    """
    errors = report.errors
    for code in ERROR_PRECEDENCE:
        match = next((d for d in errors if d.code == code), None)
        if match is None:
            continue
        if code == diagnostic_codes.UNDEFINED_PREDICATE:
            raise UndefinedPredicateError(match.predicate or "?")
        if code == diagnostic_codes.UNSAFE_RULE:
            raise SafetyError(
                "; ".join(
                    d.message
                    for d in report.by_code(diagnostic_codes.UNSAFE_RULE)
                )
            )
        raise EXCEPTION_BY_CODE[code](match.message)
    for diagnostic in errors:
        raise SemanticError(diagnostic.message)


def check_semantics(
    rules: Program,
    query: Query,
    base_types: Mapping[str, Sequence[str]],
    dictionary_types: Mapping[str, Sequence[str]] | None = None,
) -> SemanticReport:
    """Run both semantic checks for ``query`` over the relevant ``rules``.

    Args:
        rules: the relevant rules (workspace + extracted stored rules).
        query: the user query.
        base_types: column types of base relations, from the extensional
            data dictionary.
        dictionary_types: previously inferred column types of stored derived
            predicates, from the intensional data dictionary (cross-checked
            against fresh inference).

    Raises:
        UndefinedPredicateError: when a referenced predicate is neither a
            base relation nor defined by a rule.
        TypeInferenceError: on any type conflict.
        SafetyError: when a relevant rule is unsafe.
        StratificationError: when negation occurs inside recursion.
    """
    report = analyze(
        rules,
        query,
        config=SEMANTIC_CONFIG,
        base_types=base_types,
        dictionary_types=dictionary_types or {},
    )
    raise_semantic_errors(report)
    # The error passes found nothing, so full inference cannot conflict.
    environment = infer_types(rules, base_types)
    return SemanticReport(
        environment,
        frozenset(rules.derived_predicates),
        frozenset(set(base_types)),
    )
