"""The Semantic Checker (paper section 3.2.4).

Two checks run after the relevant rules are assembled:

1. **Definedness** — every derived predicate reachable from the query has at
   least one defining rule (a predicate defined by neither rules nor a base
   relation is an error).
2. **Type checking** — infer the column types of every relevant derived
   predicate and verify all defining rules agree
   (:mod:`repro.datalog.typecheck`), cross-checking against any types already
   recorded in the intensional data dictionary.

We additionally run the safety (range-restriction) check the paper defers to
future work, because unsafe rules cannot be compiled to SQL anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..datalog.clauses import Program, Query
from ..datalog.safety import check_program as check_safety
from ..datalog.stratify import has_negation, stratify
from ..datalog.typecheck import TypeEnvironment, check_query_types, infer_types
from ..errors import TypeInferenceError, UndefinedPredicateError


@dataclass(frozen=True)
class SemanticReport:
    """Everything the checks establish about the relevant rules."""

    types: TypeEnvironment
    derived_predicates: frozenset[str]
    base_predicates: frozenset[str]


def check_semantics(
    rules: Program,
    query: Query,
    base_types: Mapping[str, Sequence[str]],
    dictionary_types: Mapping[str, Sequence[str]] | None = None,
) -> SemanticReport:
    """Run both semantic checks for ``query`` over the relevant ``rules``.

    Args:
        rules: the relevant rules (workspace + extracted stored rules).
        query: the user query.
        base_types: column types of base relations, from the extensional
            data dictionary.
        dictionary_types: previously inferred column types of stored derived
            predicates, from the intensional data dictionary (cross-checked
            against fresh inference).

    Raises:
        UndefinedPredicateError: when a referenced predicate is neither a
            base relation nor defined by a rule.
        TypeInferenceError: on any type conflict.
        SafetyError: when a relevant rule is unsafe.
    """
    derived = rules.derived_predicates
    known_base = set(base_types)

    referenced: set[str] = set()
    for clause in rules.rules:
        referenced.add(clause.head_predicate)
        referenced.update(clause.body_predicates)
    referenced.update(query.predicates)

    for predicate in sorted(referenced):
        if predicate not in derived and predicate not in known_base:
            if rules.defining(predicate):
                continue  # defined by workspace facts
            raise UndefinedPredicateError(predicate)

    check_safety(rules)
    if has_negation(rules):
        stratify(rules)  # raises StratificationError when unstratifiable

    environment = infer_types(rules, base_types)
    if dictionary_types:
        for predicate, recorded in dictionary_types.items():
            if predicate in environment:
                inferred = environment.of(predicate)
                if inferred != tuple(recorded):
                    raise TypeInferenceError(
                        f"stored dictionary lists {predicate!r} as "
                        f"{tuple(recorded)} but the rules infer {inferred}"
                    )
    check_query_types(query.goals, environment)
    return SemanticReport(
        environment,
        frozenset(derived),
        frozenset(known_base),
    )
