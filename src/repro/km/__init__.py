"""The Knowledge Manager: the paper's core contribution.

Compiles pure, function-free Horn clause queries into linked query programs
executed by the DBMS layer.  Components follow the paper's architecture
(section 3.2): Workspace D/KB Manager, Stored D/KB Manager, Semantic Checker,
Optimizer, Code Generator — orchestrated by the Query Compiler — plus the
stored-D/KB update algorithm and the :class:`~repro.km.session.Testbed`
facade users interact with.
"""

from .codegen import compile_and_link, generate_fragment, link_program
from .compiler import CompilationResult, CompilationTimings, QueryCompiler
from .config import TestbedConfig
from .constraints import (
    RESERVED_PREDICATE,
    Violation,
    check_consistency,
    constraint_rules,
    is_constraint,
)
from .optimizer import OptimizationResult, optimization_applies, optimize
from .policy import (
    AdaptiveDecision,
    AdaptiveOptimizationPolicy,
    LfpStrategyDecision,
    decide_clique_strategy,
)
from .precompile import CacheStatistics, PrecompiledQueryCache, cache_key
from .semantic import SemanticReport, check_semantics
from .session import QueryResult, Testbed
from .stored import StoredDKB
from .update import UpdateResult, UpdateTimings, update_stored_dkb
from .workspace import WorkspaceDKB

__all__ = [
    "AdaptiveDecision",
    "AdaptiveOptimizationPolicy",
    "CacheStatistics",
    "CompilationResult",
    "LfpStrategyDecision",
    "decide_clique_strategy",
    "PrecompiledQueryCache",
    "RESERVED_PREDICATE",
    "Violation",
    "cache_key",
    "check_consistency",
    "constraint_rules",
    "is_constraint",
    "CompilationTimings",
    "OptimizationResult",
    "QueryCompiler",
    "QueryResult",
    "SemanticReport",
    "StoredDKB",
    "Testbed",
    "TestbedConfig",
    "UpdateResult",
    "UpdateTimings",
    "WorkspaceDKB",
    "check_semantics",
    "compile_and_link",
    "generate_fragment",
    "link_program",
    "optimization_applies",
    "optimize",
    "update_stored_dkb",
]
