"""Adaptive optimization policy (paper section 4.2 step 5 / conclusion 4).

The paper measures a selectivity crossover beyond which the magic sets
optimization *costs* time and concludes that "it is possible to tune the
D/KB query optimizer to adapt the optimization strategy dynamically,
switching it on for queries with low selectivity and off for others" — but
lists that dynamic strategy as unimplemented.  This module implements it.

The decision needs an estimate of the paper's ``D_rel / D`` before paying
for either plan.  The estimator runs a *bounded reachability probe*: a
single recursive-CTE walk from the query constants over the union of the
relevant binary base relations, capped at ``threshold x |domain|`` rows.

* If the probe converges under the cap, the query truly reaches a small
  fraction of the database -> selectivity is low -> **magic on**.
* If the probe hits the cap, at least ``threshold`` of the domain is
  relevant -> the crossover region -> **magic off**.

The probe's cost is itself bounded by the cap, so the policy never spends
more than a fixed fraction of the unoptimized plan's work to decide.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional

from ..datalog.clauses import Program, Query
from ..datalog.pcg import Clique
from ..datalog.terms import Constant
from ..dbms.catalog import ExtensionalCatalog, fact_table_name
from ..dbms.engine import Database
from ..dbms.schema import quote_identifier
from ..runtime.lfp_cte import cte_eligibility
from .optimizer import optimization_applies

# The paper's measured crossovers sit at 72% (semi-naive) to 85% (naive)
# selectivity; a conservative default threshold leaves margin for the
# probe's node-vs-tuple approximation.
DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class AdaptiveDecision:
    """The policy's verdict for one query, with its evidence."""

    use_magic: bool
    reason: str
    probed_nodes: int = 0
    probe_limit: int = 0
    domain_size: int = 0

    @property
    def estimated_selectivity(self) -> float:
        """Probe-based estimate of D_rel / D (1.0 when capped)."""
        if not self.domain_size:
            return 0.0
        if self.probed_nodes >= self.probe_limit:
            return 1.0
        return self.probed_nodes / self.domain_size


@dataclass(frozen=True)
class LfpStrategyDecision:
    """How a clique node should compute its fixpoint, with the evidence.

    Surfaces the recursive-CTE eligibility check (and the backend's
    capability gate) *before* execution, so callers — planners, the
    benchmark drivers, a curious user — can see which path a clique will
    take without running it.  ``evaluate_clique_lfp_cte`` applies exactly
    the same checks at execution time, so the decision here is a faithful
    prediction, never a promise the runtime breaks.
    """

    clique_label: str
    use_cte: bool
    reason: str

    @property
    def strategy_name(self) -> str:
        """The runtime strategy label this decision resolves to."""
        return "lfp_cte" if self.use_cte else "seminaive"


def decide_clique_strategy(
    clique: Clique, database: Database | None = None
) -> LfpStrategyDecision:
    """Decide whether ``clique`` should run as one recursive-CTE statement.

    ``database`` is optional: without one the decision reflects the clique's
    logical shape alone; with one, the backend's ``supports_recursive_cte``
    capability gates the answer too.
    """
    label = "+".join(sorted(clique.predicates))
    check = cte_eligibility(clique)
    if check.eligible and database is not None:
        if not database.capabilities.supports_recursive_cte:
            return LfpStrategyDecision(
                label,
                False,
                f"backend {database.backend.name!r} lacks recursive-CTE "
                "support",
            )
    return LfpStrategyDecision(label, check.eligible, check.reason)


#: Sentinel distinguishing "leave this knob alone" from "clear it (None)".
_UNSET = object()


class ServingPolicy:
    """Live-mutable serving defaults — the knobs the SLO watchdog flips.

    The per-query adaptive machinery above decides *one query at a time*;
    this class closes the loop at the *serving* level: a mutable, thread-
    safe set of default overrides the query server consults on every
    request that did not spell the knob out itself.  An explicit value in
    the client's request always wins — the overrides only replace the
    protocol defaults, so flipping a knob never breaks a caller that asked
    for something specific.

    Three knobs, mirroring the paper's tunables:

    * ``strategy`` — the default LFP evaluation strategy (e.g. switch the
      whole serving path onto the recursive-CTE fast path, ``"lfp_cte"``);
    * ``optimize`` — the magic-sets default (magic on/off, or
      ``"adaptive"`` for the per-query probe policy);
    * ``use_cache`` — the result-cache default.

    Values are wire-level (strategy names as strings) so a snapshot is
    JSON-friendly and the watchdog's structured events can carry it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._strategy: Optional[str] = None  # guarded-by: _lock
        self._optimize: "bool | str | None" = None  # guarded-by: _lock
        self._use_cache: Optional[bool] = None  # guarded-by: _lock

    # -- reading (the serving hot path) ------------------------------------

    def default_strategy(self, fallback: str) -> str:
        """The strategy for a request that named none."""
        with self._lock:
            return self._strategy if self._strategy is not None else fallback

    def default_optimize(self, fallback: "bool | str" = False) -> "bool | str":
        """The magic-sets setting for a request that named none."""
        with self._lock:
            return self._optimize if self._optimize is not None else fallback

    def default_use_cache(self, fallback: bool = True) -> bool:
        """The result-cache setting for a request that named none."""
        with self._lock:
            return self._use_cache if self._use_cache is not None else fallback

    # -- flipping (the watchdog's action pairs) ----------------------------

    def set_strategy(self, strategy: Any = _UNSET) -> Optional[str]:
        """Set (or with ``None`` clear) the strategy override.

        Returns the previous override so the caller can restore it — the
        shape a reversible watchdog action needs.
        """
        with self._lock:
            previous = self._strategy
            if strategy is not _UNSET:
                self._strategy = strategy
            return previous

    def set_optimize(self, optimize: Any = _UNSET) -> "bool | str | None":
        """Set (or with ``None`` clear) the magic-sets override."""
        with self._lock:
            previous = self._optimize
            if optimize is not _UNSET:
                self._optimize = optimize
            return previous

    def set_use_cache(self, use_cache: Any = _UNSET) -> Optional[bool]:
        """Set (or with ``None`` clear) the result-cache override."""
        with self._lock:
            previous = self._use_cache
            if use_cache is not _UNSET:
                self._use_cache = use_cache
            return previous

    def clear(self) -> None:
        """Drop every override (back to the protocol defaults)."""
        with self._lock:
            self._strategy = None
            self._optimize = None
            self._use_cache = None

    def overrides(self) -> dict[str, Any]:
        """JSON-friendly view of the currently active overrides."""
        with self._lock:
            active: dict[str, Any] = {}
            if self._strategy is not None:
                active["strategy"] = self._strategy
            if self._optimize is not None:
                active["optimize"] = self._optimize
            if self._use_cache is not None:
                active["use_cache"] = self._use_cache
            return active


class AdaptiveOptimizationPolicy:
    """Decides per query whether the magic sets rewriting should be applied."""

    def __init__(self, threshold: float = DEFAULT_THRESHOLD):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold

    def decide(
        self,
        database: Database,
        catalog: ExtensionalCatalog,
        relevant_rules: Program,
        query: Query,
    ) -> AdaptiveDecision:
        """Estimate the query's selectivity and pick a plan."""
        derived = relevant_rules.derived_predicates
        if not optimization_applies(query, derived):
            return AdaptiveDecision(False, "magic sets does not apply")

        edge_tables = self._binary_base_tables(catalog, relevant_rules, derived)
        if not edge_tables:
            return AdaptiveDecision(
                True, "no binary base relations to probe; defaulting to magic"
            )

        constants = [
            t.value for t in query.goals[0].terms if isinstance(t, Constant)
        ]
        union_sql = " UNION ALL ".join(
            f"SELECT c0, c1 FROM {quote_identifier(t)}" for t in edge_tables
        )
        domain_size = int(
            database.execute(
                f"SELECT COUNT(*) FROM (SELECT c0 FROM ({union_sql}) "
                f"UNION SELECT c1 FROM ({union_sql}))"
            )[0][0]
        )
        if not domain_size:
            return AdaptiveDecision(True, "empty base relations; magic is free")
        probe_limit = max(2, int(self.threshold * domain_size))

        seeds = " UNION ".join("SELECT ?" for __ in constants)
        probed = int(
            database.execute(
                f"WITH RECURSIVE probe(n) AS ("
                f"  {seeds}"
                f"  UNION "
                f"  SELECT e.c1 FROM ({union_sql}) AS e, probe "
                f"  WHERE e.c0 = probe.n"
                f") SELECT COUNT(*) FROM (SELECT n FROM probe LIMIT ?)",
                (*constants, probe_limit),
            )[0][0]
        )
        if probed >= probe_limit:
            return AdaptiveDecision(
                False,
                f"probe capped at {probe_limit} of {domain_size} domain "
                "values; selectivity too high for magic to pay",
                probed,
                probe_limit,
                domain_size,
            )
        return AdaptiveDecision(
            True,
            f"probe converged at {probed} of {domain_size} domain values",
            probed,
            probe_limit,
            domain_size,
        )

    @staticmethod
    def _binary_base_tables(
        catalog: ExtensionalCatalog, rules: Program, derived: set[str]
    ) -> list[str]:
        """Fact tables of the binary base relations the rules read."""
        names: list[str] = []
        seen: set[str] = set()
        for clause in rules.rules:
            for atom in clause.body:
                predicate = atom.predicate
                if (
                    predicate in derived
                    or predicate in seen
                    or atom.arity != 2
                ):
                    continue
                seen.add(predicate)
                if catalog.has_relation(predicate):
                    names.append(fact_table_name(predicate))
        return sorted(names)
