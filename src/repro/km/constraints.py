"""Integrity constraints and consistency checking.

The paper's update algorithm explicitly skips this: "there is no checking of
these rules against any integrity constraints that may be associated with
the Stored D/KB" (section 4.3), and "the consistency check and truth
maintenance of the knowledge base" is listed as an open issue (section 6).
This module fills the gap with *denial constraints*: rules whose head is the
reserved predicate ``inconsistent``.  A constraint is violated exactly when
its body is satisfiable; the witnesses are the bindings of the head
variables.

Example::

    % nobody is their own ancestor
    inconsistent(X) :- ancestor(X, X).

Checking compiles each constraint body as an ordinary D/KB query, so
constraints may freely use recursion, stored rules, and negation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..datalog.clauses import Clause, Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import Testbed

RESERVED_PREDICATE = "inconsistent"


@dataclass(frozen=True)
class Violation:
    """One violated constraint with the witness tuples that violate it."""

    constraint: Clause
    witnesses: tuple[tuple, ...]

    def describe(self) -> str:
        """Human-readable summary."""
        shown = ", ".join(str(w) for w in self.witnesses[:5])
        more = "" if len(self.witnesses) <= 5 else f" (+{len(self.witnesses) - 5} more)"
        return f"constraint {self.constraint} violated by {shown}{more}"


def is_constraint(clause: Clause) -> bool:
    """Whether ``clause`` is a denial constraint."""
    return clause.is_rule and clause.head_predicate == RESERVED_PREDICATE


def constraint_rules(clauses: Iterable[Clause]) -> list[Clause]:
    """The denial constraints among ``clauses``."""
    return [c for c in clauses if is_constraint(c)]


def check_consistency(testbed: "Testbed") -> list[Violation]:
    """Evaluate every constraint of the workspace and stored D/KB.

    Returns the violated constraints with their witnesses; an empty list
    means the D/KB is consistent.  Constraints whose body references
    predicates that do not exist yet are treated as trivially satisfied
    (nothing can violate a constraint over undefined data).
    """
    from ..errors import UndefinedPredicateError

    constraints: list[Clause] = constraint_rules(testbed.workspace.program)
    stored_texts = sorted(testbed.stored.stored_rule_texts())
    from ..datalog.parser import parse_clause

    for text in stored_texts:
        clause = parse_clause(text)
        if is_constraint(clause) and clause not in constraints:
            constraints.append(clause)

    violations: list[Violation] = []
    for constraint in constraints:
        query = Query(constraint.body, constraint.head.variables)
        try:
            result = testbed.query(query)
        except UndefinedPredicateError:
            continue  # body over not-yet-defined predicates: vacuously holds
        if result.rows:
            witnesses = tuple(sorted(set(result.rows)))
            violations.append(Violation(constraint, witnesses))
    return violations


def assert_consistent(testbed: "Testbed") -> None:
    """Raise when any constraint is violated.

    Raises:
        UpdateError: listing every violated constraint.
    """
    from ..errors import UpdateError

    violations = check_consistency(testbed)
    if violations:
        raise UpdateError(
            "consistency check failed: "
            + "; ".join(v.describe() for v in violations)
        )
