"""Query precompilation (paper conclusion 3).

"Precompilation of D/KB queries can prove to be very useful ... especially
for frequently occurring queries with large R_rs values.  The price of
precompilation is that, for precompiled queries, information about rules and
relations must be recorded.  During updates, this information is checked to
see whether the update invalidates any compiled query."

:class:`PrecompiledQueryCache` implements exactly that: compiled query
programs are cached keyed by canonical query text and compilation options;
each entry records the predicates its compilation depended on; the session
checks every workspace definition and stored-D/KB update against those
dependency sets and drops the entries an update could invalidate.

Correctness note: entries only need invalidation on *rule* changes.  Fact
loads never invalidate — the compiled program reads base relations at
execution time — though a plan chosen by the adaptive policy may become
suboptimal (never wrong) as data drifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..datalog.clauses import Query
from ..runtime.program import LfpStrategy
from .compiler import CompilationResult

CacheKey = tuple[str, str, str]


def cache_key(
    query: Union[Query, str],
    optimize: Union[bool, str],
    strategy: LfpStrategy,
) -> CacheKey:
    """Canonical cache key for a query and its compilation options."""
    text = str(query).strip()
    return (text, str(optimize), strategy.value)


@dataclass
class CacheEntry:
    """One precompiled query with its recorded dependency information."""

    result: CompilationResult
    dependencies: frozenset[str]
    hits: int = 0


@dataclass
class CacheStatistics:
    """Hit/miss/invalidations counters for the experiment harness."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PrecompiledQueryCache:
    """Compiled-program cache with rule-dependency invalidation."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[CacheKey, CacheEntry] = {}
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> CompilationResult | None:
        """The cached program for ``key``, or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.statistics.misses += 1
            return None
        entry.hits += 1
        self.statistics.hits += 1
        # Move to the back of the eviction order (LRU).
        self._entries[key] = self._entries.pop(key)
        return entry.result

    def put(self, key: CacheKey, result: CompilationResult) -> None:
        """Cache a compilation, recording its rule dependencies.

        The dependency set is every predicate whose definition the compiled
        plan embeds: heads *and* body predicates of the relevant rules, plus
        the query's own goal predicates — a rule added for any of them can
        change the plan.
        """
        dependencies: set[str] = set(result.program.query.predicates)
        for clause in result.relevant_rules:
            dependencies.add(clause.head_predicate)
            dependencies.update(clause.body_predicates)
        if len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = CacheEntry(result, frozenset(dependencies))

    def invalidate_for(self, predicates: Iterable[str]) -> list[CacheKey]:
        """Drop every entry depending on any of ``predicates``.

        This is the update-time check the paper describes; returns the keys
        that were invalidated.
        """
        changed = set(predicates)
        if not changed:
            return []
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.dependencies & changed
        ]
        for key in doomed:
            del self._entries[key]
        self.statistics.invalidations += len(doomed)
        return doomed

    def clear(self) -> None:
        """Drop everything (counters survive)."""
        self._entries.clear()

    def entries(self) -> dict[CacheKey, CacheEntry]:
        """A snapshot of the cache contents (for inspection/tests)."""
        return dict(self._entries)
