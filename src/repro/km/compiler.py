"""The D/KB query compilation pipeline (paper section 4.2), instrumented.

Compilation walks the steps the paper describes, recording wall time per
component so Tests 1-3 can report the breakdown:

* ``setup``     — query parsing and the initial reachability analysis over
                  the Workspace D/KB (step 1.1-1.2, ``t_setup``);
* ``extract``   — the workspace/stored fixpoint pulling relevant rules out of
                  the Stored D/KB (steps 1.3-1.5, ``t_extract``);
* ``readdict``  — reading the extensional and intensional data dictionaries
                  (``t_readdict``);
* ``semantic``  — the two semantic checks (definedness, type inference);
* ``lint``      — the optional full static-analysis run (all passes of
                  :mod:`repro.analysis`, not just the error-level ones);
* ``optimize``  — the optional generalized-magic-sets rewriting;
* ``eorder``    — clique finding, evaluation graph construction, and the
                  topological sort (``t_eorder``);
* ``gencompile``— emitting the program fragment, byte-compiling it, and
                  linking it with the run-time library (``t_gencompile``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Union

from ..analysis import DiagnosticReport, analyze
from ..datalog.adornment import reorder_body_for_sip
from ..datalog.clauses import Program, Query
from ..datalog.evalgraph import build_evaluation_graph, evaluation_order
from ..datalog.parser import parse_query
from ..datalog.pcg import PredicateConnectionGraph
from ..dbms.catalog import ExtensionalCatalog
from ..obs.timings import TimingsMapping
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from ..runtime.program import LfpStrategy, QueryProgram
from .codegen import compile_and_link, generate_fragment
from .optimizer import optimization_applies, optimize
from .policy import AdaptiveDecision, AdaptiveOptimizationPolicy
from .semantic import check_semantics
from .stored import StoredDKB
from .workspace import WorkspaceDKB


@dataclass
class CompilationTimings(TimingsMapping):
    """Wall-clock seconds per compilation component.

    Also a read-only :class:`~collections.abc.Mapping` over the components
    (iteration excludes ``total``, so ``sum(t.values()) == t.total``).
    """

    setup: float = 0.0
    extract: float = 0.0
    readdict: float = 0.0
    semantic: float = 0.0
    lint: float = 0.0
    optimize: float = 0.0
    eorder: float = 0.0
    gencompile: float = 0.0

    @property
    def total(self) -> float:
        """Total compilation time ``t_c``."""
        return (
            self.setup
            + self.extract
            + self.readdict
            + self.semantic
            + self.lint
            + self.optimize
            + self.eorder
            + self.gencompile
        )

    def as_dict(self) -> dict[str, float]:
        """Component name to seconds, plus the total."""
        return {
            "setup": self.setup,
            "extract": self.extract,
            "readdict": self.readdict,
            "semantic": self.semantic,
            "lint": self.lint,
            "optimize": self.optimize,
            "eorder": self.eorder,
            "gencompile": self.gencompile,
            "total": self.total,
        }


@dataclass
class CompilationResult:
    """A compiled query with its measurements.

    ``counts`` records the paper's query parameters: ``R_rs`` (stored rules
    relevant to the query), ``P_rs`` (stored derived predicates relevant),
    ``relevant_rules`` and ``relevant_predicates`` overall.
    ``adaptive_decision`` is set when the compiler was asked to decide
    optimization dynamically (``optimize_query="auto"``).
    ``diagnostics`` holds the full collect-all lint report when the compiler
    was invoked with ``lint=True`` (otherwise ``None``).
    """

    program: QueryProgram
    fragment_source: str
    timings: CompilationTimings
    relevant_rules: Program
    counts: dict[str, int] = field(default_factory=dict)
    optimized: bool = False
    adaptive_decision: "AdaptiveDecision | None" = None
    diagnostics: DiagnosticReport | None = None


class QueryCompiler:
    """Compiles D/KB queries into linked query programs."""

    def __init__(
        self,
        workspace: WorkspaceDKB,
        stored: StoredDKB,
        catalog: ExtensionalCatalog,
        policy: AdaptiveOptimizationPolicy | None = None,
    ):
        self.workspace = workspace
        self.stored = stored
        self.catalog = catalog
        self.policy = policy or AdaptiveOptimizationPolicy()

    def compile(
        self,
        query: Union[Query, str],
        optimize_query: Union[bool, str] = False,
        strategy: LfpStrategy = LfpStrategy.SEMINAIVE,
        reorder_bodies: bool = False,
        lint: bool = False,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> CompilationResult:
        """Compile ``query`` into an executable program.

        Args:
            query: a :class:`Query` or its concrete syntax.
            optimize_query: apply generalized magic sets when applicable —
                ``True``/``False``, or ``"auto"`` to let the adaptive policy
                decide from an estimated selectivity (paper conclusion 4).
            strategy: LFP strategy the program will use for cliques.
            reorder_bodies: greedily reorder rule bodies so bound atoms come
                first (the information-passing strategy the paper lists as
                designed but unimplemented; :func:`reorder_body_for_sip`).
            lint: additionally run the full static-analysis pass set over
                the relevant rules and attach the collect-all report to
                ``CompilationResult.diagnostics``; the time spent is the
                ``lint`` timing component and a ``lint`` phase in the DBMS
                statistics.
            tracer: optional observability sink; every compilation
                component becomes a child span of one ``compile`` span.

        Raises:
            SemanticError: from the semantic checks.
            OptimizationError: only when optimization was requested for a
                query it can never apply to *and* the rules make it
                unusable; inapplicable optimization falls back silently
                (recorded in ``CompilationResult.optimized``).
        """
        valid_strings = ("auto", "magic", "supplementary")
        if isinstance(optimize_query, str) and optimize_query not in valid_strings:
            raise ValueError(
                f"optimize_query must be a bool or one of {valid_strings}, "
                f"got {optimize_query!r}"
            )
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span("compile", category="compile") as compile_span:
            result = self._compile(
                query, optimize_query, strategy, reorder_bodies, lint, tracer
            )
            if tracer.enabled:
                for key, value in result.counts.items():
                    compile_span.set(key, value)
                compile_span.set("optimized", result.optimized)
        return result

    def _compile(
        self,
        query: Union[Query, str],
        optimize_query: Union[bool, str],
        strategy: LfpStrategy,
        reorder_bodies: bool,
        lint: bool,
        tracer: "Tracer | NullTracer",
    ) -> CompilationResult:
        timings = CompilationTimings()

        # -- setup: parse the query, initial workspace reachability ----------
        started = time.perf_counter()
        with tracer.span("setup", category="compile"):
            if isinstance(query, str):
                query = parse_query(query)
            goal_predicates = set(query.predicates)
            workspace_rules = self.workspace.program.rules
            pcg = PredicateConnectionGraph(workspace_rules)
            relevant_predicates = set(goal_predicates)
            relevant_predicates.update(pcg.reachable_from(*goal_predicates))
            relevant = Program()
            for clause in workspace_rules:
                if clause.head_predicate in relevant_predicates:
                    relevant.add(clause)
        timings.setup = time.perf_counter() - started

        # -- extract: workspace/stored fixpoint (steps 1.3-1.5) ---------------
        started = time.perf_counter()
        with tracer.span("extract", category="compile"):
            stored_rule_count = 0
            while True:
                extracted = self.stored.extract_relevant_rules(relevant_predicates)
                new_rules = [c for c in extracted if c not in relevant]
                for clause in new_rules:
                    relevant.add(clause)
                stored_rule_count += len(new_rules)
                # Recompute reachability over the combined rules: stored rules
                # may refer back to workspace predicates and vice versa.
                combined = Program(list(relevant) + workspace_rules)
                combined_pcg = PredicateConnectionGraph(combined.rules)
                updated = set(goal_predicates)
                updated.update(combined_pcg.reachable_from(*goal_predicates))
                for clause in workspace_rules:
                    if clause.head_predicate in updated:
                        relevant.add(clause)
                if updated == relevant_predicates and not new_rules:
                    break
                relevant_predicates = updated
        timings.extract = time.perf_counter() - started

        # -- readdict: extensional + intensional dictionaries ----------------
        started = time.perf_counter()
        with tracer.span("readdict", category="compile"):
            derived = relevant.derived_predicates
            referenced = set(relevant_predicates) | goal_predicates
            base_candidates = sorted(referenced - derived)
            base_types = self.catalog.types_of(base_candidates)
            dictionary_types = self.stored.derived_types_of(sorted(derived))
        timings.readdict = time.perf_counter() - started

        # -- semantic checks ---------------------------------------------------
        started = time.perf_counter()
        with tracer.span("semantic", category="compile"):
            report = check_semantics(relevant, query, base_types, dictionary_types)
        timings.semantic = time.perf_counter() - started

        # -- lint: full collect-all analysis (optional) ------------------------
        diagnostics: DiagnosticReport | None = None
        if lint:
            started = time.perf_counter()
            with tracer.span("lint", category="compile"):
                diagnostics = analyze(
                    relevant,
                    query,
                    base_types=base_types,
                    dictionary_types=dictionary_types,
                )
            timings.lint = time.perf_counter() - started
            self.stored.database.statistics.record_span("lint", timings.lint)

        # -- optimization (optional or adaptive) -------------------------------
        rules_for_program = relevant
        goal_rewrites: dict[str, str] = {}
        seed_facts: dict[str, tuple[tuple, ...]] = {}
        types = {p: report.types.of(p) for p in derived}
        types.update(base_types)
        optimized = False
        decision: AdaptiveDecision | None = None
        started = time.perf_counter()
        with tracer.span("optimize", category="compile"):
            method = "magic"
            if optimize_query == "auto":
                decision = self.policy.decide(
                    self.stored.database, self.catalog, relevant, query
                )
                apply_rewrite = decision.use_magic
            elif optimize_query == "supplementary":
                apply_rewrite = True
                method = "supplementary"
            else:
                apply_rewrite = bool(optimize_query)
            if apply_rewrite and optimization_applies(query, derived):
                result = optimize(relevant, query, report.types, method)
                rules_for_program = result.rules
                goal_rewrites = result.goal_rewrites
                seed_facts = result.seed_facts
                types.update(result.new_types)
                optimized = True
        if optimized or decision is not None:
            timings.optimize = time.perf_counter() - started

        # -- optional body reordering (the paper's unimplemented IP strategy) --
        if reorder_bodies:
            reordered = Program()
            for clause in rules_for_program:
                reordered.add(reorder_body_for_sip(clause, ()))
            rules_for_program = reordered

        # -- evaluation order list ---------------------------------------------
        started = time.perf_counter()
        with tracer.span("eorder", category="compile"):
            graph = build_evaluation_graph(rules_for_program)
            order = evaluation_order(graph)
        timings.eorder = time.perf_counter() - started

        # -- code generation, compile, link -------------------------------------
        started = time.perf_counter()
        with tracer.span("gencompile", category="compile"):
            base_predicates = frozenset(
                p for p in referenced if p not in derived
            ) | frozenset(
                p
                for clause in rules_for_program
                for p in clause.body_predicates
                if p not in rules_for_program.derived_predicates
                and p not in seed_facts
            )
            source = generate_fragment(
                query,
                order,
                types,
                base_predicates,
                strategy,
                optimized,
                goal_rewrites,
                seed_facts,
            )
            program = compile_and_link(source)
        timings.gencompile = time.perf_counter() - started

        counts = {
            "relevant_rules": len(relevant.rules),
            "relevant_predicates": len(relevant_predicates),
            "stored_rules_extracted": stored_rule_count,
            "relevant_derived_predicates": len(derived),
            "stored_derived_relevant": len(dictionary_types),
        }
        return CompilationResult(
            program,
            source,
            timings,
            relevant,
            counts,
            optimized,
            decision,
            diagnostics,
        )
