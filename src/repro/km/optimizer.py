"""The Optimizer (paper section 3.2.5).

Wraps the rule rewriting strategies of section 2.5 for the compilation
pipeline: it decides whether an optimization *applies* to a query, performs
the chosen rewriting (generalized magic sets, or the supplementary variant),
types the new predicates, and packages the rewritten rules together with the
seed fact and goal mapping the Code Generator needs.

Whether to *use* the optimizer is the caller's choice per query — the paper's
Test 7 shows a selectivity crossover beyond which magic sets loses, so the
testbed keeps it optional (section 4.2 step 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..datalog.adornment import split_adorned_name
from ..datalog.clauses import Program, Query
from ..datalog.magic import MagicProgram, magic_rewrite
from ..datalog.supplementary import (
    SupplementaryProgram,
    supplementary_rewrite,
)
from ..datalog.terms import Constant
from ..datalog.typecheck import TypeEnvironment
from ..errors import OptimizationError

REWRITE_METHODS = ("magic", "supplementary")


@dataclass(frozen=True)
class OptimizationResult:
    """The rewritten rule set and the bookkeeping to execute it."""

    rules: Program
    goal_rewrites: dict[str, str]
    seed_facts: dict[str, tuple[tuple, ...]]
    new_types: dict[str, tuple[str, ...]]
    rewrite: Union[MagicProgram, SupplementaryProgram]
    method: str = "magic"

    @property
    def magic(self) -> Union[MagicProgram, SupplementaryProgram]:
        """Backwards-compatible alias for :attr:`rewrite`."""
        return self.rewrite


def optimization_applies(query: Query, derived_predicates: set[str]) -> bool:
    """Whether generalized magic sets can restrict this query.

    Applicable when the query has a single goal over a derived predicate
    with at least one constant argument (the binding the magic set
    propagates).
    """
    if len(query.goals) != 1:
        return False
    goal = query.goals[0]
    if goal.predicate not in derived_predicates:
        return False
    return any(isinstance(t, Constant) for t in goal.terms)


def optimize(
    rules: Program,
    query: Query,
    types: TypeEnvironment,
    method: str = "magic",
) -> OptimizationResult:
    """Rewrite ``rules`` for ``query`` with the chosen rewriting strategy.

    Args:
        rules: the relevant rules.
        query: the (single-goal, bound) user query.
        types: inferred types of the original predicates.
        method: ``"magic"`` (generalized magic sets) or ``"supplementary"``
            (supplementary magic sets — materialised join prefixes).

    Raises:
        OptimizationError: when the optimization does not apply; callers
            should test :func:`optimization_applies` first.
    """
    derived = rules.derived_predicates
    if not optimization_applies(query, derived):
        raise OptimizationError(
            f"magic sets does not apply to query {query}"
        )
    if method not in REWRITE_METHODS:
        raise OptimizationError(
            f"unknown rewriting method {method!r}; one of {REWRITE_METHODS}"
        )
    goal = query.goals[0]

    if method == "magic":
        magic = magic_rewrite(rules, query, derived)
        rewritten = Program()
        seed_facts = {
            magic.seed.head_predicate: (magic.seed.head.ground_tuple(),)
        }
        # A magic "rule" degenerates to a ground fact when the callee's
        # bindings are all constants and the calling rule has no prefix
        # (e.g. ``m_p__fb('a') :- .`` from a body atom ``p(X, 'a')`` in an
        # all-free rule).  Facts cannot be evaluation nodes; they join the
        # seeds instead.
        for clause in magic.magic_rules:
            if clause.is_fact:
                rows = seed_facts.get(clause.head_predicate, ())
                row = clause.head.ground_tuple()
                if row not in rows:
                    seed_facts[clause.head_predicate] = rows + (row,)
            else:
                rewritten.add(clause)
        rewritten.extend(magic.modified_rules)
        _add_negated_support(rewritten, rules, derived)
        new_types = _type_rewritten_predicates(
            rewritten, magic.magic_predicates, types
        )
        return OptimizationResult(
            rewritten,
            {goal.predicate: magic.goal.predicate},
            seed_facts,
            new_types,
            magic,
            method,
        )

    supplementary = supplementary_rewrite(rules, query, derived)
    rewritten = Program()
    seed_facts = {
        supplementary.seed.head_predicate: (
            supplementary.seed.head.ground_tuple(),
        )
    }
    for clause in supplementary.rules:
        if clause.is_fact:  # constant-binding magic facts become seeds
            rows = seed_facts.setdefault(clause.head_predicate, ())
            seed_facts[clause.head_predicate] = rows + (
                clause.head.ground_tuple(),
            )
        else:
            rewritten.add(clause)
    _add_negated_support(rewritten, rules, derived)
    magic_predicates = {
        name
        for clause in supplementary.rules
        for name in (clause.head_predicate,)
        if name.startswith("m_")
    } | set(seed_facts)
    new_types = _type_rewritten_predicates(rewritten, magic_predicates, types)
    new_types.update(
        _type_supplementary_predicates(supplementary, types)
    )
    return OptimizationResult(
        rewritten,
        {goal.predicate: supplementary.goal.predicate},
        seed_facts,
        new_types,
        supplementary,
        method,
    )


def _add_negated_support(
    rewritten: Program, original: Program, derived: set[str]
) -> None:
    """Include the full definitions of negated derived predicates.

    Adornment only rewrites *positive* derived calls — bindings never pass
    through negation — so a modified rule may reference a derived predicate
    under its original name inside a ``not``.  That predicate (and whatever
    it reaches) must be evaluated in full alongside the rewritten rules;
    stratifiability guarantees its stratum is complete before the guarded
    rules read it.
    """
    from ..datalog.evalgraph import relevant_rules as reachable_rules

    negated = {
        atom.predicate
        for clause in rewritten
        for atom in clause.body
        if atom.negated and atom.predicate in derived
    }
    if negated:
        rewritten.extend(reachable_rules(original, negated).rules)


def _type_rewritten_predicates(
    rewritten: Program, magic_predicates: set[str], types: TypeEnvironment
) -> dict[str, tuple[str, ...]]:
    """Column types for the adorned and magic predicates.

    An adorned predicate keeps the original's types; a magic predicate keeps
    the types of the bound positions of its adorned predicate.
    """
    new_types: dict[str, tuple[str, ...]] = {}
    mentioned: set[str] = set()
    for clause in rewritten:
        mentioned.add(clause.head_predicate)
        mentioned.update(clause.body_predicates)
    mentioned.update(magic_predicates)

    for name in mentioned:
        target = name
        if name in magic_predicates:
            target = name[len("m_"):]
            base, adornment = split_adorned_name(target)
            original = types.of(base)
            new_types[name] = tuple(
                ctype
                for ctype, letter in zip(original, adornment)
                if letter == "b"
            )
            continue
        try:
            base, __ = split_adorned_name(target)
        except ValueError:
            continue  # unadorned: a base or supplementary predicate
        new_types[name] = types.of(base)
    return new_types


def _type_supplementary_predicates(
    supplementary: SupplementaryProgram, types: TypeEnvironment
) -> dict[str, tuple[str, ...]]:
    """Column types for the ``sup_k_i`` predicates via type unification.

    The supplementary columns are rule variables; running the standard type
    inference over the rewritten rules — with every adorned, magic, and base
    predicate already typed — pins each supplementary column's type.
    """
    from ..datalog.typecheck import infer_types

    known: dict[str, tuple[str, ...]] = {}
    for predicate in types.types:
        known[predicate] = types.of(predicate)
    known.update(
        _type_rewritten_predicates(
            supplementary.rules,
            {
                c.head_predicate
                for c in supplementary.rules
                if c.head_predicate.startswith("m_")
            }
            | {supplementary.seed.head_predicate},
            types,
        )
    )
    environment = infer_types(
        supplementary.rules, known, allow_undefined=True
    )
    return {
        name: environment.of(name)
        for name in supplementary.supplementary_arities
        if name in environment
    }
