"""Partition metadata: how the extensional database is split across shards.

The cluster (see :mod:`repro.cluster`) hash-partitions base relations over
``shards`` backend D/KBMS processes.  The *metadata* describing that split
lives here in ``km`` — a :class:`PartitionSpec` value carried by
:class:`~repro.km.config.TestbedConfig` — so a shard's own sessions know
which slice of the EDB they hold, while the routing logic built on top of
the spec stays in :mod:`repro.cluster.partition`.

Placement is by **entity group**: the partition key of a value is its
prefix up to ``key_delimiter`` (``"t3_17"`` → ``"t3"``), so all rows of one
entity group — one tree, one tenant, one connected component — land on the
same shard.  That is the co-location discipline that makes single-shard
routing of *recursive* queries sound: a derived predicate may be declared
routable (:attr:`PartitionSpec.routes`) exactly when its closure never
crosses entity groups, which holds by construction for the testbed's
disjoint graph families.  Small dictionary relations go in the
``broadcast`` class instead: replicated to every shard on write, readable
anywhere, usable in any shard-local join.

Hashing uses :func:`zlib.crc32`, not Python's salted ``hash()``, so every
process of the cluster — router, supervisor, shards, test harnesses —
agrees on row placement.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class TablePartition:
    """How one base relation is hash-partitioned.

    Attributes:
        key_column: 0-based column whose (entity-group) partition key
            places each row.
    """

    key_column: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"key_column": self.key_column}


@dataclass(frozen=True)
class PartitionSpec:
    """The cluster-wide description of how the EDB is split.

    Attributes:
        shards: number of hash partitions (>= 1).
        tables: partitioned base relations, by predicate name.
        broadcast: relations replicated to every shard (small dictionary
            relations; writes fan out, any shard can answer).
        routes: queryable predicate -> argument position of its routing
            key.  Partitioned base relations are implicitly routable on
            their key column; listing a *derived* predicate here asserts
            that its evaluation is shard-local under the entity-group
            placement (e.g. ``ancestor`` over disjoint trees).
        key_delimiter: separator ending the entity-group prefix of a key
            value; ``None`` hashes the whole value.
    """

    shards: int
    tables: Mapping[str, TablePartition] = field(default_factory=dict)
    broadcast: frozenset[str] = frozenset()
    routes: Mapping[str, int] = field(default_factory=dict)
    key_delimiter: "str | None" = "_"

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if not isinstance(self.broadcast, frozenset):
            object.__setattr__(self, "broadcast", frozenset(self.broadcast))
        overlap = sorted(self.broadcast & set(self.tables))
        if overlap:
            raise ValueError(
                f"relations cannot be both partitioned and broadcast: {overlap}"
            )

    # -- placement ---------------------------------------------------------

    def partition_key(self, value: Any) -> str:
        """The entity-group key of one column value."""
        text = str(value)
        if self.key_delimiter:
            return text.split(self.key_delimiter, 1)[0]
        return text

    def shard_of_key(self, value: Any) -> int:
        """The shard owning ``value``'s entity group (deterministic)."""
        key = self.partition_key(value).encode("utf-8")
        return zlib.crc32(key) % self.shards

    def shard_of_row(self, predicate: str, row: Any) -> "int | None":
        """The shard owning one row, or ``None`` for broadcast relations.

        Raises:
            KeyError: ``predicate`` is neither partitioned nor broadcast.
        """
        if predicate in self.broadcast:
            return None
        table = self.tables[predicate]
        return self.shard_of_key(row[table.key_column])

    def is_partitioned(self, predicate: str) -> bool:
        return predicate in self.tables

    def is_broadcast(self, predicate: str) -> bool:
        return predicate in self.broadcast

    def route_key_position(self, predicate: str) -> "int | None":
        """The routing-key argument position of a queryable predicate."""
        if predicate in self.routes:
            return self.routes[predicate]
        table = self.tables.get(predicate)
        if table is not None:
            return table.key_column
        return None

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (shipped to shard processes and stats)."""
        return {
            "shards": self.shards,
            "tables": {
                name: table.to_dict() for name, table in self.tables.items()
            },
            "broadcast": sorted(self.broadcast),
            "routes": dict(self.routes),
            "key_delimiter": self.key_delimiter,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PartitionSpec":
        return cls(
            shards=int(payload["shards"]),
            tables={
                name: TablePartition(int(table["key_column"]))
                for name, table in dict(payload.get("tables", {})).items()
            },
            broadcast=frozenset(payload.get("broadcast", ())),
            routes={
                name: int(position)
                for name, position in dict(payload.get("routes", {})).items()
            },
            key_delimiter=payload.get("key_delimiter"),
        )


__all__ = ["PartitionSpec", "TablePartition"]
