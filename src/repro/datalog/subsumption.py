"""Clause subsumption and rule-base simplification.

A clause ``C`` *theta-subsumes* ``D`` when some substitution ``θ`` maps
``C``'s head to ``D``'s head and every body atom of ``Cθ`` into ``D``'s
body.  A subsumed rule derives nothing its subsumer does not, so removing it
preserves the least fixed point — letting the Knowledge Manager keep the
workspace and stored rule bases free of redundant rules (e.g. a re-entered
rule with renamed variables, or a specialised copy of a general rule).

For function-free clauses the check is decidable; the search below matches
body atoms with backtracking, which is exponential in the worst case but
instantaneous on rule-sized clauses.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .clauses import Clause, Program
from .terms import Atom
from .unify import Substitution, match_atom_oneway


def subsumes(general: Clause, specific: Clause) -> bool:
    """Whether ``general`` theta-subsumes ``specific``.

    Facts are handled as body-less clauses: ``p(X)`` subsumes ``p(a)``.
    """
    if general.head.predicate != specific.head.predicate:
        return False
    if general.head.arity != specific.head.arity:
        return False
    head_binding = match_atom_oneway(general.head, specific.head, {})
    if head_binding is None:
        return False
    return _cover_body(list(general.body), specific.body, head_binding)


def _cover_body(
    remaining: list[Atom], targets: Sequence[Atom], binding: Substitution
) -> bool:
    if not remaining:
        return True
    first, rest = remaining[0], remaining[1:]
    for target in targets:
        extended = match_atom_oneway(first, target, binding)
        if extended is not None and _cover_body(rest, targets, extended):
            return True
    return False


def is_tautology(clause: Clause) -> bool:
    """Whether the clause's head literally appears in its own body.

    Such a rule (``p(X) :- p(X), ...``) can never derive a new tuple.
    """
    return any(
        not atom.negated and atom == clause.head for atom in clause.body
    )


def subsumed_by_any(clause: Clause, others: Iterable[Clause]) -> Optional[Clause]:
    """The first clause in ``others`` that strictly subsumes ``clause``."""
    for other in others:
        if other is not clause and other != clause and subsumes(other, clause):
            return other
    return None


def simplify_program(program: Program) -> tuple[Program, list[Clause]]:
    """Remove tautologies and subsumed clauses from ``program``.

    Clauses are processed in entry order; a clause is dropped when a
    previously kept clause subsumes it, and it evicts any previously kept
    clause it *strictly* subsumes.  Alphabetic variants (clauses subsuming
    each other) keep their first occurrence.

    Returns:
        The simplified program (entry order preserved) and the list of
        removed clauses.  The least fixed point is unchanged.
    """
    removed: list[Clause] = []
    final: list[Clause] = []
    for clause in program:
        if is_tautology(clause):
            removed.append(clause)
            continue
        if any(subsumes(kept, clause) for kept in final):
            removed.append(clause)
            continue
        # `clause` survived, so nothing kept subsumes it; anything kept that
        # it subsumes is therefore strictly more specific — evict it.
        evicted = [kept for kept in final if subsumes(clause, kept)]
        for kept in evicted:
            final.remove(kept)
            removed.append(kept)
        final.append(clause)
    return Program(final), removed
