"""Adornments and sideways information passing (SIP).

The generalized magic sets optimization (Beeri & Ramakrishnan, the paper's
reference [10]) works on an *adorned* rule set: every derived predicate
occurrence carries a string over ``{b, f}`` marking which argument positions
are bound at call time.  Bindings propagate *sideways* through a rule body;
this module implements the standard left-to-right SIP, which the paper's
testbed also uses (it lists cleverer IP-strategy generation as designed but
not implemented).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import OptimizationError
from .clauses import Clause, Program, Query
from .terms import Atom, Constant, Variable

BOUND = "b"
FREE = "f"


def adornment_of(atom: Atom, bound_variables: set[Variable]) -> str:
    """The adornment string of ``atom`` given the currently bound variables."""
    letters = []
    for term in atom.terms:
        if isinstance(term, Constant) or term in bound_variables:
            letters.append(BOUND)
        else:
            letters.append(FREE)
    return "".join(letters)


def adorned_name(predicate: str, adornment: str) -> str:
    """Name of the adorned version of ``predicate``, e.g. ``ancestor__bf``."""
    return f"{predicate}__{adornment}"


def split_adorned_name(name: str) -> tuple[str, str]:
    """Inverse of :func:`adorned_name`.

    Raises:
        ValueError: when ``name`` is not an adorned predicate name.
    """
    base, separator, adornment = name.rpartition("__")
    if not separator or not adornment or set(adornment) - {BOUND, FREE}:
        raise ValueError(f"{name!r} is not an adorned predicate name")
    return base, adornment


def bound_terms(atom: Atom, adornment: str) -> tuple:
    """The argument terms of ``atom`` at the bound positions of ``adornment``."""
    if len(adornment) != atom.arity:
        raise ValueError(
            f"adornment {adornment!r} does not fit {atom.predicate}/{atom.arity}"
        )
    return tuple(
        term for term, letter in zip(atom.terms, adornment) if letter == BOUND
    )


@dataclass(frozen=True)
class AdornedProgram:
    """Result of the adornment pass.

    ``rules`` use adorned names for derived predicates; ``query_goal`` is the
    adorned version of the (single-goal) query; ``derived`` records which
    *original* predicates are derived, and ``adornments`` maps each original
    derived predicate to the set of adornments generated for it.
    """

    rules: Program
    query_goal: Atom
    derived: frozenset[str]
    adornments: dict[str, set[str]]


def adorn_program(
    rules: Program, query: Query, derived_predicates: Iterable[str]
) -> AdornedProgram:
    """Adorn ``rules`` for ``query`` using the left-to-right SIP.

    Only single-goal queries over a derived predicate are adorned (the
    testbed rewrites multi-goal queries into an auxiliary rule first; see
    :mod:`repro.km.optimizer`).

    Raises:
        OptimizationError: when the query goal is not a derived predicate.
    """
    derived = frozenset(derived_predicates)
    if len(query.goals) != 1:
        raise OptimizationError(
            "adornment requires a single-goal query; wrap multi-goal queries "
            "in an auxiliary rule first"
        )
    goal = query.goals[0]
    if goal.predicate not in derived:
        raise OptimizationError(
            f"query goal {goal.predicate!r} is not a derived predicate; "
            "magic sets does not apply"
        )

    query_adornment = adornment_of(goal, set())
    worklist: list[tuple[str, str]] = [(goal.predicate, query_adornment)]
    done: set[tuple[str, str]] = set()
    adorned_rules = Program()
    adornments: dict[str, set[str]] = {}

    while worklist:
        predicate, adornment = worklist.pop()
        if (predicate, adornment) in done:
            continue
        done.add((predicate, adornment))
        adornments.setdefault(predicate, set()).add(adornment)
        for clause in rules.defining(predicate):
            if not clause.is_rule:
                continue
            adorned_clause, calls = _adorn_rule(clause, adornment, derived)
            adorned_rules.add(adorned_clause)
            for called_predicate, called_adornment in calls:
                if (called_predicate, called_adornment) not in done:
                    worklist.append((called_predicate, called_adornment))

    adorned_goal = Atom(
        adorned_name(goal.predicate, query_adornment), goal.terms
    )
    return AdornedProgram(adorned_rules, adorned_goal, derived, adornments)


def _adorn_rule(
    clause: Clause, head_adornment: str, derived: frozenset[str]
) -> tuple[Clause, list[tuple[str, str]]]:
    """Adorn one rule for one head adornment.

    Returns the adorned clause and the (predicate, adornment) pairs of the
    derived body atoms it calls.
    """
    if len(head_adornment) != clause.head.arity:
        raise OptimizationError(
            f"adornment {head_adornment!r} does not fit head of {clause}"
        )
    bound: set[Variable] = set()
    for term, letter in zip(clause.head.terms, head_adornment):
        if letter == BOUND and isinstance(term, Variable):
            bound.add(term)

    new_body: list[Atom] = []
    calls: list[tuple[str, str]] = []
    for atom in clause.body:
        if atom.predicate in derived and not atom.negated:
            atom_adornment = adornment_of(atom, bound)
            calls.append((atom.predicate, atom_adornment))
            new_body.append(
                Atom(adorned_name(atom.predicate, atom_adornment), atom.terms)
            )
        else:
            new_body.append(atom)
        # Left-to-right SIP: after an atom is evaluated all its variables are
        # bound for the atoms to its right (negated atoms bind nothing).
        if not atom.negated:
            bound.update(atom.variables)

    new_head = Atom(
        adorned_name(clause.head.predicate, head_adornment), clause.head.terms
    )
    return Clause(new_head, tuple(new_body)), calls


def reorder_body_for_sip(clause: Clause, head_bound: Sequence[Variable]) -> Clause:
    """Greedy body reordering so bound atoms come first (an IP strategy).

    The paper lists an algorithm for "efficiently generating [an] information
    passing strategy" as designed but unimplemented; this simple greedy pass
    stands in for it: repeatedly pick the not-yet-placed atom sharing the most
    variables with the already-bound set (ties: original order), so sideways
    information flows early.
    """
    remaining = list(clause.body)
    bound = set(head_bound)
    ordered: list[Atom] = []
    while remaining:
        def score(atom: Atom) -> tuple[int, int]:
            shared = sum(1 for v in atom.variables if v in bound)
            constants = sum(1 for t in atom.terms if isinstance(t, Constant))
            return (shared + constants, -remaining.index(atom))

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        if not best.negated:
            bound.update(best.variables)
    return Clause(clause.head, tuple(ordered))
