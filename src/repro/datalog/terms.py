"""Terms and atomic formulas of the pure, function-free Horn clause language.

The paper's language (section 2.1) is Datalog: terms are either variables or
constants (no function symbols), and an *atom* is a predicate applied to a
tuple of terms.  These classes are immutable and hashable so they can be used
freely as dictionary keys and set members throughout the Knowledge Manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A universally quantified logical variable, e.g. ``X`` in ``p(X, Y)``.

    By convention (and enforced by the parser) variable names start with an
    upper-case letter or underscore.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def renamed(self, suffix: str) -> "Variable":
        """Return a fresh variable whose name carries ``suffix``."""
        return Variable(f"{self.name}{suffix}")


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant term: a string symbol or an integer.

    The testbed stores string constants as SQL ``TEXT`` and integers as SQL
    ``INTEGER``; :mod:`repro.datalog.typecheck` infers which, per column.
    """

    value: Union[str, int]

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)

    @property
    def sql_type(self) -> str:
        """The SQL column type this constant belongs to (``TEXT``/``INTEGER``)."""
        return "INTEGER" if isinstance(self.value, int) else "TEXT"


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """True when ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True when ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``predicate(t1, ..., tn)``.

    ``negated`` supports the stratified-negation extension (section 6 of the
    paper lists negation as future work; we implement it).  The pure language
    of the paper never sets it.
    """

    predicate: str
    terms: tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("atom predicate name must be non-empty")
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.predicate}({args})"

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The variables of the atom, in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen.setdefault(term, None)
        return tuple(seen)

    @property
    def constants(self) -> tuple[Constant, ...]:
        """All constant arguments, in positional order (with duplicates)."""
        return tuple(t for t in self.terms if isinstance(t, Constant))

    @property
    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return all(isinstance(t, Constant) for t in self.terms)

    def positive(self) -> "Atom":
        """This atom without negation."""
        if not self.negated:
            return self
        return Atom(self.predicate, self.terms, negated=False)

    def negate(self) -> "Atom":
        """The negation of this atom."""
        return Atom(self.predicate, self.terms, negated=not self.negated)

    def with_predicate(self, predicate: str) -> "Atom":
        """A copy of this atom under a different predicate name."""
        return Atom(predicate, self.terms, negated=self.negated)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution to every variable argument."""
        terms = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.terms
        )
        return Atom(self.predicate, terms, negated=self.negated)

    def ground_tuple(self) -> tuple[Union[str, int], ...]:
        """The Python tuple of values for a ground atom.

        Raises:
            ValueError: if the atom still contains variables.
        """
        if not self.is_ground:
            raise ValueError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]


_fresh_counter = itertools.count()


def fresh_variable(base: str = "V") -> Variable:
    """Return a variable guaranteed not to clash with parsed user variables.

    Parsed variables never contain ``#``, so embedding it guarantees
    freshness across the whole process.
    """
    return Variable(f"{base}#{next(_fresh_counter)}")


def atoms_variables(atoms: Iterable[Atom]) -> Iterator[Variable]:
    """All variables appearing in ``atoms``, in first-occurrence order."""
    seen: set[Variable] = set()
    for atom in atoms:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.add(term)
                yield term
