"""The Horn-clause (Datalog) language substrate.

Everything the Knowledge Manager needs to analyse pure, function-free Horn
clause programs: terms and clauses, the parser, unification, the Predicate
Connection Graph with clique detection, the evaluation graph and order list,
type inference, safety checking, adornment/SIP, the generalized magic sets
rewriting, and stratification for the negation extension.
"""

from .adornment import AdornedProgram, adorn_program, adorned_name, adornment_of
from .clauses import Clause, Program, Query, fact
from .evalgraph import (
    EvaluationGraph,
    PredicateNode,
    all_evaluation_orders,
    build_evaluation_graph,
    evaluation_order,
    evaluation_order_list,
    relevant_rules,
)
from .magic import MagicProgram, magic_name, magic_rewrite
from .parser import parse_clause, parse_program, parse_query
from .pcg import Clique, PredicateConnectionGraph, find_cliques
from .safety import check_program as check_safety
from .safety import is_safe
from .stratify import Stratification, has_negation, is_stratifiable, stratify
from .subsumption import is_tautology, simplify_program, subsumes
from .terms import Atom, Constant, Term, Variable
from .typecheck import TypeEnvironment, infer_types
from .unify import Substitution, match, unify_atoms, unify_terms

__all__ = [
    "AdornedProgram",
    "Atom",
    "Clause",
    "Clique",
    "Constant",
    "EvaluationGraph",
    "MagicProgram",
    "PredicateConnectionGraph",
    "PredicateNode",
    "Program",
    "Query",
    "Stratification",
    "Substitution",
    "Term",
    "TypeEnvironment",
    "Variable",
    "adorn_program",
    "adorned_name",
    "adornment_of",
    "all_evaluation_orders",
    "build_evaluation_graph",
    "check_safety",
    "evaluation_order",
    "evaluation_order_list",
    "fact",
    "find_cliques",
    "has_negation",
    "infer_types",
    "is_safe",
    "is_stratifiable",
    "is_tautology",
    "simplify_program",
    "subsumes",
    "magic_name",
    "magic_rewrite",
    "match",
    "parse_clause",
    "parse_program",
    "parse_query",
    "relevant_rules",
    "stratify",
    "unify_atoms",
    "unify_terms",
]
