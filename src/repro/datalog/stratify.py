"""Stratification for the negation extension.

The paper lists "extension of Horn clauses to include negation" as future
work (section 6).  We implement *stratified* negation: the program is split
into strata such that a predicate's negative dependencies lie strictly below
it; each stratum is then an ordinary Horn program evaluated bottom-up, with
negated atoms reading the (now complete) relations of lower strata.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StratificationError
from .clauses import Program
from .pcg import PredicateConnectionGraph


@dataclass(frozen=True)
class Stratification:
    """An assignment of derived predicates to strata 0..n-1."""

    stratum_of: dict[str, int]

    @property
    def stratum_count(self) -> int:
        """Number of strata (0 when there are no derived predicates)."""
        if not self.stratum_of:
            return 0
        return max(self.stratum_of.values()) + 1

    def strata(self) -> list[set[str]]:
        """Predicates grouped by stratum, lowest first."""
        groups: list[set[str]] = [set() for __ in range(self.stratum_count)]
        for predicate, stratum in self.stratum_of.items():
            groups[stratum].add(predicate)
        return groups

    def split_program(self, program: Program) -> list[Program]:
        """The rule sub-programs per stratum, lowest first."""
        return [program.restricted_to(group) for group in self.strata()]


def stratify(program: Program) -> Stratification:
    """Compute a stratification of ``program``.

    The algorithm collapses the PCG into strongly connected components and
    verifies no negative edge stays inside a component, then longest-path
    layers the component DAG counting negative edges.

    Raises:
        StratificationError: when a negated dependency participates in a
            recursion cycle (the program is not stratifiable).
    """
    derived = program.derived_predicates
    pcg = PredicateConnectionGraph(program.rules)
    negative_edges: set[tuple[str, str]] = set()
    for clause in program.rules:
        for atom in clause.body:
            if atom.negated and atom.predicate in derived:
                negative_edges.add((clause.head_predicate, atom.predicate))

    components = pcg.strongly_connected_components()
    component_of: dict[str, int] = {}
    for index, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = index

    for head, body in negative_edges:
        if component_of.get(head) == component_of.get(body):
            raise StratificationError(
                f"negation of {body!r} inside a recursion with {head!r}; "
                "the program is not stratifiable"
            )

    # components arrive in reverse topological order: dependencies first.
    stratum_of_component: dict[int, int] = {}
    for index, component in enumerate(components):
        level = 0
        for predicate in component:
            for dependency in pcg.successors(predicate):
                dep_component = component_of[dependency]
                if dep_component == index:
                    continue
                dep_level = stratum_of_component.get(dep_component, 0)
                if (predicate, dependency) in negative_edges:
                    level = max(level, dep_level + 1)
                else:
                    level = max(level, dep_level)
        stratum_of_component[index] = level

    stratum_of = {
        predicate: stratum_of_component[component_of[predicate]]
        for predicate in derived
        if predicate in component_of
    }
    return Stratification(stratum_of)


def is_stratifiable(program: Program) -> bool:
    """True when :func:`stratify` succeeds."""
    try:
        stratify(program)
    except StratificationError:
        return False
    return True


def has_negation(program: Program) -> bool:
    """True when any rule body contains a negated atom."""
    return any(atom.negated for clause in program.rules for atom in clause.body)
