"""The evaluation graph and evaluation order list (paper section 2.3).

The evaluation graph collapses each clique of the PCG into a single node;
non-recursive derived predicates stay as their own nodes.  It is acyclic by
construction, so a topological sort yields the *evaluation order list*: the
order in which the run-time library must materialise predicates so that every
node's dependencies are computed first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..errors import TestbedError
from .clauses import Clause, Program
from .pcg import Clique, PredicateConnectionGraph, find_cliques


@dataclass(frozen=True)
class PredicateNode:
    """A non-recursive derived predicate with its defining rules."""

    predicate: str
    rules: tuple[Clause, ...]

    @property
    def predicates(self) -> frozenset[str]:
        """Uniform access shared with :class:`~repro.datalog.pcg.Clique`."""
        return frozenset((self.predicate,))

    def __str__(self) -> str:
        return f"PredicateNode({self.predicate}, {len(self.rules)} rules)"


EvaluationNode = Union[PredicateNode, Clique]


@dataclass(frozen=True)
class EvaluationGraph:
    """The acyclic graph of evaluation nodes with its dependency edges."""

    nodes: tuple[EvaluationNode, ...]
    edges: frozenset[tuple[int, int]]  # (dependent, dependency) by node index

    def dependencies_of(self, index: int) -> set[int]:
        """Indexes of nodes that node ``index`` depends on."""
        return {dep for node, dep in self.edges if node == index}

    def dependents_of(self, index: int) -> set[int]:
        """Indexes of nodes that depend on node ``index``."""
        return {node for node, dep in self.edges if dep == index}


def build_evaluation_graph(program: Program) -> EvaluationGraph:
    """Build the evaluation graph for the rules of ``program``.

    Nodes cover every derived predicate; base predicates are leaves of the
    computation and do not appear (they need no evaluation).
    """
    cliques = find_cliques(program)
    in_clique: dict[str, int] = {}
    nodes: list[EvaluationNode] = []
    for clique in cliques:
        index = len(nodes)
        nodes.append(clique)
        for predicate in clique.predicates:
            in_clique[predicate] = index

    derived = program.derived_predicates
    node_of: dict[str, int] = dict(in_clique)
    for predicate in sorted(derived):
        if predicate in in_clique:
            continue
        rules = tuple(c for c in program.defining(predicate) if c.is_rule)
        node_of[predicate] = len(nodes)
        nodes.append(PredicateNode(predicate, rules))

    edges: set[tuple[int, int]] = set()
    for clause in program.rules:
        head_node = node_of.get(clause.head_predicate)
        if head_node is None:
            continue
        for atom in clause.body:
            body_node = node_of.get(atom.predicate)
            if body_node is not None and body_node != head_node:
                edges.add((head_node, body_node))
    return EvaluationGraph(tuple(nodes), frozenset(edges))


def evaluation_order(graph: EvaluationGraph) -> list[EvaluationNode]:
    """Topologically sort ``graph`` into an evaluation order list.

    Dependencies come first, so the run-time library can walk the list front
    to back.  Ties are broken deterministically by node index so compiled
    programs are reproducible.

    Raises:
        TestbedError: if the graph is cyclic, which indicates a bug in
            clique construction (the evaluation graph must be a DAG).
    """
    remaining_deps: dict[int, set[int]] = {
        i: graph.dependencies_of(i) for i in range(len(graph.nodes))
    }
    ready = sorted(i for i, deps in remaining_deps.items() if not deps)
    order: list[int] = []
    while ready:
        index = ready.pop(0)
        order.append(index)
        for dependent in sorted(graph.dependents_of(index)):
            deps = remaining_deps[dependent]
            deps.discard(index)
            if not deps and dependent not in order and dependent not in ready:
                ready.append(dependent)
        ready.sort()
    if len(order) != len(graph.nodes):
        raise TestbedError("evaluation graph is cyclic; clique detection failed")
    return [graph.nodes[i] for i in order]


def evaluation_order_list(program: Program) -> list[EvaluationNode]:
    """Convenience: evaluation order list straight from a program."""
    return evaluation_order(build_evaluation_graph(program))


def all_evaluation_orders(
    graph: EvaluationGraph, limit: int = 100
) -> list[list[EvaluationNode]]:
    """Every valid evaluation order list of ``graph`` (up to ``limit``).

    The paper (section 2.3) observes that a query generally admits more than
    one evaluation order list — e.g. (C2, C3, C1) and (C3, C2, C1) for its
    Figure 4 — and calls choosing among them an unaddressed optimization
    problem.  This enumerator makes the choice space explicit; the test
    suite uses it to verify order-independence of the results, and
    experiments can use it to measure whether the choice matters on a given
    workload.
    """
    remaining = set(range(len(graph.nodes)))
    dependencies = {i: graph.dependencies_of(i) for i in remaining}
    orders: list[list[int]] = []
    prefix: list[int] = []

    def extend() -> None:
        if len(orders) >= limit:
            return
        if not remaining:
            orders.append(list(prefix))
            return
        ready = sorted(
            i for i in remaining if not (dependencies[i] & remaining)
        )
        for index in ready:
            remaining.discard(index)
            prefix.append(index)
            extend()
            prefix.pop()
            remaining.add(index)
            if len(orders) >= limit:
                return

    extend()
    return [[graph.nodes[i] for i in order] for order in orders]


def relevant_rules(program: Program, goal_predicates: Iterable[str]) -> Program:
    """The sub-program relevant to ``goal_predicates``.

    Includes every rule whose head is a goal predicate or reachable from one
    (paper section 4.2 step 1), along with the facts defining reachable base
    predicates that are present in the program.
    """
    pcg = PredicateConnectionGraph(program.rules)
    goals = set(goal_predicates)
    wanted = set(goals)
    wanted.update(pcg.reachable_from(*goals))
    return program.restricted_to(wanted)
