"""The Rule Parser (paper section 3.2.1).

Parses the textual Horn clause language into :class:`~repro.datalog.clauses.Clause`
and :class:`~repro.datalog.clauses.Query` objects.  The concrete syntax is the
usual Datalog/Prolog one:

* ``ancestor(X, Y) :- parent(X, Y).`` — a rule (``<-`` is accepted too);
* ``parent(john, mary).`` — a fact; identifiers starting lower-case, quoted
  strings, and integers are constants, identifiers starting upper-case or
  ``_`` are variables;
* ``?- ancestor(john, X).`` — a query; multiple goals separated by commas;
* ``not q(X)`` (or ``\\+ q(X)``) — negated body atom (stratified-negation
  extension);
* ``%`` starts a comment running to end of line.

The parser reports precise positions in :class:`~repro.errors.ParseError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..errors import ParseError
from .clauses import Clause, Program, Query
from .terms import Atom, Constant, Term, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>%[^\n]*)
  | (?P<IMPLIES>:-|<-)
  | (?P<QUERY>\?-)
  | (?P<NOT>\\\+|\bnot\b)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<PERIOD>\.)
  | (?P<INT>-?\d+)
  | (?P<QUOTED>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[_Token]:
    """Split ``text`` into tokens, dropping whitespace and comments.

    Raises:
        ParseError: on any character that starts no token.
    """
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", text, position
            )
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _TokenStream:
    """Cursor over a token list with one-token lookahead."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.value!r}", self.text, token.position
            )
        return token

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


def _parse_term(stream: _TokenStream) -> Term:
    token = stream.next()
    if token.kind == "INT":
        return Constant(int(token.value))
    if token.kind == "QUOTED":
        return Constant(_unquote(token.value))
    if token.kind == "NAME":
        if token.value[0].isupper() or token.value[0] == "_":
            return Variable(token.value)
        return Constant(token.value)
    raise ParseError(
        f"expected a term, found {token.value!r}", stream.text, token.position
    )


def _parse_atom(stream: _TokenStream, allow_negation: bool) -> Atom:
    negated = False
    token = stream.peek()
    if token is not None and token.kind == "NOT":
        if not allow_negation:
            raise ParseError(
                "negation is not allowed here", stream.text, token.position
            )
        stream.next()
        negated = True
    name_token = stream.next()
    if name_token.kind != "NAME" or not (
        name_token.value[0].islower()
    ):
        raise ParseError(
            f"expected a predicate name, found {name_token.value!r}",
            stream.text,
            name_token.position,
        )
    stream.expect("LPAREN")
    terms: list[Term] = [_parse_term(stream)]
    while True:
        token = stream.next()
        if token.kind == "RPAREN":
            break
        if token.kind != "COMMA":
            raise ParseError(
                f"expected ',' or ')', found {token.value!r}",
                stream.text,
                token.position,
            )
        terms.append(_parse_term(stream))
    return Atom(name_token.value, tuple(terms), negated=negated)


def _parse_body(stream: _TokenStream) -> list[Atom]:
    atoms = [_parse_atom(stream, allow_negation=True)]
    while True:
        token = stream.peek()
        if token is None or token.kind != "COMMA":
            return atoms
        stream.next()
        atoms.append(_parse_atom(stream, allow_negation=True))


def parse_clause(text: str) -> Clause:
    """Parse a single fact or rule, e.g. ``p(X,Y) :- q(X,Z), r(Z,Y).``"""
    stream = _TokenStream(text)
    clause = _parse_one_clause(stream)
    if not stream.exhausted:
        token = stream.peek()
        assert token is not None
        raise ParseError(
            f"trailing input {token.value!r}", text, token.position
        )
    return clause


def _parse_one_clause(stream: _TokenStream) -> Clause:
    head = _parse_atom(stream, allow_negation=False)
    token = stream.next()
    if token.kind == "PERIOD":
        return Clause(head)
    if token.kind != "IMPLIES":
        raise ParseError(
            f"expected ':-' or '.', found {token.value!r}",
            stream.text,
            token.position,
        )
    body = _parse_body(stream)
    stream.expect("PERIOD")
    return Clause(head, tuple(body))


def parse_program(text: str) -> Program:
    """Parse a whole program: any number of facts and rules."""
    stream = _TokenStream(text)
    program = Program()
    while not stream.exhausted:
        program.add(_parse_one_clause(stream))
    return program


def parse_query(text: str) -> Query:
    """Parse a query, with or without the leading ``?-``.

    Examples::

        parse_query("?- ancestor(john, X).")
        parse_query("ancestor(john, X), person(X)")
    """
    stream = _TokenStream(text)
    token = stream.peek()
    if token is not None and token.kind == "QUERY":
        stream.next()
    goals = _parse_body(stream)
    token = stream.peek()
    if token is not None and token.kind == "PERIOD":
        stream.next()
    if not stream.exhausted:
        trailing = stream.peek()
        assert trailing is not None
        raise ParseError(
            f"trailing input {trailing.value!r}", text, trailing.position
        )
    return Query(tuple(goals))


def iter_clauses(text: str) -> Iterator[Clause]:
    """Yield clauses one at a time from multi-clause source text."""
    stream = _TokenStream(text)
    while not stream.exhausted:
        yield _parse_one_clause(stream)


def format_clause(clause: Clause) -> str:
    """Render a clause in concrete syntax that :func:`parse_clause` round-trips."""
    return str(clause)
