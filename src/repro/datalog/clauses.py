"""Horn clauses, facts, rules, queries, and rule programs.

Section 2.1 of the paper: a Horn clause is ``head :- body`` with at most one
head atom and a conjunctive body; a *fact* is a ground clause with an empty
body; a *rule* is any other clause.  A *program* is a set of clauses closed
under the convention (also from the paper) that every predicate is defined
entirely by rules or entirely by facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import ArityError
from .terms import Atom, Constant, Term, Variable


@dataclass(frozen=True, slots=True)
class Clause:
    """A definite Horn clause ``head :- body``.

    ``body`` may be empty, in which case the clause asserts its head
    unconditionally; if the head is also ground the clause is a *fact*.
    """

    head: Atom
    body: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise ValueError("clause heads cannot be negated")

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(a) for a in self.body)
        return f"{self.head} :- {body}."

    @property
    def is_fact(self) -> bool:
        """True for a ground, body-less clause (paper section 2.1)."""
        return not self.body and self.head.is_ground

    @property
    def is_rule(self) -> bool:
        """True for any clause that is not a fact."""
        return not self.is_fact

    @property
    def head_predicate(self) -> str:
        """Name of the predicate this clause (partially) defines."""
        return self.head.predicate

    @property
    def body_predicates(self) -> tuple[str, ...]:
        """Predicate names in the body, in order, with duplicates."""
        return tuple(a.predicate for a in self.body)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """All variables of the clause in first-occurrence order (head first)."""
        seen: dict[Variable, None] = {}
        for atom in (self.head, *self.body):
            for term in atom.terms:
                if isinstance(term, Variable):
                    seen.setdefault(term, None)
        return tuple(seen)

    @property
    def constants(self) -> tuple[Constant, ...]:
        """All constants of the clause (head first, positional order)."""
        out: list[Constant] = []
        for atom in (self.head, *self.body):
            out.extend(atom.constants)
        return tuple(out)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Clause":
        """Apply a substitution to head and body."""
        return Clause(
            self.head.substitute(mapping),
            tuple(a.substitute(mapping) for a in self.body),
        )

    def rename_apart(self, suffix: str) -> "Clause":
        """Rename every variable by appending ``suffix`` (for standardising apart)."""
        mapping = {v: Variable(f"{v.name}{suffix}") for v in self.variables}
        return self.substitute(mapping)

    def is_range_restricted(self) -> bool:
        """True when every head variable also occurs in a positive body atom.

        Range restriction is the safety condition for pure Datalog; see
        :mod:`repro.datalog.safety` for the full check with negation.
        """
        positive_vars = {
            v for atom in self.body if not atom.negated for v in atom.variables
        }
        return all(v in positive_vars for v in self.head.variables)


def fact(predicate: str, *values: str | int) -> Clause:
    """Convenience constructor for a ground fact, e.g. ``fact('parent', 'a', 'b')``."""
    return Clause(Atom(predicate, tuple(Constant(v) for v in values)))


@dataclass(frozen=True, slots=True)
class Query:
    """A D/KB query: a conjunction of goal atoms with an implicit answer head.

    The paper expresses queries as Horn clauses whose head is the answer
    relation (e.g. ``query(X) :- ancestor('john', X)``).  ``answer_variables``
    lists the distinguished variables returned to the user, in output-column
    order.
    """

    goals: tuple[Atom, ...]
    answer_variables: tuple[Variable, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.goals, tuple):
            object.__setattr__(self, "goals", tuple(self.goals))
        if not isinstance(self.answer_variables, tuple):
            object.__setattr__(
                self, "answer_variables", tuple(self.answer_variables)
            )
        if not self.goals:
            raise ValueError("query must have at least one goal")
        goal_vars = {v for g in self.goals for v in g.variables}
        if not self.answer_variables:
            ordered: dict[Variable, None] = {}
            for goal in self.goals:
                for v in goal.variables:
                    ordered.setdefault(v, None)
            object.__setattr__(self, "answer_variables", tuple(ordered))
        else:
            missing = [v for v in self.answer_variables if v not in goal_vars]
            if missing:
                names = ", ".join(v.name for v in missing)
                raise ValueError(f"answer variables not bound by any goal: {names}")

    def __str__(self) -> str:
        body = ", ".join(str(g) for g in self.goals)
        return f"?- {body}."

    ANSWER_PREDICATE = "_query"

    def as_clause(self) -> Clause:
        """The query as a rule defining the reserved answer predicate."""
        head = Atom(self.ANSWER_PREDICATE, self.answer_variables)
        return Clause(head, self.goals)

    @property
    def predicates(self) -> tuple[str, ...]:
        """Predicates referenced by the query goals."""
        return tuple(g.predicate for g in self.goals)


class Program:
    """An ordered, de-duplicated collection of clauses with indexes by head.

    The Workspace D/KB and extracted Stored D/KB rules are both held as
    programs.  Clause order is preserved (it is the user's entry order) but
    equality and membership are set-like.
    """

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._clauses: list[Clause] = []
        self._seen: set[Clause] = set()
        self._by_head: dict[str, list[Clause]] = {}
        self._arities: dict[str, int] = {}
        for clause in clauses:
            self.add(clause)

    def add(self, clause: Clause) -> bool:
        """Add ``clause``; return ``False`` when it was already present.

        Raises:
            ArityError: when the clause uses a predicate with an arity that
                conflicts with earlier clauses.
        """
        if clause in self._seen:
            return False
        self._check_arities(clause)
        self._seen.add(clause)
        self._clauses.append(clause)
        self._by_head.setdefault(clause.head_predicate, []).append(clause)
        return True

    def _check_arities(self, clause: Clause) -> None:
        for atom in (clause.head, *clause.body):
            known = self._arities.get(atom.predicate)
            if known is None:
                self._arities[atom.predicate] = atom.arity
            elif known != atom.arity:
                raise ArityError(atom.predicate, {known, atom.arity})

    def extend(self, clauses: Iterable[Clause]) -> int:
        """Add many clauses; return how many were new."""
        return sum(1 for c in clauses if self.add(c))

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __contains__(self, clause: object) -> bool:
        return clause in self._seen

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self._seen == other._seen

    def __repr__(self) -> str:
        return f"Program({len(self._clauses)} clauses)"

    def arity_of(self, predicate: str) -> int | None:
        """Known arity of ``predicate``, or ``None`` if never seen."""
        return self._arities.get(predicate)

    @property
    def rules(self) -> list[Clause]:
        """The rule subset, in entry order."""
        return [c for c in self._clauses if c.is_rule]

    @property
    def facts(self) -> list[Clause]:
        """The fact subset, in entry order."""
        return [c for c in self._clauses if c.is_fact]

    def defining(self, predicate: str) -> list[Clause]:
        """Clauses whose head predicate is ``predicate`` (the relation definition)."""
        return list(self._by_head.get(predicate, ()))

    @property
    def head_predicates(self) -> set[str]:
        """Predicates defined by at least one clause."""
        return set(self._by_head)

    @property
    def derived_predicates(self) -> set[str]:
        """Predicates defined by at least one rule (paper: intensional DB)."""
        return {p for p, cs in self._by_head.items() if any(c.is_rule for c in cs)}

    @property
    def base_predicates(self) -> set[str]:
        """Predicates appearing only in bodies or defined purely by facts."""
        referenced = {a.predicate for c in self._clauses for a in c.body}
        fact_defined = {
            p
            for p, cs in self._by_head.items()
            if cs and all(c.is_fact for c in cs)
        }
        return (referenced - self.derived_predicates) | (
            fact_defined - self.derived_predicates
        )

    @property
    def predicates(self) -> set[str]:
        """All predicates mentioned anywhere in the program."""
        out = set(self._by_head)
        for clause in self._clauses:
            out.update(a.predicate for a in clause.body)
        return out

    def restricted_to(self, predicates: Iterable[str]) -> "Program":
        """Sub-program of clauses whose head predicate is in ``predicates``."""
        wanted = set(predicates)
        return Program(c for c in self._clauses if c.head_predicate in wanted)

    def normalized(self) -> "Program":
        """Split predicates defined by both rules and facts (paper section 2.1).

        For every predicate ``p`` with mixed definitions, facts move to a new
        base predicate ``p__base`` and a bridging rule ``p(X...) :- p__base(X...)``
        is added, making every predicate purely extensional or purely
        intensional.
        """
        mixed = {
            p
            for p, cs in self._by_head.items()
            if any(c.is_fact for c in cs) and any(c.is_rule for c in cs)
        }
        if not mixed:
            return self
        out = Program()
        bridged: set[str] = set()
        for clause in self._clauses:
            p = clause.head_predicate
            if p in mixed and clause.is_fact:
                base_name = f"{p}__base"
                out.add(Clause(clause.head.with_predicate(base_name)))
                if p not in bridged:
                    bridged.add(p)
                    variables = tuple(
                        Variable(f"X{i}") for i in range(clause.head.arity)
                    )
                    out.add(
                        Clause(Atom(p, variables), (Atom(base_name, variables),))
                    )
            else:
                out.add(clause)
        return out
