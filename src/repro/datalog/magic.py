"""Generalized magic sets rewriting (paper section 3.2.5, reference [10]).

Given an adorned rule set, the transformation produces, per the paper's
control-flow description, "three sets of rules in the workspace: adorned,
magic, and modified rules" plus an adorned version of the query:

* a **magic predicate** ``m_p__a`` per adorned derived predicate ``p__a`` with
  at least one bound position, holding the bindings with which ``p__a`` will
  be called;
* **magic rules** deriving those bindings by walking rule bodies left to
  right (the SIP);
* **modified rules**: the original adorned rules guarded by their magic
  predicate, so bottom-up evaluation only derives facts relevant to the
  query;
* a **seed fact** for the query goal's magic predicate, built from the query
  constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizationError
from .adornment import (
    BOUND,
    AdornedProgram,
    adorn_program,
    bound_terms,
    split_adorned_name,
)
from .clauses import Clause, Program, Query
from .terms import Atom, Constant

MAGIC_PREFIX = "m_"


def magic_name(adorned_predicate: str) -> str:
    """Name of the magic predicate for an adorned predicate."""
    return f"{MAGIC_PREFIX}{adorned_predicate}"


def is_magic_name(name: str) -> bool:
    """True for names produced by :func:`magic_name`."""
    return name.startswith(MAGIC_PREFIX)


def _magic_atom(adorned_atom: Atom) -> Atom | None:
    """The magic literal for ``adorned_atom``; ``None`` for all-free adornments."""
    __, adornment = split_adorned_name(adorned_atom.predicate)
    if BOUND not in adornment:
        return None
    return Atom(
        magic_name(adorned_atom.predicate), bound_terms(adorned_atom, adornment)
    )


@dataclass(frozen=True)
class MagicProgram:
    """The output of the magic sets transformation.

    ``separable`` is true when the magic rules reference no adorned derived
    predicates, i.e. the two LFPs the paper describes (magic first, modified
    second) can be computed in sequence; otherwise all rules must be evaluated
    in a single fixed point.
    """

    magic_rules: Program
    modified_rules: Program
    seed: Clause
    goal: Atom
    adorned: AdornedProgram

    @property
    def separable(self) -> bool:
        """Whether magic rules close without the modified rules."""
        adorned_heads = {
            clause.head_predicate for clause in self.adorned.rules
        }
        for clause in self.magic_rules:
            for atom in clause.body:
                if atom.predicate in adorned_heads:
                    return False
        return True

    @property
    def combined(self) -> Program:
        """All rewritten rules plus the seed, for single-fixpoint evaluation."""
        program = Program()
        program.add(self.seed)
        program.extend(self.magic_rules)
        program.extend(self.modified_rules)
        return program

    @property
    def magic_predicates(self) -> set[str]:
        """All magic predicate names (including the seeded one)."""
        names = {c.head_predicate for c in self.magic_rules}
        names.add(self.seed.head_predicate)
        return names


def magic_rewrite(
    rules: Program, query: Query, derived_predicates: set[str]
) -> MagicProgram:
    """Apply generalized magic sets to ``rules`` for ``query``.

    Raises:
        OptimizationError: when the query has no bound argument (magic sets
            would restrict nothing) or the goal is not derived.
    """
    adorned = adorn_program(rules, query, derived_predicates)
    goal = query.goals[0]
    constants = [t for t in goal.terms if isinstance(t, Constant)]
    if not constants:
        raise OptimizationError(
            f"query goal {goal} has no constants; magic sets cannot restrict "
            "the computation"
        )

    magic_rules = Program()
    modified_rules = Program()

    for clause in adorned.rules:
        head_magic = _magic_atom(clause.head)
        prefix: list[Atom] = [] if head_magic is None else [head_magic]
        # Magic rules: one per derived body occurrence with bound positions.
        seen_body: list[Atom] = []
        for atom in clause.body:
            if _is_adorned_derived(atom):
                body_magic = _magic_atom(atom)
                if body_magic is not None:
                    magic_rules.add(
                        Clause(body_magic, tuple(prefix + seen_body))
                    )
            seen_body.append(atom)
        # Modified rule: original adorned rule guarded by its magic literal.
        modified_rules.add(Clause(clause.head, tuple(prefix + list(clause.body))))

    seed_atom = _magic_atom(adorned.query_goal)
    if seed_atom is None:  # pragma: no cover - guarded by the constants check
        raise OptimizationError("query goal lost its bound arguments")
    seed = Clause(seed_atom)
    return MagicProgram(magic_rules, modified_rules, seed, adorned.query_goal, adorned)


def _is_adorned_derived(atom: Atom) -> bool:
    """True when ``atom`` refers to an adorned derived predicate."""
    try:
        split_adorned_name(atom.predicate)
    except ValueError:
        return False
    return not atom.negated
