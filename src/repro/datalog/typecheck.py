"""Type inference and checking for derived predicates (paper section 3.2.4).

The Semantic Checker's second task: infer, for each derived predicate, the
type of every column, and verify that all rules defining a predicate infer
the *same* types.  Base relation column types come from the extensional data
dictionary.

Inference is constraint unification: every (predicate, column) position is a
type variable; a rule variable shared between positions unifies them, and
constants / base-dictionary declarations constrain them.  Two constraints on
one equivalence class must agree — that is the paper's "same types inferred
from all the rules" check.  A position left wholly unconstrained (possible
for recursive predicates with no exit rule, whose fixed point is empty, such
as ``p2`` in the paper's Figure 1) defaults to ``TEXT``.

Types are SQL column types; the testbed uses ``TEXT`` and ``INTEGER``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import TypeInferenceError
from .clauses import Program
from .terms import Constant, Variable

ColumnTypes = tuple[str, ...]

TEXT = "TEXT"
INTEGER = "INTEGER"
DEFAULT_TYPE = TEXT

_VALID_TYPES = frozenset((TEXT, INTEGER))

PositionKey = tuple[str, int]


@dataclass(frozen=True)
class TypeEnvironment:
    """Inferred column types for every predicate relevant to a query."""

    types: Mapping[str, ColumnTypes]

    def of(self, predicate: str) -> ColumnTypes:
        """Column types of ``predicate``.

        Raises:
            TypeInferenceError: when the predicate's types are unknown.
        """
        try:
            return self.types[predicate]
        except KeyError:
            raise TypeInferenceError(
                f"no types inferred for predicate {predicate!r}"
            ) from None

    def __contains__(self, predicate: str) -> bool:
        return predicate in self.types


class _UnionFind:
    """Union-find over position keys with a type constraint per class."""

    def __init__(self) -> None:
        self._parent: dict[PositionKey, PositionKey] = {}
        self._constraint: dict[PositionKey, str] = {}

    def find(self, key: PositionKey) -> PositionKey:
        self._parent.setdefault(key, key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, left: PositionKey, right: PositionKey, source: str) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        left_type = self._constraint.get(left_root)
        right_type = self._constraint.get(right_root)
        if left_type and right_type and left_type != right_type:
            raise TypeInferenceError(
                f"conflicting types {left_type} vs {right_type} for "
                f"{_pretty(left)} and {_pretty(right)} (from {source})"
            )
        self._parent[right_root] = left_root
        merged = left_type or right_type
        if merged:
            self._constraint[left_root] = merged

    def constrain(self, key: PositionKey, ctype: str, source: str) -> None:
        root = self.find(key)
        existing = self._constraint.get(root)
        if existing and existing != ctype:
            raise TypeInferenceError(
                f"conflicting types for {_pretty(key)}: {existing} vs "
                f"{ctype} (from {source})"
            )
        self._constraint[root] = ctype

    def type_of(self, key: PositionKey) -> str | None:
        return self._constraint.get(self.find(key))


def _pretty(key: PositionKey) -> str:
    predicate, position = key
    return f"{predicate!r} column {position}"


def infer_types(
    program: Program,
    base_types: Mapping[str, Sequence[str]],
    allow_undefined: bool = False,
) -> TypeEnvironment:
    """Infer column types for every derived predicate of ``program``.

    Args:
        program: the relevant rules (and optionally facts).
        base_types: column types of base relations, from the extensional
            data dictionary (stored derived predicates already in the
            intensional dictionary may be passed here too — their declared
            types then constrain the inference).
        allow_undefined: tolerate body predicates that are neither defined
            nor declared, treating their columns as unconstrained type
            variables.  The stored-D/KB update algorithm uses this: the
            paper's session model allows storing rules whose body predicates
            are defined later.

    Raises:
        TypeInferenceError: on any conflict — within a rule, between two
            rules defining the same predicate, or against the dictionaries —
            or (unless ``allow_undefined``) when a body predicate is neither
            defined nor declared.
    """
    uf = _UnionFind()
    arity: dict[str, int] = {}
    defined = set(program.head_predicates)

    for predicate, columns in base_types.items():
        columns = tuple(columns)
        bad = [c for c in columns if c not in _VALID_TYPES]
        if bad:
            raise TypeInferenceError(
                f"relation {predicate!r} declares unsupported types {bad}"
            )
        arity[predicate] = len(columns)
        for position, ctype in enumerate(columns):
            uf.constrain((predicate, position), ctype, "data dictionary")

    def check_arity(predicate: str, used: int, source: str) -> None:
        known = arity.setdefault(predicate, used)
        if known != used:
            raise TypeInferenceError(
                f"predicate {predicate!r} has {known} columns but is used "
                f"with {used} arguments in {source}"
            )

    for clause in program:
        source = str(clause)
        variable_keys: dict[Variable, PositionKey] = {}
        for atom in (clause.head, *clause.body):
            if (
                not allow_undefined
                and atom is not clause.head
                and atom.predicate not in defined
                and atom.predicate not in base_types
            ):
                raise TypeInferenceError(
                    f"could not infer types for predicate {atom.predicate!r} "
                    f"in {source}: neither defined by rules/facts nor "
                    "declared as a base relation"
                )
            check_arity(atom.predicate, atom.arity, source)
            for position, term in enumerate(atom.terms):
                key = (atom.predicate, position)
                if isinstance(term, Constant):
                    uf.constrain(key, term.sql_type, source)
                else:
                    anchor = variable_keys.get(term)
                    if anchor is None:
                        variable_keys[term] = key
                    else:
                        uf.union(anchor, key, source)

    inferred: dict[str, ColumnTypes] = {}
    for predicate, columns in base_types.items():
        inferred[predicate] = tuple(columns)
    for predicate in defined:
        if predicate in inferred:
            # Also defined by clauses: verify agreement position-wise (the
            # constrain calls above already raised on conflicts).
            continue
        inferred[predicate] = tuple(
            uf.type_of((predicate, position)) or DEFAULT_TYPE
            for position in range(arity.get(predicate, 0))
        )
    return TypeEnvironment(inferred)


def check_query_types(
    query_goals: Sequence, environment: TypeEnvironment
) -> None:
    """Verify query constants against the inferred column types.

    Raises:
        TypeInferenceError: when a goal constant's type differs from the
            column type of its position, or the arity is wrong.
    """
    for goal in query_goals:
        columns = environment.of(goal.predicate)
        if len(columns) != goal.arity:
            raise TypeInferenceError(
                f"query goal {goal} has {goal.arity} arguments but "
                f"{goal.predicate!r} has {len(columns)} columns"
            )
        for term, column_type in zip(goal.terms, columns):
            if isinstance(term, Constant) and term.sql_type != column_type:
                raise TypeInferenceError(
                    f"query constant {term} does not match {column_type} "
                    f"column of {goal.predicate!r}"
                )
