"""The Predicate Connection Graph (paper section 2.2).

Nodes are predicates; for every rule ``p :- q1, ..., qn`` there is a directed
edge ``p -> qi`` for each body predicate (i.e. an edge from a predicate to the
predicates it *depends on*).  A predicate ``q`` is then *reachable from* ``p``
exactly when the paper's definition holds.  Strongly connected components of
the PCG give the mutually-recursive predicate groups; a *clique* in the
paper's broader sense bundles such a group with its recursive and exit rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .clauses import Clause, Program


class PredicateConnectionGraph:
    """Directed dependency graph over predicate names.

    Built from a set of rules; facts contribute isolated (base) nodes only.
    """

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._successors: dict[str, set[str]] = {}
        self._predecessors: dict[str, set[str]] = {}
        for clause in clauses:
            self.add_clause(clause)

    def add_node(self, predicate: str) -> None:
        """Ensure ``predicate`` exists as a node."""
        self._successors.setdefault(predicate, set())
        self._predecessors.setdefault(predicate, set())

    def add_edge(self, head: str, body: str) -> None:
        """Add the dependency edge head -> body."""
        self.add_node(head)
        self.add_node(body)
        self._successors[head].add(body)
        self._predecessors[body].add(head)

    def add_clause(self, clause: Clause) -> None:
        """Add all edges contributed by ``clause``."""
        self.add_node(clause.head_predicate)
        for atom in clause.body:
            self.add_edge(clause.head_predicate, atom.predicate)

    @property
    def nodes(self) -> set[str]:
        """All predicate nodes."""
        return set(self._successors)

    def successors(self, predicate: str) -> set[str]:
        """Predicates that ``predicate`` directly depends on."""
        return set(self._successors.get(predicate, ()))

    def predecessors(self, predicate: str) -> set[str]:
        """Predicates that directly depend on ``predicate``."""
        return set(self._predecessors.get(predicate, ()))

    def edges(self) -> Iterator[tuple[str, str]]:
        """All (head, body) dependency edges."""
        for head, bodies in self._successors.items():
            for body in sorted(bodies):
                yield head, body

    def __contains__(self, predicate: object) -> bool:
        return predicate in self._successors

    def __len__(self) -> int:
        return len(self._successors)

    def reachable_from(self, *start: str) -> set[str]:
        """Predicates reachable (one or more edges) from any of ``start``.

        Matches the paper's definition: a predicate is not considered
        reachable from itself unless it lies on a cycle.
        """
        frontier = [s for s in start if s in self._successors]
        reached: set[str] = set()
        while frontier:
            node = frontier.pop()
            for successor in self._successors.get(node, ()):
                if successor not in reached:
                    reached.add(successor)
                    frontier.append(successor)
        return reached

    def transitive_closure(self) -> set[tuple[str, str]]:
        """All (from, to) pairs with ``to`` reachable from ``from``.

        This is the relation the testbed materialises as ``reachablepreds``
        (paper section 4.1).
        """
        return {
            (node, target)
            for node in self._successors
            for target in self.reachable_from(node)
        }

    def strongly_connected_components(self) -> list[set[str]]:
        """Tarjan's algorithm, iterative; components in reverse topological order.

        "Reverse topological" means every component appears before any
        component that depends on it — exactly the evaluation order the
        bottom-up strategy needs.
        """
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[set[str]] = []
        counter = 0

        for root in sorted(self._successors):
            if root in index_of:
                continue
            # Iterative Tarjan: work items are (node, iterator over successors).
            work: list[tuple[str, Iterator[str]]] = []
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(self._successors[root]))))
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index_of:
                        index_of[successor] = lowlink[successor] = counter
                        counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor, iter(sorted(self._successors[successor])))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def is_recursive(self, predicate: str) -> bool:
        """True when ``predicate`` is reachable from itself (paper section 2.2)."""
        return predicate in self.reachable_from(predicate)


@dataclass(frozen=True)
class Clique:
    """A clique in the paper's broad sense (section 2.2, Figure 3).

    A set of mutually recursive predicates together with the rules defining
    them, split into *recursive rules* (some body predicate is in the clique)
    and *exit rules* (no body predicate is in the clique).
    """

    predicates: frozenset[str]
    recursive_rules: tuple[Clause, ...]
    exit_rules: tuple[Clause, ...]

    @property
    def rules(self) -> tuple[Clause, ...]:
        """All defining rules, recursive first."""
        return self.recursive_rules + self.exit_rules

    def __str__(self) -> str:
        names = ", ".join(sorted(self.predicates))
        return (
            f"Clique({{{names}}}, {len(self.recursive_rules)} recursive, "
            f"{len(self.exit_rules)} exit)"
        )


def find_cliques(program: Program) -> list[Clique]:
    """Partition the recursive portion of ``program`` into cliques.

    Returns cliques in reverse topological (evaluation) order.  Predicates
    that are not recursive yield no clique; they are handled as plain
    non-recursive nodes of the evaluation graph.
    """
    pcg = PredicateConnectionGraph(program.rules)
    cliques: list[Clique] = []
    for component in pcg.strongly_connected_components():
        if len(component) == 1:
            predicate = next(iter(component))
            if predicate not in pcg.successors(predicate):
                continue  # not self-recursive: a plain predicate node
        recursive: list[Clause] = []
        exit_rules: list[Clause] = []
        for predicate in sorted(component):
            for clause in program.defining(predicate):
                if not clause.is_rule:
                    continue
                if any(a.predicate in component for a in clause.body):
                    recursive.append(clause)
                else:
                    exit_rules.append(clause)
        cliques.append(
            Clique(frozenset(component), tuple(recursive), tuple(exit_rules))
        )
    return cliques


def clique_of(predicate: str, cliques: Iterable[Clique]) -> Clique | None:
    """The clique containing ``predicate``, if any."""
    for clique in cliques:
        if predicate in clique.predicates:
            return clique
    return None
