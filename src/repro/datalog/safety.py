"""Safety (range-restriction) checking.

The paper lists "the safety check for recursive queries" as an open issue
(section 6); we implement the standard one.  A Datalog rule is *safe* when

* every head variable occurs in a positive body atom, and
* every variable of a negated body atom occurs in a positive body atom.

Safe rules always denote finite relations over a finite extensional database,
which is what lets the Code Generator translate them to SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..errors import SafetyError
from .clauses import Clause, Program
from .terms import Variable


@dataclass(frozen=True)
class SafetyViolation:
    """One unsafe rule with the variables that are not range-restricted.

    ``index`` is the clause's position in the checked program (entry order),
    when the violation came from a whole-program check — it gives error
    messages a locus the user can navigate to, not just a variable name.
    """

    clause: Clause
    unrestricted_head: tuple[Variable, ...]
    unrestricted_negated: tuple[Variable, ...]
    index: int | None = None

    @property
    def locus(self) -> str:
        """Which rule is unsafe: head predicate plus program position."""
        position = f" (rule #{self.index})" if self.index is not None else ""
        return f"rule defining {self.clause.head_predicate!r}{position}"

    def describe(self) -> str:
        """Human-readable explanation of the violation."""
        parts = []
        if self.unrestricted_head:
            names = ", ".join(v.name for v in self.unrestricted_head)
            parts.append(f"head variables not bound by a positive body atom: {names}")
        if self.unrestricted_negated:
            names = ", ".join(v.name for v in self.unrestricted_negated)
            parts.append(f"negated-atom variables not bound positively: {names}")
        return f"unsafe {self.locus}, {self.clause}: " + "; ".join(parts)


def check_clause(clause: Clause) -> SafetyViolation | None:
    """Check one clause; return a violation or ``None`` when safe."""
    positive_vars = {
        v for atom in clause.body if not atom.negated for v in atom.variables
    }
    bad_head = tuple(
        v for v in clause.head.variables if v not in positive_vars
    )
    bad_negated_ordered: dict[Variable, None] = {}
    for atom in clause.body:
        if atom.negated:
            for v in atom.variables:
                if v not in positive_vars:
                    bad_negated_ordered.setdefault(v, None)
    bad_negated = tuple(bad_negated_ordered)
    if not bad_head and not bad_negated:
        return None
    return SafetyViolation(clause, bad_head, bad_negated)


def violations(clauses: Iterable[Clause]) -> list[SafetyViolation]:
    """All safety violations among ``clauses``, with their entry positions."""
    found = []
    for index, clause in enumerate(clauses):
        violation = check_clause(clause)
        if violation is not None:
            found.append(replace(violation, index=index))
    return found


def check_program(program: Program) -> None:
    """Raise on the first unsafe rule of ``program``.

    Raises:
        SafetyError: describing every violation found.
    """
    found = violations(program)
    if found:
        raise SafetyError("; ".join(v.describe() for v in found))


def is_safe(clause: Clause) -> bool:
    """True when ``clause`` passes the safety check."""
    return check_clause(clause) is None
