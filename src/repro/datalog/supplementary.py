"""Supplementary magic sets rewriting (paper section 2.5, reference [8]).

Plain magic rules re-evaluate the join prefix ``b1, ..., b_{i-1}`` of a rule
once per derived body atom, and the modified rule evaluates the full body
again.  The *supplementary* variant materialises each prefix exactly once in
a supplementary predicate ``sup_k_i`` (rule ``k``, after body atom ``i``)
and chains everything off those:

    sup_k_0(V0)  :- m_h(bound head vars)
    sup_k_i(Vi)  :- sup_k_{i-1}(V_{i-1}), b_i'          (1 <= i < n)
    m_bi(bound)  :- sup_k_{i-1}(V_{i-1})                 (derived b_i)
    h(head)      :- sup_k_{n-1}(V_{n-1}), b_n'           (modified rule)

where ``Vi`` keeps exactly the variables still needed by later atoms or the
head — the textbook projection that makes supplementary predicates narrow.

The rewriting consumes an adorned rule set (same front end as
:mod:`repro.datalog.magic`), so the two methods are drop-in alternatives for
the Optimizer and can be compared by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizationError
from .adornment import BOUND, AdornedProgram, adorn_program, bound_terms, split_adorned_name
from .clauses import Clause, Program, Query
from .magic import magic_name
from .terms import Atom, Constant, Variable

SUPPLEMENTARY_PREFIX = "sup_"


def supplementary_name(rule_index: int, atom_index: int) -> str:
    """Name of the supplementary predicate after atom ``atom_index``."""
    return f"{SUPPLEMENTARY_PREFIX}{rule_index}_{atom_index}"


def is_supplementary_name(name: str) -> bool:
    """True for names produced by :func:`supplementary_name`."""
    return name.startswith(SUPPLEMENTARY_PREFIX)


@dataclass(frozen=True)
class SupplementaryProgram:
    """The output of the supplementary magic sets transformation.

    Mirrors :class:`repro.datalog.magic.MagicProgram`: ``rules`` holds the
    supplementary, magic, and modified rules together (they are mutually
    dependent by construction, so there is no separable two-phase split);
    ``seed`` is the query's magic seed fact; ``goal`` the adorned query goal.
    """

    rules: Program
    seed: Clause
    goal: Atom
    adorned: AdornedProgram
    supplementary_arities: dict[str, int]


def supplementary_rewrite(
    rules: Program, query: Query, derived_predicates: set[str]
) -> SupplementaryProgram:
    """Apply supplementary magic sets to ``rules`` for ``query``.

    Raises:
        OptimizationError: when the query has no constants, or a rule needs
            a magic constraint that no supplementary prefix can provide (an
            all-free head with a variable-bound first atom — unreachable
            from a bound query through the left-to-right SIP).
    """
    adorned = adorn_program(rules, query, derived_predicates)
    goal = query.goals[0]
    if not any(isinstance(t, Constant) for t in goal.terms):
        raise OptimizationError(
            f"query goal {goal} has no constants; supplementary magic sets "
            "cannot restrict the computation"
        )

    output = Program()
    arities: dict[str, int] = {}
    for rule_index, clause in enumerate(adorned.rules):
        _rewrite_rule(clause, rule_index, output, arities)

    __, goal_adornment = split_adorned_name(adorned.query_goal.predicate)
    seed_atom = Atom(
        magic_name(adorned.query_goal.predicate),
        bound_terms(adorned.query_goal, goal_adornment),
    )
    return SupplementaryProgram(
        output, Clause(seed_atom), adorned.query_goal, adorned, arities
    )


def _rewrite_rule(
    clause: Clause, rule_index: int, output: Program, arities: dict[str, int]
) -> None:
    """Emit the supplementary/magic/modified rules for one adorned rule.

    The *prefix* is carried as a small conjunction of atoms — normally just
    the latest supplementary predicate.  When a supplementary predicate
    would be nullary (nothing known is needed later — e.g. all bindings are
    constants), it is skipped and the contributing atoms simply stay in the
    prefix conjunction, preserving the rewriting's semantics without
    zero-column relations.
    """
    __, adornment = split_adorned_name(clause.head_predicate)
    bound_head_vars: list[Variable] = []
    for term, letter in zip(clause.head.terms, adornment):
        if letter == BOUND and isinstance(term, Variable):
            if term not in bound_head_vars:
                bound_head_vars.append(term)

    body = clause.body
    head_vars = set(clause.head.variables)

    def needed_after(index: int) -> set[Variable]:
        needed = set(head_vars)
        for atom in body[index:]:
            needed.update(atom.variables)
        return needed

    known_vars: set[Variable] = set(bound_head_vars)
    prefix: list[Atom] = []
    if any(letter == BOUND for letter in adornment):
        prefix = [
            Atom(
                magic_name(clause.head_predicate),
                bound_terms(clause.head, adornment),
            )
        ]
        prefix = _fold_into_supplementary(
            prefix, known_vars, needed_after(0), rule_index, 0, output, arities
        )

    for index, atom in enumerate(body):
        if _is_adorned(atom):
            # Magic rule: the callee's bindings come from the prefix so far.
            __, atom_adornment = split_adorned_name(atom.predicate)
            magic_args = bound_terms(atom, atom_adornment)
            if magic_args:
                magic_head = Atom(magic_name(atom.predicate), magic_args)
                if prefix:
                    output.add(Clause(magic_head, tuple(prefix)))
                elif all(isinstance(t, Constant) for t in magic_args):
                    output.add(Clause(magic_head))  # constant bindings
                else:
                    raise OptimizationError(
                        f"cannot derive magic bindings for {atom} in "
                        f"{clause}: no supplementary prefix is available"
                    )
        if index == len(body) - 1:
            output.add(Clause(clause.head, tuple(prefix + [atom])))
        else:
            known_vars |= set(atom.variables)
            prefix = _fold_into_supplementary(
                prefix + [atom],
                known_vars,
                needed_after(index + 1),
                rule_index,
                index + 1,
                output,
                arities,
            )


def _fold_into_supplementary(
    conjunction: list[Atom],
    known_vars: set[Variable],
    needed: set[Variable],
    rule_index: int,
    atom_index: int,
    output: Program,
    arities: dict[str, int],
) -> list[Atom]:
    """Materialise ``conjunction`` as a supplementary predicate when possible.

    Returns the new prefix: ``[sup_k_i(columns)]`` normally, or the original
    conjunction unchanged when the projection would be nullary.
    """
    columns = sorted(
        (v for v in known_vars if v in needed), key=lambda v: v.name
    )
    if not columns:
        return conjunction
    head = Atom(supplementary_name(rule_index, atom_index), tuple(columns))
    arities[head.predicate] = len(columns)
    output.add(Clause(head, tuple(conjunction)))
    return [head]


def _is_adorned(atom: Atom) -> bool:
    if atom.negated:
        return False
    try:
        split_adorned_name(atom.predicate)
    except ValueError:
        return False
    return True
