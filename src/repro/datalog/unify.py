"""Substitutions and unification over function-free terms.

Unification in Datalog is simple (no occurs-check is needed because there are
no function symbols) but it is still the workhorse of the top-down evaluator
and of several static analyses (e.g. deciding whether a stored rule can
contribute to a goal).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .terms import Atom, Constant, Term, Variable

__all__ = [
    "Substitution",
    "apply_substitution",
    "compose",
    "is_ground_under",
    "match",
    "match_atom_oneway",
    "unify_atoms",
    "unify_terms",
    "variables_of",
    "walk",
]

Substitution = dict[Variable, Term]


def walk(term: Term, substitution: Mapping[Variable, Term]) -> Term:
    """Follow variable bindings in ``substitution`` until a fixed point.

    With function-free terms chains are short, but chained variable-to-variable
    bindings do occur during unification, so we resolve them fully.
    """
    while isinstance(term, Variable) and term in substitution:
        term = substitution[term]
    return term


def unify_terms(
    left: Term, right: Term, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two terms, extending ``substitution``; ``None`` on failure.

    The input substitution is never mutated; a new dict is returned on
    success.
    """
    subst: Substitution = dict(substitution or {})
    left = walk(left, subst)
    right = walk(right, subst)
    if isinstance(left, Variable):
        if left != right:
            subst[left] = right
        return subst
    if isinstance(right, Variable):
        subst[right] = left
        return subst
    if isinstance(left, Constant) and isinstance(right, Constant):
        return subst if left.value == right.value else None
    return None


def unify_atoms(
    left: Atom, right: Atom, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two atoms of the same predicate and arity; ``None`` on failure."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    if left.negated != right.negated:
        return None
    subst: Optional[Substitution] = dict(substitution or {})
    for l_term, r_term in zip(left.terms, right.terms):
        subst = unify_terms(l_term, r_term, subst)
        if subst is None:
            return None
    return subst


def apply_substitution(atom: Atom, substitution: Mapping[Variable, Term]) -> Atom:
    """Apply ``substitution`` to ``atom``, resolving binding chains."""
    terms = tuple(
        walk(t, substitution) if isinstance(t, Variable) else t for t in atom.terms
    )
    return Atom(atom.predicate, terms, negated=atom.negated)


def compose(
    outer: Mapping[Variable, Term], inner: Mapping[Variable, Term]
) -> Substitution:
    """The substitution equivalent to applying ``inner`` then ``outer``."""
    composed: Substitution = {}
    for var, term in inner.items():
        composed[var] = walk(term, outer) if isinstance(term, Variable) else term
    for var, term in outer.items():
        composed.setdefault(var, term)
    return composed


def is_ground_under(atom: Atom, substitution: Mapping[Variable, Term]) -> bool:
    """True when applying ``substitution`` leaves no variables in ``atom``."""
    return apply_substitution(atom, substitution).is_ground


def match(pattern: Atom, ground: Atom) -> Optional[Substitution]:
    """One-way matching: bind ``pattern`` variables so it equals ``ground``.

    Unlike unification this never binds variables of ``ground`` (which must be
    a ground atom).  Used when filtering facts against a goal.
    """
    if not ground.is_ground:
        raise ValueError(f"match target {ground} is not ground")
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    subst: Substitution = {}
    for p_term, g_term in zip(pattern.terms, ground.terms):
        if isinstance(p_term, Constant):
            if p_term.value != g_term.value:  # type: ignore[union-attr]
                return None
        else:
            bound = subst.get(p_term)
            if bound is None:
                subst[p_term] = g_term
            elif bound != g_term:
                return None
    return subst


def match_atom_oneway(
    pattern: Atom, target: Atom, binding: Mapping[Variable, Term]
) -> Optional[Substitution]:
    """One-way matching where the target may itself contain variables.

    Only ``pattern``'s variables are bound; the target's variables are
    treated as inert symbols (the standard matching used by
    theta-subsumption).  Returns an extension of ``binding`` or ``None``.
    """
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    if pattern.negated != target.negated:
        return None
    result: Substitution = dict(binding)
    for p_term, t_term in zip(pattern.terms, target.terms):
        if isinstance(p_term, Constant):
            if p_term != t_term:
                return None
        else:
            bound = result.get(p_term)
            if bound is None:
                result[p_term] = t_term
            elif bound != t_term:
                return None
    return result


def variables_of(atoms: Iterable[Atom]) -> set[Variable]:
    """The set of variables occurring in ``atoms``."""
    return {v for atom in atoms for v in atom.variables}
