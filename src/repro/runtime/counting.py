"""The counting method (paper section 2.5, reference [9]) as a special operator.

Counting refines magic sets for *linear* rules of the canonical form

    p(X, Y) :- flat(X, Y).
    p(X, Y) :- up(X, U), p(U, V), down(V, Y).

(with the degenerate ancestor form ``p(X, Y) :- e(X, Z), p(Z, Y)`` treated
as ``up = e``, ``down = identity``).  Where the magic set only remembers
*which* nodes are relevant, counting remembers *how many* ``up`` steps away
each one is, so the answer phase applies ``down`` exactly the right number
of times — no joins against the full magic set.

Counting is unsafe on cyclic ``up`` graphs (the counts never converge); the
operator detects the cycle and raises, which is why the testbed keeps it as
a *special* operator in the sense of the paper's conclusion 8 rather than a
default rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.clauses import Clause, Program
from ..datalog.terms import Variable
from ..dbms.engine import Database
from ..dbms.schema import quote_identifier
from ..errors import EvaluationError
from ..obs.trace import NULL_TRACER, NullTracer, Tracer


@dataclass(frozen=True)
class CountingForm:
    """A recognised counting-evaluable predicate definition."""

    predicate: str
    up: str
    flat: str
    down: str | None  # None for the ancestor (identity-down) form

    @property
    def is_ancestor_form(self) -> bool:
        """True for the degenerate linear form without a ``down`` relation."""
        return self.down is None


def recognize_counting_form(
    program: Program, predicate: str
) -> CountingForm | None:
    """Match ``predicate``'s definition against the canonical counting forms.

    Returns ``None`` when the definition is not exactly one exit rule
    ``p(X, Y) :- flat(X, Y).`` plus one recursive rule of the
    same-generation or ancestor shape.
    """
    rules = [c for c in program.defining(predicate) if c.is_rule]
    if len(rules) != 2:
        return None
    exits = [c for c in rules if predicate not in c.body_predicates]
    recursives = [c for c in rules if predicate in c.body_predicates]
    if len(exits) != 1 or len(recursives) != 1:
        return None

    flat = _match_exit(exits[0])
    if flat is None:
        return None
    return _match_recursive(recursives[0], predicate, flat)


def _match_exit(clause: Clause) -> str | None:
    """``p(X, Y) :- flat(X, Y).`` with distinct head variables."""
    head = clause.head
    if len(clause.body) != 1 or head.arity != 2:
        return None
    x, y = head.terms
    if not isinstance(x, Variable) or not isinstance(y, Variable) or x == y:
        return None
    body = clause.body[0]
    if body.negated or body.terms != (x, y):
        return None
    return body.predicate


def _match_recursive(
    clause: Clause, predicate: str, flat: str
) -> CountingForm | None:
    head = clause.head
    if head.arity != 2:
        return None
    x, y = head.terms
    if not isinstance(x, Variable) or not isinstance(y, Variable) or x == y:
        return None
    body = [a for a in clause.body if not a.negated]
    if len(body) != len(clause.body):
        return None

    if len(body) == 2:
        # p(X, Y) :- up(X, Z), p(Z, Y).  -- ancestor form
        up, recursive = body
        if recursive.predicate != predicate or up.predicate == predicate:
            return None
        if up.terms[0] != x or recursive.terms[1] != y:
            return None
        z = up.terms[1]
        if not isinstance(z, Variable) or recursive.terms[0] != z:
            return None
        return CountingForm(predicate, up.predicate, flat, None)

    if len(body) == 3:
        # p(X, Y) :- up(X, U), p(U, V), down(V, Y).
        up, recursive, down = body
        if recursive.predicate != predicate:
            return None
        if up.predicate == predicate or down.predicate == predicate:
            return None
        if up.terms[0] != x or down.terms[1] != y:
            return None
        u, v = recursive.terms
        if up.terms[1] != u or down.terms[0] != v:
            return None
        if not isinstance(u, Variable) or not isinstance(v, Variable):
            return None
        return CountingForm(predicate, up.predicate, flat, down.predicate)
    return None


@dataclass(frozen=True)
class CountingResult:
    """Answers plus the phase statistics of one counting evaluation."""

    rows: set[tuple]
    up_iterations: int
    down_iterations: int


def evaluate_counting(
    database: Database,
    form: CountingForm,
    table_of: dict[str, str],
    constant: object,
    tracer: "Tracer | NullTracer | None" = None,
) -> CountingResult:
    """Evaluate ``form.predicate(constant, Y)`` by the counting method.

    Args:
        database: the DBMS connection.
        form: a recognised counting form.
        table_of: physical table per base predicate (``up``/``flat``/``down``).
        constant: the bound first argument of the query.
        tracer: optional observability sink; the up/down phases become spans.

    Raises:
        EvaluationError: when the ``up`` relation is cyclic below the
            constant (counting does not terminate there — the documented
            limitation of the method).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    up_table = quote_identifier(table_of[form.up])
    flat_table = quote_identifier(table_of[form.flat])

    counts = "cnt_counting"
    answers = "ans_counting"
    for name in (counts, answers):
        database.drop_relation(name)
    database.execute(
        f"CREATE TEMPORARY TABLE {counts} "
        "(c0 INTEGER, c1, PRIMARY KEY (c0, c1)) WITHOUT ROWID"
    )
    database.execute(
        f"CREATE TEMPORARY TABLE {answers} "
        "(c0 INTEGER, c1, PRIMARY KEY (c0, c1)) WITHOUT ROWID"
    )

    # Phase 1 — count up: level i holds the nodes i `up`-steps from the
    # constant.  A level exceeding the number of distinct nodes means a cycle.
    with tracer.span("count_up", category="counting") as up_span:
        database.execute(
            f"INSERT INTO {counts} VALUES (0, ?)", (constant,)
        )
        node_bound = int(
            database.execute(
                f"SELECT COUNT(*) FROM "
                f"(SELECT c0 FROM {up_table} UNION SELECT c1 FROM {up_table})"
            )[0][0]
        ) + 1
        level = 0
        while True:
            database.execute(
                f"INSERT OR IGNORE INTO {counts} "
                f"SELECT ? + 1, u.c1 FROM {counts} AS c, {up_table} AS u "
                f"WHERE c.c0 = ? AND u.c0 = c.c1",
                (level, level),
            )
            produced = int(
                database.execute(
                    f"SELECT COUNT(*) FROM {counts} WHERE c0 = ?", (level + 1,)
                )[0][0]
            )
            if not produced:
                break
            level += 1
            if level > node_bound:
                for name in (counts, answers):
                    database.drop_relation(name)
                raise EvaluationError(
                    f"counting does not terminate: relation {form.up!r} is "
                    "cyclic below the query constant"
                )
        max_level = level
        up_span.set("levels", max_level)

    # Phase 2 — flat across, then count down.
    down_iterations = 0
    with tracer.span("count_down", category="counting") as down_span:
        if form.down is None:
            # Ancestor form (up == flat, down == identity): the answers are
            # exactly the nodes counted at level >= 1.
            database.execute(
                f"INSERT OR IGNORE INTO {answers} "
                f"SELECT 0, c1 FROM {counts} WHERE c0 > 0"
            )
        else:
            database.execute(
                f"INSERT OR IGNORE INTO {answers} "
                f"SELECT c.c0, f.c1 FROM {counts} AS c, {flat_table} AS f "
                f"WHERE f.c0 = c.c1"
            )
            down_table = quote_identifier(table_of[form.down])
            for current in range(max_level, 0, -1):
                down_iterations += 1
                database.execute(
                    f"INSERT OR IGNORE INTO {answers} "
                    f"SELECT ? - 1, d.c1 FROM {answers} AS a, {down_table} AS d "
                    f"WHERE a.c0 = ? AND d.c0 = a.c1",
                    (current, current),
                )
        down_span.set("iterations", down_iterations)

    rows = {
        (value,)
        for (value,) in database.execute(
            f"SELECT DISTINCT c1 FROM {answers} WHERE c0 = 0"
        )
    }
    for name in (counts, answers):
        database.drop_relation(name)
    return CountingResult(rows, max_level, down_iterations)


def counting_applies(program: Program, predicate: str) -> bool:
    """Whether :func:`evaluate_counting` can answer queries on ``predicate``."""
    return recognize_counting_form(program, predicate) is not None
