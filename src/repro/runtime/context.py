"""Shared evaluation state for the Run Time Library.

An :class:`EvaluationContext` tracks, for one query execution, where each
predicate's tuples live (base relations, materialised derived relations,
temporaries), what the column types are, and the counters the experiment
harness reads (LFP iterations per clique, tuples produced).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import ContextManager, Mapping, Sequence

from ..dbms.advisor import advise_clique_indexes, apply_index_advice
from ..dbms.engine import Database
from ..dbms.schema import RelationSchema
from ..dbms.sqlgen import CompiledSelect
from ..errors import EvaluationError
from ..obs.trace import NULL_TRACER, NullTracer, Tracer

DERIVED_TABLE_PREFIX = "d_"

# Phase names shared by the evaluation strategies so Test 6's breakdown can
# compare naive and semi-naive like-for-like.
PHASE_TEMP_TABLES = "temp_tables"
PHASE_RHS_EVAL = "rhs_eval"
PHASE_TERMINATION = "termination"


def derived_table_name(predicate: str) -> str:
    """Physical table name for a materialised derived predicate."""
    return f"{DERIVED_TABLE_PREFIX}{predicate}"


@dataclass(frozen=True)
class FastPathConfig:
    """Switches for the fast-path execution layer (all off by default).

    The seed implementation pays exactly the costs the paper's Test 6
    dissects; each switch removes one of them, so the A/B benchmarks can
    attribute the speedup:

    * ``batch_iterations`` — wrap each LFP iteration in one explicit
      transaction (:meth:`repro.dbms.engine.Database.transaction`) instead
      of autocommit-per-statement.
    * ``reuse_scratch_tables`` — allocate the per-iteration scratch/delta
      relations once, before the loop, and clear them with ``DELETE``
      instead of re-running ``CREATE``/``DROP`` every iteration.  Stable
      table names also keep the rendered SQL text identical across
      iterations, which is what lets the prepared-statement cache hit.
    * ``advise_indexes`` — run the index advisor
      (:mod:`repro.dbms.advisor`) over the clique's compiled SELECTs before
      the loop and index the derived relations' join columns.
    * ``lfp_cte`` — evaluate each qualifying clique (single-predicate,
      linear, negation-free) as one ``WITH RECURSIVE`` statement inside the
      DBMS (:mod:`repro.runtime.lfp_cte`), falling back to the configured
      iteration loop otherwise.  Unlike the three physical-level switches
      above, this changes the statement stream and the iteration counters
      (an eligible clique reports one iteration), so it is *not* part of
      :meth:`enabled` — the CTE-vs-loop A/B turns it on explicitly.
    """

    batch_iterations: bool = False
    reuse_scratch_tables: bool = False
    advise_indexes: bool = False
    lfp_cte: bool = False

    @classmethod
    def enabled(cls) -> "FastPathConfig":
        """Every statement-stream-preserving fast-path feature on."""
        return cls(True, True, True)

    @classmethod
    def disabled(cls) -> "FastPathConfig":
        """The seed behaviour (every feature off)."""
        return cls()

    def __bool__(self) -> bool:
        return (
            self.batch_iterations
            or self.reuse_scratch_tables
            or self.advise_indexes
            or self.lfp_cte
        )


@dataclass
class EvaluationCounters:
    """Logical counters accumulated during one query execution."""

    iterations_by_clique: dict[str, int] = field(default_factory=dict)
    tuples_by_predicate: dict[str, int] = field(default_factory=dict)
    # Clique label -> how it was actually evaluated: "lfp_cte" when the
    # recursive-CTE fast path ran, "fallback: <reason>" when it declined.
    # Only filled in by strategies that make such a choice.
    strategy_by_clique: dict[str, str] = field(default_factory=dict)

    @property
    def total_iterations(self) -> int:
        """LFP iterations summed over all cliques."""
        return sum(self.iterations_by_clique.values())

    @property
    def total_tuples(self) -> int:
        """Materialised tuples summed over all derived predicates."""
        return sum(self.tuples_by_predicate.values())


class EvaluationContext:
    """Mutable bookkeeping for one query execution against one database."""

    def __init__(
        self,
        database: Database,
        table_of: Mapping[str, str],
        types_of: Mapping[str, tuple[str, ...]],
        seed_rows: Mapping[str, tuple[tuple, ...]] | None = None,
        fastpath: FastPathConfig | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ):
        self.database = database
        # Observability sink for the evaluation strategies; NULL_TRACER when
        # tracing is off, so strategy code needs no None checks.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._table_of: dict[str, str] = dict(table_of)
        self._types_of: dict[str, tuple[str, ...]] = dict(types_of)
        # Ground tuples to pre-load into derived relations — how the magic
        # seed fact (the query bindings) enters the fixed-point computation.
        self.seed_rows: dict[str, tuple[tuple, ...]] = dict(seed_rows or {})
        self.fastpath = fastpath if fastpath is not None else FastPathConfig()
        self.counters = EvaluationCounters()
        self._materialised: list[str] = []
        self._seeded: set[str] = set()

    def table_of(self, predicate: str) -> str:
        """Physical table holding ``predicate``'s tuples.

        Raises:
            EvaluationError: when the predicate has not been materialised.
        """
        try:
            return self._table_of[predicate]
        except KeyError:
            raise EvaluationError(
                f"predicate {predicate!r} has no materialised relation"
            ) from None

    def has_table(self, predicate: str) -> bool:
        """Whether ``predicate`` already has a relation."""
        return predicate in self._table_of

    def types_of(self, predicate: str) -> tuple[str, ...]:
        """Column types of ``predicate``.

        Raises:
            EvaluationError: when the types are unknown.
        """
        try:
            return self._types_of[predicate]
        except KeyError:
            raise EvaluationError(
                f"predicate {predicate!r} has no known column types"
            ) from None

    def register_types(self, predicate: str, types: tuple[str, ...]) -> None:
        """Record the column types of a predicate."""
        self._types_of[predicate] = types

    def materialise(self, predicate: str) -> str:
        """Create an (empty) result relation for a derived predicate.

        Idempotent: returns the existing table when already materialised.
        """
        if predicate in self._table_of:
            return self._table_of[predicate]
        name = derived_table_name(predicate)
        schema = RelationSchema(name, self.types_of(predicate))
        self.database.drop_relation(name)
        self.database.create_relation(schema)
        self._table_of[predicate] = name
        self._materialised.append(name)
        return name

    def insert_seed_rows(self, predicate: str) -> int:
        """Insert the predicate's seed tuples into its relation, once."""
        rows = self.seed_rows.get(predicate)
        if not rows or predicate in self._seeded:
            return 0
        self._seeded.add(predicate)
        schema = RelationSchema(self.table_of(predicate), self.types_of(predicate))
        return self.database.insert_rows(schema, rows)

    def adopt_table(self, predicate: str, name: str) -> None:
        """Register an externally created relation for ``predicate``.

        The table participates in :meth:`cleanup` like a materialised one.
        Used by evaluation strategies that manage their own storage layout
        (e.g. the keyed relations of the in-DBMS LFP operator).
        """
        self._table_of[predicate] = name
        self._materialised.append(name)

    def schema_of(self, predicate: str) -> RelationSchema:
        """Schema of ``predicate``'s current relation."""
        return RelationSchema(self.table_of(predicate), self.types_of(predicate))

    def record_result_size(self, predicate: str) -> int:
        """Count and record the materialised size of ``predicate``."""
        count = self.database.row_count(self.table_of(predicate))
        self.counters.tuples_by_predicate[predicate] = count
        return count

    def iteration_scope(self) -> ContextManager[None]:
        """Transaction scope for one LFP iteration.

        An explicit transaction when the fast path batches iterations, a
        no-op otherwise — so the strategies can wrap every iteration body
        unconditionally.
        """
        if self.fastpath.batch_iterations:
            return self.database.transaction()
        return contextlib.nullcontext()

    def create_advised_indexes(
        self, selects: Sequence[CompiledSelect], predicates: Sequence[str]
    ) -> int:
        """Run the index advisor over a clique (no-op unless enabled).

        Creates the advised indexes on the clique predicates' result
        relations and returns how many; the caller attributes the CREATE
        INDEX statements to whatever phase is active.
        """
        if not self.fastpath.advise_indexes:
            return 0
        advice = advise_clique_indexes(
            selects,
            predicates,
            self.table_of,
            lambda p: len(self.types_of(p)),
        )
        return apply_index_advice(self.database, advice)

    def cleanup(self) -> None:
        """Drop every relation materialised through this context."""
        for name in self._materialised:
            self.database.drop_relation(name)
        self._materialised.clear()
