"""Specialised transitive-closure operators (paper conclusion #8).

The paper recommends that, besides a general LFP operator, the DBMS interface
offer *special* operators — transitive closure above all — because they can
be optimised beyond what a generic fixed-point evaluator achieves.  Two
implementations are provided:

* :func:`transitive_closure_sql` pushes the whole computation into a single
  ``WITH RECURSIVE`` statement, the modern DBMS-native equivalent;
* :func:`transitive_closure_python` is the in-memory version used by the
  Stored D/KB manager on the PCG (small graphs, no SQL round-trips).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..dbms.engine import Database
from ..dbms.schema import quote_identifier
from ..obs.trace import NULL_TRACER, NullTracer, Tracer


def transitive_closure_sql(
    database: Database,
    edge_table: str,
    target_table: str,
    source_value: object | None = None,
    tracer: "Tracer | NullTracer | None" = None,
) -> int:
    """Materialise the transitive closure of a binary relation via SQL.

    Args:
        database: the DBMS connection.
        edge_table: binary relation (columns ``c0``, ``c1``) to close.
        target_table: receives the closure pairs; created fresh.
        source_value: when given, restrict to pairs reachable from this
            source — the goal-directed variant a magic-sets rewrite would
            produce.
        tracer: optional observability sink; the operator becomes one span.

    Returns:
        Number of closure tuples produced.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span(
        "transitive_closure", category="operator", edges=edge_table
    ) as span:
        count = _closure_into(database, edge_table, target_table, source_value)
        span.set("tuples", count)
    return count


def _closure_into(
    database: Database,
    edge_table: str,
    target_table: str,
    source_value: object | None,
) -> int:
    database.drop_relation(target_table)
    edges = quote_identifier(edge_table)
    target = quote_identifier(target_table)
    if source_value is None:
        database.execute(
            f"CREATE TABLE {target} AS "
            f"WITH RECURSIVE closure(c0, c1) AS ("
            f"  SELECT c0, c1 FROM {edges}"
            f"  UNION "
            f"  SELECT closure.c0, {edges}.c1 FROM closure, {edges} "
            f"  WHERE closure.c1 = {edges}.c0"
            f") SELECT c0, c1 FROM closure"
        )
    else:
        database.execute(
            f"CREATE TABLE {target} AS "
            f"WITH RECURSIVE closure(c0, c1) AS ("
            f"  SELECT c0, c1 FROM {edges} WHERE c0 = ?"
            f"  UNION "
            f"  SELECT closure.c0, {edges}.c1 FROM closure, {edges} "
            f"  WHERE closure.c1 = {edges}.c0"
            f") SELECT c0, c1 FROM closure",
            (source_value,),
        )
    return database.row_count(target_table)


def transitive_closure_python(
    edges: Iterable[tuple[Hashable, Hashable]],
) -> set[tuple[Hashable, Hashable]]:
    """Transitive closure of an edge set, in memory.

    Uses per-node reachability DFS over an adjacency index; suitable for the
    rule-base PCGs the Stored D/KB manager maintains (hundreds of nodes).
    """
    successors: dict[Hashable, set[Hashable]] = {}
    for source, target in edges:
        successors.setdefault(source, set()).add(target)

    closure: set[tuple[Hashable, Hashable]] = set()
    for start in successors:
        frontier = list(successors[start])
        reached: set[Hashable] = set()
        while frontier:
            node = frontier.pop()
            if node in reached:
                continue
            reached.add(node)
            frontier.extend(successors.get(node, ()))
        closure.update((start, node) for node in reached)
    return closure


def incremental_closure_update(
    existing: set[tuple[Hashable, Hashable]],
    new_edges: Iterable[tuple[Hashable, Hashable]],
) -> set[tuple[Hashable, Hashable]]:
    """Pairs to add to ``existing`` when ``new_edges`` join the graph.

    This is the incremental computation of the stored-D/KB update algorithm
    (paper section 4.3): rather than recomputing the closure of the whole
    rule base, only paths through a new edge are added.  For each new edge
    ``(u, v)``: everything that reached ``u`` now also reaches ``v`` and
    whatever ``v`` reaches.

    Returns only the *new* pairs (disjoint from ``existing``).
    """
    closure = set(existing)
    added: set[tuple[Hashable, Hashable]] = set()
    pending = list(new_edges)
    while pending:
        source, target = pending.pop()
        if (source, target) in closure:
            continue
        reaches_source = {x for (x, y) in closure if y == source}
        reaches_source.add(source)
        reached_from_target = {y for (x, y) in closure if x == target}
        reached_from_target.add(target)
        for left in reaches_source:
            for right in reached_from_target:
                pair = (left, right)
                if pair not in closure:
                    closure.add(pair)
                    added.add(pair)
    return added


def reachable_from(
    closure: Iterable[tuple[Hashable, Hashable]], sources: Iterable[Hashable]
) -> set[Hashable]:
    """Nodes reachable from any of ``sources`` according to a closure set."""
    wanted = set(sources)
    return {target for source, target in closure if source in wanted}
