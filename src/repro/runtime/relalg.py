"""Evaluation of non-recursive derived predicates.

Bottom-up evaluation of a non-recursive predicate "is equivalent to computing
a relational algebra expression" (paper section 2.4): one project-select-join
SELECT per defining rule, unioned into the predicate's result relation with
duplicate elimination.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..datalog.clauses import Clause
from ..dbms.sqlgen import CompiledSelect, compile_rule_body, insert_new_tuples_sql
from .context import EvaluationContext


def evaluate_rule_into(
    context: EvaluationContext,
    target_predicate: str,
    compiled: CompiledSelect,
    overrides: dict[int, str] | None = None,
) -> int:
    """Run one compiled rule body, inserting new tuples into the target.

    Args:
        context: evaluation state (tables, types, counters).
        target_predicate: the head predicate whose relation receives tuples.
        compiled: the rule body compiled by
            :func:`repro.dbms.sqlgen.compile_rule_body`.
        overrides: optional map from positive-body-atom index to a table name
            that should replace the predicate's default relation — how
            semi-naive evaluation points one occurrence at a delta relation.

    Returns:
        Number of genuinely new tuples inserted.
    """
    overrides = overrides or {}
    tables: list[str] = []
    for index, predicate in enumerate(compiled.table_slots):
        tables.append(overrides.get(index, context.table_of(predicate)))
    select = compiled.render(tables)
    target = context.table_of(target_predicate)
    arity = len(context.types_of(target_predicate))
    sql = insert_new_tuples_sql(target, select, arity)
    before = context.database.row_count(target)
    context.database.execute(sql, compiled.parameters)
    return context.database.row_count(target) - before


def evaluate_nonrecursive(
    context: EvaluationContext, predicate: str, rules: Sequence[Clause]
) -> int:
    """Materialise a non-recursive derived predicate from its rules.

    The predicate's relation must not depend on itself; the evaluation order
    list guarantees all body predicates are already materialised.

    Returns:
        The number of tuples in the result relation.
    """
    context.materialise(predicate)
    context.insert_seed_rows(predicate)
    for clause in rules:
        compiled = compile_rule_body(clause)
        evaluate_rule_into(context, predicate, compiled)
    return context.record_result_size(predicate)


def compile_rules(rules: Iterable[Clause]) -> list[tuple[Clause, CompiledSelect]]:
    """Compile several rules, pairing each with its SELECT."""
    return [(clause, compile_rule_body(clause)) for clause in rules]
