"""Query program execution: interpreting the evaluation order list.

The Code Generator emits a :class:`QueryProgram` — the Python analogue of the
paper's C program fragment, holding "information similar to the nodes of the
evaluation order graph" (section 3.2.6): per node, the predicate names,
schema information, and the SQL query per defining rule, with clique nodes
distinguishing exit from recursive rules.  Executing the program walks the
evaluation order list, materialising each node bottom-up, then reads the
answer relation.
"""

from __future__ import annotations

import enum
import functools
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..datalog.clauses import Query
from ..datalog.evalgraph import EvaluationNode, PredicateNode
from ..datalog.pcg import Clique
from ..dbms.catalog import ExtensionalCatalog, fact_table_name
from ..dbms.engine import Database
from ..dbms.sqlgen import compile_rule_body
from ..errors import EvaluationError
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .context import EvaluationContext, FastPathConfig
from .lfp import evaluate_clique_lfp_operator
from .lfp_cte import evaluate_clique_lfp_cte
from .naive import LfpResult, evaluate_clique_naive
from .relalg import evaluate_nonrecursive
from .seminaive import evaluate_clique_seminaive


class LfpStrategy(enum.Enum):
    """Which LFP evaluation the run-time library uses for clique nodes."""

    NAIVE = "naive"
    SEMINAIVE = "seminaive"
    # Extension (paper conclusion #6): a generalized LFP operator inside the
    # DBMS, avoiding per-iteration temp tables and full set differences.
    LFP_OPERATOR = "lfp_operator"
    # Extension: the whole fixpoint as one recursive-CTE statement when the
    # clique qualifies (linear, single-predicate, negation-free); falls back
    # to semi-naive iteration otherwise.
    LFP_CTE = "lfp_cte"


_CLIQUE_EVALUATORS = {
    LfpStrategy.NAIVE: evaluate_clique_naive,
    LfpStrategy.SEMINAIVE: evaluate_clique_seminaive,
    LfpStrategy.LFP_OPERATOR: evaluate_clique_lfp_operator,
    LfpStrategy.LFP_CTE: evaluate_clique_lfp_cte,
}


@dataclass
class ExecutionResult:
    """Answer tuples plus the logical counters of one execution."""

    rows: list[tuple]
    iterations_by_clique: dict[str, int] = field(default_factory=dict)
    tuples_by_predicate: dict[str, int] = field(default_factory=dict)
    lfp_results: list[LfpResult] = field(default_factory=list)
    # Wall seconds per evaluation node, keyed by the node's predicate set —
    # Fig 14 reads the magic-rules vs modified-rules LFP times from here.
    node_seconds: dict[str, float] = field(default_factory=dict)
    # Clique label -> "lfp_cte" | "fallback: <reason>", filled in when the
    # recursive-CTE strategy (or the lfp_cte fast-path switch) was in play.
    strategy_by_clique: dict[str, str] = field(default_factory=dict)

    @property
    def total_iterations(self) -> int:
        """LFP iterations summed over cliques."""
        return sum(self.iterations_by_clique.values())


@dataclass(frozen=True)
class QueryProgram:
    """A compiled, executable query plan.

    Attributes:
        query: the original query (its goals form the final SELECT).
        order: the evaluation order list over (possibly rewritten) rules.
        types: column types of every predicate the program touches.
        base_predicates: predicates read from the extensional database.
        strategy: LFP strategy for clique nodes.
        optimized: whether the rules were magic-sets rewritten.
        goal_rewrites: maps each original query-goal predicate to the
            (possibly adorned) predicate whose relation answers it.
    """

    query: Query
    order: tuple[EvaluationNode, ...]
    types: Mapping[str, tuple[str, ...]]
    base_predicates: frozenset[str]
    strategy: LfpStrategy = LfpStrategy.SEMINAIVE
    optimized: bool = False
    goal_rewrites: Mapping[str, str] = field(default_factory=dict)
    # Ground tuples pre-loaded into derived relations before evaluation —
    # the magic seed fact, and workspace facts over derived predicates.
    seed_facts: Mapping[str, tuple[tuple, ...]] = field(default_factory=dict)

    def execute(
        self,
        database: Database,
        catalog: ExtensionalCatalog,
        fastpath: FastPathConfig | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> ExecutionResult:
        """Run the program bottom-up and return the answer tuples.

        ``fastpath`` switches on the fast-path execution layer (iteration
        batching, scratch-table reuse, index advice) for the LFP loops;
        ``None`` keeps the paper-faithful slow path.  ``tracer`` threads the
        observability sink through to the evaluation strategies.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        table_of = {}
        for predicate in self.base_predicates:
            if not catalog.has_relation(predicate):
                raise EvaluationError(
                    f"base relation {predicate!r} is not loaded in the DBMS"
                )
            table_of[predicate] = fact_table_name(predicate)
        context = EvaluationContext(
            database, table_of, self.types, self.seed_facts, fastpath, tracer
        )

        evaluate_clique = _CLIQUE_EVALUATORS[self.strategy]
        if context.fastpath.lfp_cte and self.strategy is not LfpStrategy.LFP_CTE:
            # The fast-path switch upgrades qualifying cliques to the
            # one-statement recursive CTE; ineligible cliques still run
            # under the configured strategy.
            evaluate_clique = functools.partial(
                evaluate_clique_lfp_cte, fallback=evaluate_clique
            )
        lfp_results: list[LfpResult] = []
        defined = program_predicates(self.order)
        try:
            # Seed-only predicates (e.g. a magic predicate with no deriving
            # rules) never appear as an evaluation node; materialise them here
            # so rule bodies referencing them find a relation.
            for predicate in sorted(set(self.seed_facts) - defined):
                context.materialise(predicate)
                context.insert_seed_rows(predicate)
            node_seconds: dict[str, float] = {}
            for node in self.order:
                label = "+".join(sorted(node.predicates))
                is_clique = isinstance(node, Clique)
                with tracer.span(
                    f"clique:{label}" if is_clique else f"node:{label}",
                    category="clique" if is_clique else "node",
                ):
                    started = time.perf_counter()
                    if is_clique:
                        lfp_results.append(evaluate_clique(context, node))
                    elif isinstance(node, PredicateNode):
                        evaluate_nonrecursive(context, node.predicate, node.rules)
                    else:  # pragma: no cover - the node union is closed
                        raise EvaluationError(f"unknown evaluation node {node!r}")
                    node_seconds[label] = time.perf_counter() - started
            with tracer.span("answer", category="answer"):
                rows = self._answer_rows(context)
        finally:
            context.cleanup()
        return ExecutionResult(
            rows,
            dict(context.counters.iterations_by_clique),
            dict(context.counters.tuples_by_predicate),
            lfp_results,
            node_seconds,
            dict(context.counters.strategy_by_clique),
        )

    def _answer_rows(self, context: EvaluationContext) -> list[tuple]:
        """Join the (materialised) query goals for the final answer."""
        goals = tuple(
            goal.with_predicate(self.goal_rewrites.get(goal.predicate, goal.predicate))
            for goal in self.query.goals
        )
        answer_clause = Query(goals, self.query.answer_variables).as_clause()
        select = compile_rule_body(answer_clause)
        tables = [context.table_of(p) for p in select.table_slots]
        rows = context.database.execute(select.render(tables), select.parameters)
        if not self.query.answer_variables:
            # Boolean (fully ground) query: true iff any witness row exists.
            return [()] if rows else []
        return rows


def program_predicates(order: Sequence[EvaluationNode]) -> set[str]:
    """All predicates defined by the program's evaluation nodes."""
    defined: set[str] = set()
    for node in order:
        defined.update(node.predicates)
    return defined
