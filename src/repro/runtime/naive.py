"""Naive LFP evaluation as an embedded-SQL application program.

Naive evaluation of a clique ``r_i = f_i(r_1, ..., r_n)`` recomputes every
``f_i`` from scratch each iteration against the *full* relations of the
previous iteration, then checks whether anything changed.  The paper's
implementation — and ours — pays exactly the costs its Test 6 dissects:

* **temp_tables**: per-iteration CREATE/DROP of scratch relations and the
  table copy back into the result relations;
* **rhs_eval**: one SELECT per rule per iteration, recomputing all previously
  derived tuples plus possibly new ones;
* **termination**: a full set difference (``EXCEPT``) per predicate per
  iteration, because the SQL interface offers no early exit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.pcg import Clique
from ..dbms.schema import RelationSchema, quote_identifier
from ..dbms.sqlgen import compile_rule_body, difference_sql, copy_sql, insert_new_tuples_sql
from .context import (
    PHASE_RHS_EVAL,
    PHASE_TEMP_TABLES,
    PHASE_TERMINATION,
    EvaluationContext,
)

MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class LfpResult:
    """Outcome of one clique LFP computation."""

    iterations: int
    tuples_by_predicate: dict[str, int]

    @property
    def total_tuples(self) -> int:
        """Tuples over all predicates of the clique."""
        return sum(self.tuples_by_predicate.values())


def evaluate_clique_naive(context: EvaluationContext, clique: Clique) -> LfpResult:
    """Compute the least fixed point of ``clique`` by naive iteration."""
    predicates = sorted(clique.predicates)
    database = context.database

    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            context.materialise(predicate)

    compiled = [(c, compile_rule_body(c)) for c in clique.rules]

    iterations = 0
    while iterations < MAX_ITERATIONS:
        iterations += 1
        scratch: dict[str, str] = {}
        with database.phase(PHASE_TEMP_TABLES):
            for predicate in predicates:
                name = database.fresh_temp_name(f"new_{predicate}")
                schema = RelationSchema(name, context.types_of(predicate))
                database.create_relation(schema, temporary=True)
                scratch[predicate] = name
                # Seed tuples (e.g. the magic seed) are part of f's output
                # every iteration, like an exit rule with an empty body.
                rows = context.seed_rows.get(predicate)
                if rows:
                    database.insert_rows(schema, rows)

        # Recompute every rule in full against the previous iteration's
        # relations — the redundant work that makes naive evaluation slow.
        with database.phase(PHASE_RHS_EVAL):
            for clause, select in compiled:
                tables = [
                    context.table_of(p) for p in select.table_slots
                ]
                sql = insert_new_tuples_sql(
                    scratch[clause.head_predicate],
                    select.render(tables),
                    clause.head.arity,
                )
                database.execute(sql, select.parameters)

        # Termination: has any relation gained a tuple?  The SQL interface
        # forces a full set difference per predicate.
        changed = False
        with database.phase(PHASE_TERMINATION):
            for predicate in predicates:
                difference = difference_sql(
                    scratch[predicate],
                    context.table_of(predicate),
                    len(context.types_of(predicate)),
                )
                if database.execute(difference):
                    changed = True

        # Copy the scratch relations into the results and drop them — the
        # per-iteration table copying the paper's conclusion 6a targets.
        with database.phase(PHASE_TEMP_TABLES):
            for predicate in predicates:
                target = context.table_of(predicate)
                database.execute(f"DELETE FROM {quote_identifier(target)}")
                database.execute(
                    copy_sql(
                        target,
                        scratch[predicate],
                        len(context.types_of(predicate)),
                    )
                )
                database.drop_relation(scratch[predicate])

        if not changed:
            break

    sizes = {p: context.record_result_size(p) for p in predicates}
    context.counters.iterations_by_clique[
        "+".join(predicates)
    ] = iterations
    return LfpResult(iterations, sizes)
