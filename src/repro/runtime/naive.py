"""Naive LFP evaluation as an embedded-SQL application program.

Naive evaluation of a clique ``r_i = f_i(r_1, ..., r_n)`` recomputes every
``f_i`` from scratch each iteration against the *full* relations of the
previous iteration, then checks whether anything changed.  The paper's
implementation — and ours — pays exactly the costs its Test 6 dissects:

* **temp_tables**: per-iteration CREATE/DROP of scratch relations and the
  table copy back into the result relations;
* **rhs_eval**: one SELECT per rule per iteration, recomputing all previously
  derived tuples plus possibly new ones;
* **termination**: a full set difference (``EXCEPT``) per predicate per
  iteration, because the SQL interface offers no early exit.

The fast-path layer (:class:`repro.runtime.context.FastPathConfig`) removes
the avoidable parts without changing the strategy: scratch relations are
allocated once and cleared with ``DELETE`` (stable names keep the statement
cache hot), each iteration runs in one explicit transaction, and the index
advisor indexes the derived relations' join columns before the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.pcg import Clique
from ..dbms.schema import RelationSchema, quote_identifier
from ..dbms.sqlgen import compile_rule_body, difference_sql, copy_sql, insert_new_tuples_sql
from ..errors import EvaluationError
from .context import (
    PHASE_RHS_EVAL,
    PHASE_TEMP_TABLES,
    PHASE_TERMINATION,
    EvaluationContext,
)

MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class LfpResult:
    """Outcome of one clique LFP computation."""

    iterations: int
    tuples_by_predicate: dict[str, int]

    @property
    def total_tuples(self) -> int:
        """Tuples over all predicates of the clique."""
        return sum(self.tuples_by_predicate.values())


def non_convergence_error(strategy: str, clique: Clique, limit: int) -> EvaluationError:
    """The error every LFP loop raises when it hits the iteration cap.

    Falling out of the loop instead would silently return a *truncated*
    fixed point — tuples derivable in ``limit + 1`` iterations would simply
    be missing from the answer.
    """
    predicates = "+".join(sorted(clique.predicates))
    return EvaluationError(
        f"{strategy} LFP evaluation of clique {predicates!r} did not "
        f"converge within MAX_ITERATIONS={limit} iterations; the fixed "
        "point is incomplete (raise repro.runtime.naive.MAX_ITERATIONS if "
        "the workload legitimately needs more)"
    )


def evaluate_clique_naive(context: EvaluationContext, clique: Clique) -> LfpResult:
    """Compute the least fixed point of ``clique`` by naive iteration.

    Raises:
        EvaluationError: if the loop hits :data:`MAX_ITERATIONS` before
            converging (the result would be a truncated fixed point).
    """
    predicates = sorted(clique.predicates)
    database = context.database
    fastpath = context.fastpath
    tracer = context.tracer

    compiled = [(c, compile_rule_body(c)) for c in clique.rules]

    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            context.materialise(predicate)
        context.create_advised_indexes([s for __, s in compiled], predicates)

    scratch: dict[str, str] = {}
    schemas: dict[str, RelationSchema] = {}
    if fastpath.reuse_scratch_tables:
        # Allocate the scratch relations once; iterations clear them with
        # DELETE, so the rendered SQL (and the prepared statements behind
        # it) stays identical from one iteration to the next.
        with database.phase(PHASE_TEMP_TABLES):
            for predicate in predicates:
                name = database.fresh_temp_name(f"new_{predicate}")
                schema = RelationSchema(name, context.types_of(predicate))
                database.create_relation(schema, temporary=True)
                scratch[predicate] = name
                schemas[predicate] = schema

    iterations = 0
    while True:
        if iterations >= MAX_ITERATIONS:
            raise non_convergence_error("naive", clique, MAX_ITERATIONS)
        iterations += 1
        with tracer.span(
            "iteration", category="iteration", iteration=iterations
        ) as it_span, context.iteration_scope():
            with database.phase(PHASE_TEMP_TABLES):
                for predicate in predicates:
                    if fastpath.reuse_scratch_tables:
                        schema = schemas[predicate]
                        database.execute(
                            f"DELETE FROM {quote_identifier(scratch[predicate])}"
                        )
                    else:
                        name = database.fresh_temp_name(f"new_{predicate}")
                        schema = RelationSchema(name, context.types_of(predicate))
                        database.create_relation(schema, temporary=True)
                        scratch[predicate] = name
                    # Seed tuples (e.g. the magic seed) are part of f's output
                    # every iteration, like an exit rule with an empty body.
                    rows = context.seed_rows.get(predicate)
                    if rows:
                        database.insert_rows(schema, rows)

            # Recompute every rule in full against the previous iteration's
            # relations — the redundant work that makes naive evaluation slow.
            with database.phase(PHASE_RHS_EVAL):
                for clause, select in compiled:
                    tables = [
                        context.table_of(p) for p in select.table_slots
                    ]
                    sql = insert_new_tuples_sql(
                        scratch[clause.head_predicate],
                        select.render(tables),
                        clause.head.arity,
                    )
                    database.execute(sql, select.parameters)

            # Termination: has any relation gained a tuple?  The SQL interface
            # forces a full set difference per predicate.
            changed = False
            new_tuples = 0
            with database.phase(PHASE_TERMINATION):
                for predicate in predicates:
                    difference = difference_sql(
                        scratch[predicate],
                        context.table_of(predicate),
                        len(context.types_of(predicate)),
                    )
                    rows = database.execute(difference)
                    if rows:
                        changed = True
                        new_tuples += len(rows)
            if tracer.enabled:
                # The set-difference rows *are* this iteration's delta.
                it_span.set("delta_tuples", new_tuples)
                tracer.metrics.histogram(
                    "lfp.delta_tuples", (1, 10, 100, 1000, 10000)
                ).observe(new_tuples)
                tracer.metrics.counter("lfp.iterations").inc()

            # Copy the scratch relations into the results and drop them — the
            # per-iteration table copying the paper's conclusion 6a targets.
            with database.phase(PHASE_TEMP_TABLES):
                for predicate in predicates:
                    target = context.table_of(predicate)
                    database.execute(f"DELETE FROM {quote_identifier(target)}")
                    database.execute(
                        copy_sql(
                            target,
                            scratch[predicate],
                            len(context.types_of(predicate)),
                        )
                    )
                    if not fastpath.reuse_scratch_tables:
                        database.drop_relation(scratch[predicate])

        if not changed:
            break

    if fastpath.reuse_scratch_tables:
        with database.phase(PHASE_TEMP_TABLES):
            for predicate in predicates:
                database.drop_relation(scratch[predicate])

    sizes = {p: context.record_result_size(p) for p in predicates}
    context.counters.iterations_by_clique[
        "+".join(predicates)
    ] = iterations
    return LfpResult(iterations, sizes)
