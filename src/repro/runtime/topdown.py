"""A tabled top-down evaluator (comparison baseline).

Section 2.4 of the paper names top-down evaluation (Henschen-Naqvi, Prolog)
as the alternative to the bottom-up strategies its testbed implements.  This
module provides that alternative as an independent, in-memory implementation:
goal-directed like Prolog, but *tabled* so left-recursive Datalog terminates.

The tabling scheme is deliberately simple and obviously correct: subgoals are
discovered goal-directedly (only subgoals relevant to the query are ever
tabled — the effect magic sets achieves by rewriting), and their answer
tables are then grown by global sweeps until no table changes.  Being a
second, SQL-free implementation path, the evaluator doubles as a correctness
oracle for the bottom-up strategies in the property-based tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..datalog.clauses import Clause, Program, Query
from ..datalog.terms import Atom, Constant, Variable
from ..datalog.unify import Substitution, apply_substitution, unify_atoms
from ..obs.trace import NULL_TRACER, NullTracer, Tracer

FactsByPredicate = Mapping[str, Iterable[tuple]]


class TopDownEvaluator:
    """Tabled, goal-directed evaluation over in-memory facts."""

    def __init__(
        self,
        program: Program,
        facts: FactsByPredicate,
        tracer: "Tracer | NullTracer | None" = None,
    ):
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._rules: dict[str, list[Clause]] = {}
        self._facts: dict[str, set[tuple]] = {
            predicate: set(rows) for predicate, rows in facts.items()
        }
        for clause in program.rules:
            self._rules.setdefault(clause.head_predicate, []).append(clause)
        for clause in program.facts:
            self._facts.setdefault(clause.head_predicate, set()).add(
                clause.head.ground_tuple()
            )
        self._tables: dict[Atom, set[tuple]] = {}
        self._rename_counter = 0

    def query(self, query: Query) -> set[tuple]:
        """All answer tuples (over ``query.answer_variables``) for ``query``."""
        # Sweep to a global fixed point: solving the conjunction discovers
        # subgoals; deriving each tabled subgoal once per sweep grows the
        # tables; stop when a whole sweep neither grows a table nor
        # discovers a new subgoal.
        tracer = self._tracer
        sweep = 0
        while True:
            sweep += 1
            with tracer.span("sweep", category="iteration", iteration=sweep) as span:
                changed = False
                before = len(self._tables)
                tuples_before = sum(len(t) for t in self._tables.values())
                for __ in self._solve_conjunction(query.goals, {}):
                    pass  # discovery only; answers are collected after the fixpoint
                for key in list(self._tables):
                    if self._derive_once(key):
                        changed = True
                if len(self._tables) > before:
                    changed = True
                if tracer.enabled:
                    span.set("subgoals", len(self._tables))
                    span.set(
                        "delta_tuples",
                        sum(len(t) for t in self._tables.values()) - tuples_before,
                    )
            if not changed:
                break

        answers: set[tuple] = set()
        for substitution in self._solve_conjunction(query.goals, {}):
            row = []
            for variable in query.answer_variables:
                term = substitution.get(variable)
                while isinstance(term, Variable) and term in substitution:
                    term = substitution[term]
                if not isinstance(term, Constant):
                    raise ValueError(
                        f"answer variable {variable} unbound; query is unsafe"
                    )
                row.append(term.value)
            answers.add(tuple(row))
        return answers

    def _complete_subgoal(self, goal: Atom) -> None:
        """Grow the tables the (positive) ``goal`` depends on to a fixed point.

        Only subgoals over predicates reachable from ``goal``'s predicate are
        swept, so for a stratified program this never touches the incomplete
        tables of the stratum currently being computed.
        """
        self._answers_for(goal)
        scope = self._reachable_predicates(goal.predicate)
        while True:
            changed = False
            before = len(self._tables)
            for key in list(self._tables):
                if key.predicate in scope and self._derive_once(key):
                    changed = True
            if len(self._tables) > before:
                changed = True
            if not changed:
                return

    def _reachable_predicates(self, predicate: str) -> set[str]:
        """``predicate`` plus everything reachable from it in the rule PCG."""
        reached = {predicate}
        frontier = [predicate]
        while frontier:
            current = frontier.pop()
            for clause in self._rules.get(current, ()):
                for atom in clause.body:
                    if atom.predicate not in reached:
                        reached.add(atom.predicate)
                        frontier.append(atom.predicate)
        return reached

    def _derive_once(self, key: Atom) -> bool:
        """Run every rule for ``key`` once against current tables.

        Returns:
            True when the subgoal's table gained a tuple.
        """
        table = self._tables[key]
        before = len(table)
        for clause in self._rules.get(key.predicate, ()):
            renamed = self._rename(clause)
            unified = unify_atoms(renamed.head, key)
            if unified is None:
                continue
            for solution in self._solve_conjunction(renamed.body, unified):
                head = apply_substitution(renamed.head, solution)
                if head.is_ground:
                    table.add(head.ground_tuple())
        return len(table) > before

    def _solve_conjunction(
        self, goals: Sequence[Atom], substitution: Substitution
    ) -> Iterator[Substitution]:
        if not goals:
            yield substitution
            return
        first, rest = goals[0], goals[1:]
        bound_goal = apply_substitution(first, substitution)
        if bound_goal.negated:
            # Negation as (stratified) failure: the subgoal must be ground,
            # and — for soundness — its table must be *complete* before the
            # test, so we run a nested fixed point over the predicates the
            # subgoal can reach (a lower stratum, by stratifiability).
            positive = bound_goal.positive()
            if not positive.is_ground:
                raise ValueError(f"negated goal {bound_goal} is not ground")
            self._complete_subgoal(positive)
            if positive.ground_tuple() not in self._answers_for(positive):
                yield from self._solve_conjunction(rest, substitution)
            return
        for answer in list(self._answers_for(bound_goal)):
            ground = Atom(bound_goal.predicate, tuple(Constant(v) for v in answer))
            unified = unify_atoms(bound_goal, ground, substitution)
            if unified is not None:
                yield from self._solve_conjunction(rest, unified)

    def _answers_for(self, goal: Atom) -> set[tuple]:
        """Current table for ``goal``, registering the subgoal if new.

        Base predicates answer directly from the fact store; derived
        predicates get a table seeded with any stored facts and grown by the
        sweep loop in :meth:`query`.
        """
        if goal.predicate not in self._rules:
            return self._matching_facts(goal)
        key = self._canonical(goal)
        table = self._tables.get(key)
        if table is None:
            table = set(self._matching_facts(goal))
            self._tables[key] = table
        return table

    def _matching_facts(self, goal: Atom) -> set[tuple]:
        rows = self._facts.get(goal.predicate, set())
        filters = [
            (i, t.value) for i, t in enumerate(goal.terms) if isinstance(t, Constant)
        ]
        if not filters:
            return set(rows)
        return {row for row in rows if all(row[i] == v for i, v in filters)}

    def _canonical(self, goal: Atom) -> Atom:
        """Canonical call pattern: variables renamed by first occurrence."""
        mapping: dict[Variable, Variable] = {}
        terms: list = []
        for term in goal.terms:
            if isinstance(term, Variable):
                terms.append(mapping.setdefault(term, Variable(f"_G{len(mapping)}")))
            else:
                terms.append(term)
        return Atom(goal.predicate, tuple(terms))

    def _rename(self, clause: Clause) -> Clause:
        self._rename_counter += 1
        return clause.rename_apart(f"__r{self._rename_counter}")


def evaluate_top_down(
    program: Program,
    facts: FactsByPredicate,
    query: Query,
    tracer: "Tracer | NullTracer | None" = None,
) -> set[tuple]:
    """One-shot convenience wrapper around :class:`TopDownEvaluator`."""
    return TopDownEvaluator(program, facts, tracer).query(query)
