"""Semi-naive (differential) LFP evaluation as an embedded-SQL program.

Semi-naive evaluation computes, per iteration, only the *differential* of the
right-hand sides: each recursive rule is re-run once per recursive body
occurrence with that occurrence pointed at the previous iteration's delta
relation (paper section 4, "the differential approach described in [12]").
New tuples are separated from old ones with a set difference, become the next
delta, and are unioned into the result.

The phase names match :mod:`repro.runtime.naive` so Test 6 can compare the
breakdowns.  Termination is one ``EXISTS`` probe over all deltas per
iteration (a single statement, not one ``COUNT(*)`` scan per predicate).
The fast path additionally keeps two stable delta relations per predicate
(ping-pong buffers cleared with ``DELETE``), batches each iteration into a
transaction, and indexes the derived relations before the loop.
"""

from __future__ import annotations

from ..datalog.pcg import Clique
from ..dbms.schema import RelationSchema, quote_identifier
from ..dbms.sqlgen import compile_rule_body, copy_sql, insert_new_tuples_sql
from .context import (
    PHASE_RHS_EVAL,
    PHASE_TEMP_TABLES,
    PHASE_TERMINATION,
    EvaluationContext,
)
from . import naive
from .naive import LfpResult, non_convergence_error

# Re-exported for backward compatibility; the authoritative (and
# monkeypatchable) value lives in repro.runtime.naive.
MAX_ITERATIONS = naive.MAX_ITERATIONS


def _delta_cardinality(context: EvaluationContext, tables: list[str]) -> int:
    """Total rows across delta relations, via the *uncounted* observe path.

    Only called when tracing is enabled; must not disturb the measured
    statement stream, so it bypasses ``Database.execute`` entirely.
    """
    total = 0
    for name in tables:
        rows = context.database.observe(
            f"SELECT COUNT(*) FROM {quote_identifier(name)}"
        )
        total += int(rows[0][0])
    return total


def _any_delta_tuples_sql(delta_tables: list[str]) -> str:
    """One EXISTS-style probe over every delta relation.

    Replaces the per-predicate ``COUNT(*)`` termination probes: SQLite stops
    each EXISTS at the first row, and the whole check is a single statement.
    """
    probes = " OR ".join(
        f"EXISTS (SELECT 1 FROM {quote_identifier(name)})"
        for name in delta_tables
    )
    return f"SELECT {probes}"


def evaluate_clique_seminaive(
    context: EvaluationContext, clique: Clique
) -> LfpResult:
    """Compute the least fixed point of ``clique`` by semi-naive iteration.

    Raises:
        EvaluationError: if the loop hits
            :data:`repro.runtime.naive.MAX_ITERATIONS` before the delta
            drains (the result would be a truncated fixed point).
    """
    predicates = sorted(clique.predicates)
    database = context.database
    fastpath = context.fastpath
    tracer = context.tracer

    exit_selects = [(c, compile_rule_body(c)) for c in clique.exit_rules]
    recursive = [(c, compile_rule_body(c)) for c in clique.recursive_rules]
    all_selects = [s for __, s in exit_selects] + [s for __, s in recursive]

    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            context.materialise(predicate)
            # Seed tuples (e.g. the magic seed fact) join the result before
            # the exit-rule pass, so the first delta carries them too.
            context.insert_seed_rows(predicate)
        context.create_advised_indexes(all_selects, predicates)

    # Iteration 0: exit rules seed both the result and the first delta.
    delta: dict[str, str] = {}
    spare: dict[str, str] = {}
    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            name = database.fresh_temp_name(f"delta_{predicate}")
            schema = RelationSchema(name, context.types_of(predicate))
            database.create_relation(schema, temporary=True)
            delta[predicate] = name
            if fastpath.reuse_scratch_tables:
                # The ping-pong partner: iterations alternate between the
                # two stable relations instead of CREATE/DROP-ing fresh
                # ones, keeping the rendered SQL (and the statement cache)
                # stable across iterations.
                partner = database.fresh_temp_name(f"delta_{predicate}")
                database.create_relation(
                    RelationSchema(partner, context.types_of(predicate)),
                    temporary=True,
                )
                spare[predicate] = partner

    with tracer.span("iteration", category="iteration", iteration=1) as it_span:
        with database.phase(PHASE_RHS_EVAL):
            for clause, select in exit_selects:
                tables = [context.table_of(p) for p in select.table_slots]
                sql = insert_new_tuples_sql(
                    context.table_of(clause.head_predicate),
                    select.render(tables),
                    clause.head.arity,
                )
                database.execute(sql, select.parameters)
        with database.phase(PHASE_TEMP_TABLES):
            for predicate in predicates:
                database.execute(
                    copy_sql(
                        delta[predicate],
                        context.table_of(predicate),
                        len(context.types_of(predicate)),
                    )
                )
        if tracer.enabled:
            cardinality = _delta_cardinality(context, [delta[p] for p in predicates])
            it_span.set("delta_tuples", cardinality)
            tracer.metrics.histogram("lfp.delta_tuples", (1, 10, 100, 1000, 10000)).observe(
                cardinality
            )
            tracer.metrics.counter("lfp.iterations").inc()

    iterations = 1  # the exit-rule pass counts as the first iteration
    while True:
        with database.phase(PHASE_TERMINATION):
            probe = _any_delta_tuples_sql([delta[p] for p in predicates])
            empty = not database.execute(probe)[0][0]
        if empty:
            break
        if iterations >= naive.MAX_ITERATIONS:
            raise non_convergence_error(
                "semi-naive", clique, naive.MAX_ITERATIONS
            )
        iterations += 1

        with tracer.span(
            "iteration", category="iteration", iteration=iterations
        ) as it_span, context.iteration_scope():
            new_delta: dict[str, str] = {}
            with database.phase(PHASE_TEMP_TABLES):
                for predicate in predicates:
                    if fastpath.reuse_scratch_tables:
                        # The spare buffer was emptied when it last rotated
                        # out, so it is ready to receive the new delta.
                        new_delta[predicate] = spare[predicate]
                    else:
                        name = database.fresh_temp_name(f"delta_{predicate}")
                        schema = RelationSchema(
                            name, context.types_of(predicate)
                        )
                        database.create_relation(schema, temporary=True)
                        new_delta[predicate] = name

            # Differential RHS: one pass per recursive occurrence, with that
            # occurrence redirected to the delta relation.
            with database.phase(PHASE_RHS_EVAL):
                for clause, select in recursive:
                    for index, predicate in enumerate(select.positive_predicates):
                        if predicate not in clique.predicates:
                            continue
                        tables = [
                            delta[p] if j == index else context.table_of(p)
                            for j, p in enumerate(select.table_slots)
                        ]
                        # EXCEPT against the full result keeps only new tuples —
                        # still a set difference, but over the differential.
                        sql = insert_new_tuples_sql(
                            new_delta[clause.head_predicate],
                            select.render(tables),
                            clause.head.arity,
                        )
                        database.execute(sql, select.parameters)

            # Strip already-known tuples from the delta and fold it in.  The
            # DELETE implements delta := delta - result; the termination check
            # then just probes the delta.
            with database.phase(PHASE_TERMINATION):
                for predicate in predicates:
                    arity = len(context.types_of(predicate))
                    columns = ", ".join(f"c{i}" for i in range(arity))
                    database.execute(
                        f'DELETE FROM "{new_delta[predicate]}" WHERE ({columns}) IN '
                        f'(SELECT {columns} FROM "{context.table_of(predicate)}")'
                    )
            if tracer.enabled:
                # After the strip, the new delta holds exactly this
                # iteration's genuinely new tuples.
                cardinality = _delta_cardinality(
                    context, [new_delta[p] for p in predicates]
                )
                it_span.set("delta_tuples", cardinality)
                tracer.metrics.histogram(
                    "lfp.delta_tuples", (1, 10, 100, 1000, 10000)
                ).observe(cardinality)
                tracer.metrics.counter("lfp.iterations").inc()
            with database.phase(PHASE_TEMP_TABLES):
                for predicate in predicates:
                    database.execute(
                        copy_sql(
                            context.table_of(predicate),
                            new_delta[predicate],
                            len(context.types_of(predicate)),
                        )
                    )
                    if fastpath.reuse_scratch_tables:
                        # Clear the outgoing delta; it becomes the spare
                        # buffer for the next iteration.
                        database.execute(
                            f"DELETE FROM {quote_identifier(delta[predicate])}"
                        )
                        spare[predicate] = delta[predicate]
                    else:
                        database.drop_relation(delta[predicate])
                delta = dict(new_delta)

    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            database.drop_relation(delta[predicate])
            if fastpath.reuse_scratch_tables:
                database.drop_relation(spare[predicate])

    sizes = {p: context.record_result_size(p) for p in predicates}
    context.counters.iterations_by_clique["+".join(predicates)] = iterations
    return LfpResult(iterations, sizes)
