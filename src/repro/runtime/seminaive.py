"""Semi-naive (differential) LFP evaluation as an embedded-SQL program.

Semi-naive evaluation computes, per iteration, only the *differential* of the
right-hand sides: each recursive rule is re-run once per recursive body
occurrence with that occurrence pointed at the previous iteration's delta
relation (paper section 4, "the differential approach described in [12]").
New tuples are separated from old ones with a set difference, become the next
delta, and are unioned into the result.

The phase names match :mod:`repro.runtime.naive` so Test 6 can compare the
breakdowns.
"""

from __future__ import annotations

from ..datalog.pcg import Clique
from ..dbms.schema import RelationSchema
from ..dbms.sqlgen import compile_rule_body, copy_sql, insert_new_tuples_sql
from .context import (
    PHASE_RHS_EVAL,
    PHASE_TEMP_TABLES,
    PHASE_TERMINATION,
    EvaluationContext,
)
from .naive import MAX_ITERATIONS, LfpResult


def evaluate_clique_seminaive(
    context: EvaluationContext, clique: Clique
) -> LfpResult:
    """Compute the least fixed point of ``clique`` by semi-naive iteration."""
    predicates = sorted(clique.predicates)
    database = context.database

    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            context.materialise(predicate)
            # Seed tuples (e.g. the magic seed fact) join the result before
            # the exit-rule pass, so the first delta carries them too.
            context.insert_seed_rows(predicate)

    # Iteration 0: exit rules seed both the result and the first delta.
    delta: dict[str, str] = {}
    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            name = database.fresh_temp_name(f"delta_{predicate}")
            schema = RelationSchema(name, context.types_of(predicate))
            database.create_relation(schema, temporary=True)
            delta[predicate] = name

    with database.phase(PHASE_RHS_EVAL):
        for clause in clique.exit_rules:
            select = compile_rule_body(clause)
            tables = [context.table_of(p) for p in select.table_slots]
            sql = insert_new_tuples_sql(
                context.table_of(clause.head_predicate),
                select.render(tables),
                clause.head.arity,
            )
            database.execute(sql, select.parameters)
    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            database.execute(
                copy_sql(
                    delta[predicate],
                    context.table_of(predicate),
                    len(context.types_of(predicate)),
                )
            )

    recursive = [(c, compile_rule_body(c)) for c in clique.recursive_rules]
    iterations = 1  # the exit-rule pass counts as the first iteration
    while iterations < MAX_ITERATIONS:
        with database.phase(PHASE_TERMINATION):
            empty = not any(database.row_count(delta[p]) for p in predicates)
        if empty:
            break
        iterations += 1

        new_delta: dict[str, str] = {}
        with database.phase(PHASE_TEMP_TABLES):
            for predicate in predicates:
                name = database.fresh_temp_name(f"delta_{predicate}")
                schema = RelationSchema(name, context.types_of(predicate))
                database.create_relation(schema, temporary=True)
                new_delta[predicate] = name

        # Differential RHS: one pass per recursive occurrence, with that
        # occurrence redirected to the delta relation.
        with database.phase(PHASE_RHS_EVAL):
            for clause, select in recursive:
                for index, predicate in enumerate(select.positive_predicates):
                    if predicate not in clique.predicates:
                        continue
                    tables = [
                        delta[p] if j == index else context.table_of(p)
                        for j, p in enumerate(select.table_slots)
                    ]
                    # EXCEPT against the full result keeps only new tuples —
                    # still a set difference, but over the differential.
                    sql = insert_new_tuples_sql(
                        new_delta[clause.head_predicate],
                        select.render(tables),
                        clause.head.arity,
                    )
                    database.execute(sql, select.parameters)

        # Strip already-known tuples from the delta and fold it in.  The
        # DELETE implements delta := delta - result; the termination check
        # then just counts the delta.
        with database.phase(PHASE_TERMINATION):
            for predicate in predicates:
                arity = len(context.types_of(predicate))
                columns = ", ".join(f"c{i}" for i in range(arity))
                database.execute(
                    f'DELETE FROM "{new_delta[predicate]}" WHERE ({columns}) IN '
                    f'(SELECT {columns} FROM "{context.table_of(predicate)}")'
                )
        with database.phase(PHASE_TEMP_TABLES):
            for predicate in predicates:
                database.execute(
                    copy_sql(
                        context.table_of(predicate),
                        new_delta[predicate],
                        len(context.types_of(predicate)),
                    )
                )
                database.drop_relation(delta[predicate])
            delta = new_delta

    with database.phase(PHASE_TEMP_TABLES):
        for predicate in predicates:
            database.drop_relation(delta[predicate])

    sizes = {p: context.record_result_size(p) for p in predicates}
    context.counters.iterations_by_clique["+".join(predicates)] = iterations
    return LfpResult(iterations, sizes)
