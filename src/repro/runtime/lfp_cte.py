"""Whole-clique LFP evaluation as one recursive CTE statement.

The paper's central complaint about the SQL interface is that the fixpoint
loop lives in the *application*: every iteration pays temp-table DDL, RHS
SELECTs, set differences, and a termination probe as separate statements.
Modern engines can run the entire least-fixpoint inside the DBMS as one
``WITH RECURSIVE`` statement — ``UNION`` (not ``UNION ALL``) gives set
semantics and termination for free, and the engine's own memoisation
replaces the delta bookkeeping.

Not every clique qualifies.  The strategy compiles a clique into a single
recursive CTE exactly when:

* the clique has **one predicate** (no mutual recursion — SQL's recursive
  CTE recurses through one table);
* every recursive rule is **linear**: its body references the clique
  predicate exactly once (which is also SQL's own restriction on the
  recursive select); and
* **no rule uses negation** (a negated reference to the table under
  construction is not expressible; this dialect has no aggregation, the
  other classic disqualifier).

Anything else — and any backend without ``supports_recursive_cte`` — falls
back to the configured iteration loop (semi-naive by default).  Fallback is
silent and recorded in ``EvaluationCounters.strategy_by_clique``; it is
never an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..datalog.pcg import Clique
from ..dbms.schema import column_name, quote_identifier
from ..dbms.sqlgen import compile_rule_body
from .context import (
    PHASE_RHS_EVAL,
    PHASE_TEMP_TABLES,
    EvaluationContext,
)
from .naive import LfpResult
from .seminaive import evaluate_clique_seminaive

#: Name of the recursive common table expression inside the generated
#: statement.  Scoped to the statement, so no collision handling is needed.
CTE_NAME = "lfp_cte"

_DISTINCT_PREFIX = "SELECT DISTINCT "


@dataclass(frozen=True)
class CteEligibility:
    """Whether a clique qualifies for the recursive-CTE fast path, and why."""

    eligible: bool
    reason: str

    def __bool__(self) -> bool:
        return self.eligible


def cte_eligibility(clique: Clique) -> CteEligibility:
    """Decide whether ``clique`` compiles to a single recursive CTE."""
    if len(clique.predicates) != 1:
        return CteEligibility(
            False,
            "mutual recursion: a recursive CTE recurses through one table, "
            f"clique has {sorted(clique.predicates)}",
        )
    (predicate,) = clique.predicates
    for clause in clique.rules:
        if any(atom.negated for atom in clause.body):
            return CteEligibility(
                False, f"negated atom in rule: {clause}"
            )
    for clause in clique.recursive_rules:
        occurrences = sum(
            1 for atom in clause.body if atom.predicate == predicate
        )
        if occurrences != 1:
            return CteEligibility(
                False,
                f"non-linear recursive rule ({occurrences} occurrences of "
                f"{predicate!r}): {clause}",
            )
    return CteEligibility(True, "single-predicate linear clique, no negation")


def _without_distinct(select_sql: str) -> str:
    """Strip the leading ``DISTINCT`` from a compiled rule-body SELECT.

    SQL forbids DISTINCT on the recursive select of a CTE; the surrounding
    ``UNION`` compound performs the duplicate elimination anyway, so
    dropping it from every arm is semantics-preserving.
    """
    if select_sql.startswith(_DISTINCT_PREFIX):
        return "SELECT " + select_sql[len(_DISTINCT_PREFIX):]
    return select_sql


def compile_clique_cte(
    context: EvaluationContext, clique: Clique, dedup: bool = True
) -> "tuple[str, tuple] | None":
    """The single recursive statement for an eligible ``clique``.

    Returns ``(sql, parameters)``, or ``None`` when the clique has no
    anchor at all (no exit rules and no seed rows) — the fixpoint is then
    the already-materialised (empty) relation and no statement is needed.

    The statement has the shape::

        WITH RECURSIVE "lfp_cte"(c0, ...) AS (
            <exit-rule select>  UNION  <seed VALUES>      -- anchor arms
            UNION
            <recursive-rule select over "lfp_cte">  ...   -- recursive arms
        )
        INSERT INTO "d_pred" (c0, ...)
        SELECT c0, ... FROM "lfp_cte"
        [EXCEPT SELECT c0, ... FROM "d_pred"]

    (with the WITH/INSERT composition delegated to the backend, whose
    dialects disagree on where the clause attaches).  ``dedup`` adds the
    trailing EXCEPT, which keeps the insert idempotent against rows
    already in the result relation; callers that just created the relation
    skip it — the EXCEPT re-sorts the whole fixpoint for nothing.
    """
    (predicate,) = clique.predicates
    database = context.database
    arity = len(context.types_of(predicate))
    columns = ", ".join(column_name(i) for i in range(arity))
    quoted_cte = quote_identifier(CTE_NAME)

    anchor_arms: list[str] = []
    recursive_arms: list[str] = []
    parameters: list = []

    for clause in clique.exit_rules:
        select = compile_rule_body(clause)
        tables = [context.table_of(p) for p in select.table_slots]
        anchor_arms.append(_without_distinct(select.render(tables)))
        parameters.extend(select.parameters)

    for row in context.seed_rows.get(predicate, ()):
        anchor_arms.append(
            "SELECT "
            + ", ".join(f"? AS {column_name(i)}" for i in range(arity))
        )
        parameters.extend(row)

    if not anchor_arms:
        return None

    for clause in clique.recursive_rules:
        select = compile_rule_body(clause)
        # The one recursive occurrence reads the CTE itself; every other
        # slot reads its materialised relation as usual.
        tables = [
            quoted_cte if p == predicate
            else quote_identifier(context.table_of(p))
            for p in select.table_slots
        ]
        recursive_arms.append(_without_distinct(select.sql.format(*tables)))
        parameters.extend(select.parameters)

    # Anchor arms must precede recursive arms; UNION keeps set semantics
    # (and with it, termination on cyclic data).
    body = " UNION ".join(anchor_arms + recursive_arms)
    result = quote_identifier(context.table_of(predicate))
    select_stmt = f"SELECT {columns} FROM {quoted_cte}"
    if dedup:
        select_stmt += f" EXCEPT SELECT {columns} FROM {result}"
    sql = database.backend.recursive_insert_sql(
        f"{quoted_cte}({columns}) AS ({body})",
        f"INSERT INTO {result} ({columns})",
        select_stmt,
    )
    return sql, tuple(parameters)


def evaluate_clique_lfp_cte(
    context: EvaluationContext,
    clique: Clique,
    fallback: Callable[[EvaluationContext, Clique], LfpResult] | None = None,
) -> LfpResult:
    """Evaluate ``clique`` in one recursive-CTE statement when it qualifies.

    Ineligible cliques (and backends without recursive-CTE support) are
    handed to ``fallback`` — :func:`evaluate_clique_seminaive` by default —
    so this strategy never fails where the iteration loop would succeed.
    The choice made for each clique is recorded in
    ``context.counters.strategy_by_clique``.
    """
    if fallback is None:
        fallback = evaluate_clique_seminaive
    label = "+".join(sorted(clique.predicates))
    check = cte_eligibility(clique)
    if check.eligible and not context.database.capabilities.supports_recursive_cte:
        check = CteEligibility(
            False,
            f"backend {context.database.backend.name!r} lacks recursive-CTE "
            "support",
        )
    if not check.eligible:
        context.counters.strategy_by_clique[label] = f"fallback: {check.reason}"
        return fallback(context, clique)
    context.counters.strategy_by_clique[label] = "lfp_cte"

    (predicate,) = clique.predicates
    database = context.database
    tracer = context.tracer

    with database.phase(PHASE_TEMP_TABLES):
        # A pre-existing relation (e.g. adopted storage) may already hold
        # rows the INSERT must not duplicate; a freshly materialised one is
        # empty by construction and skips the EXCEPT re-sort entirely.
        fresh = not context.has_table(predicate)
        context.materialise(predicate)
        # Seed rows are NOT pre-inserted here: they ride the CTE as anchor
        # arms and arrive in the result through the one INSERT, mirroring
        # how the iteration strategies let seeds participate in recursion.

    compiled = compile_clique_cte(context, clique, dedup=not fresh)
    # The whole fixpoint is a single statement: one "iteration" from the
    # counters' point of view, and no termination phase at all.
    with tracer.span("iteration", category="iteration", iteration=1) as it_span:
        if compiled is not None:
            sql, parameters = compiled
            with database.phase(PHASE_RHS_EVAL):
                database.execute(sql, parameters)
        if tracer.enabled:
            rows = database.observe(
                "SELECT COUNT(*) FROM "
                + quote_identifier(context.table_of(predicate))
            )
            cardinality = int(rows[0][0])
            it_span.set("delta_tuples", cardinality)
            tracer.metrics.histogram(
                "lfp.delta_tuples", (1, 10, 100, 1000, 10000)
            ).observe(cardinality)
            tracer.metrics.counter("lfp.iterations").inc()
            tracer.metrics.counter("lfp.cte_statements").inc()

    sizes = {predicate: context.record_result_size(predicate)}
    context.counters.iterations_by_clique[label] = 1
    return LfpResult(1, sizes)
