"""A generalized LFP operator "inside the DBMS" (paper conclusion #6).

The paper argues that evaluating recursive equations as an application
program over SQL is inherently inefficient — per-iteration temporary tables,
full table copies, and complete set differences for the termination check —
and that the DBMS interface should instead offer an LFP operator that:

(a) avoids table copying by manipulating buffers in place,
(b) stops the termination check at the first new tuple, and
(c) adapts access paths to the relation sizes.

This module implements that operator as close to the metal as SQLite allows:

* the result relation is created **once**, ``WITHOUT ROWID`` with a primary
  key over all columns, so duplicate elimination is an index probe instead of
  a full ``EXCEPT`` (answers (b) and (c));
* deltas are keyed the same way and filled with ``INSERT OR IGNORE`` — no
  per-iteration ``CREATE``/``DROP``/copy; the delta rotates by a catalog
  ``RENAME`` (answers (a));
* the new-tuple count falls out of ``changes()`` — there is no separate
  termination query at all.

The ablation benchmark compares it against the application-program
strategies of :mod:`repro.runtime.naive` / :mod:`repro.runtime.seminaive`.
"""

from __future__ import annotations

from ..datalog.pcg import Clique
from ..dbms.schema import quote_identifier
from ..dbms.sqlgen import compile_rule_body
from .context import EvaluationContext
from . import naive
from .naive import LfpResult, non_convergence_error
from .seminaive import evaluate_clique_seminaive


def _create_keyed_table(context: EvaluationContext, name: str, predicate: str) -> None:
    """A relation with a primary key spanning all columns (set semantics)."""
    types = context.types_of(predicate)
    columns = ", ".join(f"c{i} {t}" for i, t in enumerate(types))
    key = ", ".join(f"c{i}" for i in range(len(types)))
    keyword = (
        "CREATE TEMPORARY TABLE"
        if context.database.temp_only
        else "CREATE TABLE"
    )
    context.database.execute(
        f"{keyword} {quote_identifier(name)} "
        f"({columns}, PRIMARY KEY ({key})) WITHOUT ROWID"
    )


def evaluate_clique_lfp_operator(
    context: EvaluationContext, clique: Clique
) -> LfpResult:
    """Least fixed point of ``clique`` via the in-DBMS operator strategy.

    The operator's storage layout is already fast-path-shaped (stable keyed
    relations, no per-iteration DDL, index-probe set semantics), so of the
    fast-path switches only iteration batching applies here.

    Raises:
        EvaluationError: if the loop hits
            :data:`repro.runtime.naive.MAX_ITERATIONS` before the deltas
            drain (the result would be a truncated fixed point).
    """
    capabilities = context.database.capabilities
    if not (
        capabilities.supports_without_rowid
        and capabilities.supports_changes_function
    ):
        # The operator's storage tricks (WITHOUT ROWID keys, INSERT OR
        # IGNORE, changes()) are SQLite dialect; on other engines the
        # portable iteration loop computes the same fixpoint.
        return evaluate_clique_seminaive(context, clique)
    predicates = sorted(clique.predicates)
    database = context.database
    tracer = context.tracer

    # The operator manages its own result relations (keyed), registered with
    # the context so downstream nodes and the answer join can read them.
    delta: dict[str, str] = {}
    previous: dict[str, str] = {}
    for predicate in predicates:
        if not context.has_table(predicate):
            result_name = f"d_{predicate}"
            database.drop_relation(result_name)
            _create_keyed_table(context, result_name, predicate)
            context.adopt_table(predicate, result_name)
        delta[predicate] = f"lfpdelta_{predicate}"
        previous[predicate] = f"lfpprev_{predicate}"
        for name in (delta[predicate], previous[predicate]):
            database.drop_relation(name)
        _create_keyed_table(context, delta[predicate], predicate)
        _create_keyed_table(context, previous[predicate], predicate)
        rows = context.seed_rows.get(predicate)
        if rows:
            columns = ", ".join("?" for __ in context.types_of(predicate))
            database.executemany(
                f"INSERT OR IGNORE INTO {quote_identifier(delta[predicate])} "
                f"VALUES ({columns})",
                rows,
            )

    compiled_exit = [(c, compile_rule_body(c)) for c in clique.exit_rules]
    compiled_recursive = [(c, compile_rule_body(c)) for c in clique.recursive_rules]

    def insert_select(head: str, select_sql: str, parameters: tuple) -> None:
        database.execute(
            f"INSERT OR IGNORE INTO {quote_identifier(delta[head])} {select_sql}",
            parameters,
        )

    def fold_deltas() -> int:
        """Purge known tuples, append the rest to the results, rotate deltas.

        Returns the number of genuinely new tuples (the termination signal,
        straight from ``changes()`` — no set-difference query).
        """
        produced = 0
        for predicate in predicates:
            arity = len(context.types_of(predicate))
            columns = ", ".join(f"c{i}" for i in range(arity))
            d = quote_identifier(delta[predicate])
            result = quote_identifier(context.table_of(predicate))
            database.execute(
                f"DELETE FROM {d} WHERE ({columns}) IN "
                f"(SELECT {columns} FROM {result})"
            )
            database.execute(f"INSERT OR IGNORE INTO {result} SELECT * FROM {d}")
            produced += int(database.execute("SELECT changes()")[0][0])
            # Rotate: delta becomes the previous-delta, an emptied table takes
            # its place (a catalog rename, not a copy).
            database.execute(f"DELETE FROM {quote_identifier(previous[predicate])}")
            delta[predicate], previous[predicate] = (
                previous[predicate],
                delta[predicate],
            )
        return produced

    # Seed iteration: context seeds (already in the deltas) plus exit rules.
    with tracer.span("iteration", category="iteration", iteration=1) as it_span:
        for clause, select in compiled_exit:
            tables = [context.table_of(p) for p in select.table_slots]
            insert_select(clause.head_predicate, select.render(tables), select.parameters)
        produced = fold_deltas()
        it_span.set("delta_tuples", produced)
        if tracer.enabled:
            tracer.metrics.histogram(
                "lfp.delta_tuples", (1, 10, 100, 1000, 10000)
            ).observe(produced)
            tracer.metrics.counter("lfp.iterations").inc()

    iterations = 1
    while produced:
        if iterations >= naive.MAX_ITERATIONS:
            raise non_convergence_error(
                "lfp_operator", clique, naive.MAX_ITERATIONS
            )
        iterations += 1
        with tracer.span(
            "iteration", category="iteration", iteration=iterations
        ) as it_span, context.iteration_scope():
            for clause, select in compiled_recursive:
                for index, predicate in enumerate(select.positive_predicates):
                    if predicate not in clique.predicates:
                        continue
                    tables = [
                        previous[p] if j == index else context.table_of(p)
                        for j, p in enumerate(select.table_slots)
                    ]
                    insert_select(
                        clause.head_predicate, select.render(tables), select.parameters
                    )
            produced = fold_deltas()
            it_span.set("delta_tuples", produced)
            if tracer.enabled:
                tracer.metrics.histogram(
                    "lfp.delta_tuples", (1, 10, 100, 1000, 10000)
                ).observe(produced)
                tracer.metrics.counter("lfp.iterations").inc()

    for predicate in predicates:
        database.drop_relation(delta[predicate])
        database.drop_relation(previous[predicate])

    sizes = {p: context.record_result_size(p) for p in predicates}
    context.counters.iterations_by_clique["+".join(predicates)] = iterations
    return LfpResult(iterations, sizes)
