"""The Run Time Library.

Bottom-up LFP evaluation strategies (naive, semi-naive) implemented as
embedded-SQL application programs, query-program execution over the
evaluation order list, plus the extension operators the paper's conclusions
call for (a generalized in-DBMS LFP operator and a specialised transitive
closure) and an independent top-down evaluator used as a correctness oracle.
"""

from .context import (
    PHASE_RHS_EVAL,
    PHASE_TEMP_TABLES,
    PHASE_TERMINATION,
    EvaluationContext,
    EvaluationCounters,
    FastPathConfig,
    derived_table_name,
)
from .counting import (
    CountingForm,
    CountingResult,
    counting_applies,
    evaluate_counting,
    recognize_counting_form,
)
from .lfp import evaluate_clique_lfp_operator
from .lfp_cte import (
    CteEligibility,
    cte_eligibility,
    evaluate_clique_lfp_cte,
)
from .naive import LfpResult, evaluate_clique_naive
from .parallel_sim import (
    SimulatedSchedule,
    lfp_phase_events,
    simulate_parallel_lfp,
    sweep_workers,
)
from .program import ExecutionResult, LfpStrategy, QueryProgram
from .relalg import evaluate_nonrecursive, evaluate_rule_into
from .seminaive import evaluate_clique_seminaive
from .topdown import TopDownEvaluator, evaluate_top_down
from .transitive_closure import (
    incremental_closure_update,
    reachable_from,
    transitive_closure_python,
    transitive_closure_sql,
)

__all__ = [
    "CountingForm",
    "CountingResult",
    "CteEligibility",
    "cte_eligibility",
    "EvaluationContext",
    "SimulatedSchedule",
    "counting_applies",
    "evaluate_counting",
    "lfp_phase_events",
    "recognize_counting_form",
    "simulate_parallel_lfp",
    "sweep_workers",
    "EvaluationCounters",
    "ExecutionResult",
    "FastPathConfig",
    "LfpResult",
    "LfpStrategy",
    "PHASE_RHS_EVAL",
    "PHASE_TEMP_TABLES",
    "PHASE_TERMINATION",
    "QueryProgram",
    "TopDownEvaluator",
    "derived_table_name",
    "evaluate_clique_lfp_cte",
    "evaluate_clique_lfp_operator",
    "evaluate_clique_naive",
    "evaluate_clique_seminaive",
    "evaluate_nonrecursive",
    "evaluate_rule_into",
    "evaluate_top_down",
    "incremental_closure_update",
    "reachable_from",
    "transitive_closure_python",
    "transitive_closure_sql",
]
