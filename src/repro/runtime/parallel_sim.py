"""Simulated parallel LFP evaluation (paper conclusions 5 and 7).

The paper claims two things about parallelism that its testbed could not
measure (no parallel database machine was available):

* **Conclusion 7** — LFP evaluation can be sped up significantly by
  evaluating the right-hand side of each recursive equation in parallel,
  with pipelined/parallel join processing;
* **Conclusion 5** — yet "the above inefficiencies cannot be overcome using
  parallelism alone": table copying and termination checking stay a serial
  bottleneck, so their *percentage* contribution only grows with the degree
  of parallelism.

We do not have a parallel database machine either, so — per the
reproduction's substitution rule — we *simulate* one: a real evaluation is
traced statement by statement (:class:`repro.dbms.engine.StatementEvent`),
then the trace is replayed under a k-worker schedule in which the
``rhs_eval`` statements of one iteration run concurrently (longest-
processing-time assignment) while everything else remains serial.  This is
an optimistic model (no contention, perfect balancing within LPT), so the
conclusions it supports are conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import heapq

from ..dbms.engine import StatementEvent
from ..obs.trace import StatementRecord, Tracer
from .context import PHASE_RHS_EVAL, PHASE_TEMP_TABLES, PHASE_TERMINATION

# The simulator only reads ``.phase`` and ``.seconds``, so it accepts both
# the Statistics trace (StatementEvent) and the observability layer's
# per-statement records (StatementRecord) interchangeably.
TraceEvent = Union[StatementEvent, StatementRecord]


@dataclass(frozen=True)
class SimulatedSchedule:
    """Outcome of replaying a trace on ``workers`` parallel units."""

    workers: int
    total_seconds: float
    parallel_seconds: float  # time spent in (parallelised) RHS evaluation
    serial_seconds: float  # temp tables, termination, everything else

    @property
    def serial_fraction(self) -> float:
        """Share of wall time spent in the non-parallelisable phases."""
        if not self.total_seconds:
            return 0.0
        return self.serial_seconds / self.total_seconds

    def speedup_over(self, baseline: "SimulatedSchedule") -> float:
        """Wall-clock speedup relative to ``baseline``."""
        if not self.total_seconds:
            return float("inf")
        return baseline.total_seconds / self.total_seconds


def _lpt_makespan(durations: list[float], workers: int) -> float:
    """Makespan of the longest-processing-time-first schedule."""
    if not durations:
        return 0.0
    if workers <= 1:
        return sum(durations)
    loads = [0.0] * workers
    heapq.heapify(loads)
    for duration in sorted(durations, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + duration)
    return max(loads)


def simulate_parallel_lfp(
    trace: Sequence[TraceEvent], workers: int
) -> SimulatedSchedule:
    """Replay ``trace`` with the RHS statements of each batch parallelised.

    Consecutive ``rhs_eval`` statements form one batch (one iteration's
    right-hand sides — paper 7a: "the right hand side of each recursive
    equation may be evaluated in parallel"); each batch is scheduled on
    ``workers`` units with LPT.  All other statements are replayed serially
    in order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    total = 0.0
    parallel = 0.0
    serial = 0.0
    batch: list[float] = []

    def flush_batch() -> None:
        nonlocal total, parallel
        if batch:
            makespan = _lpt_makespan(batch, workers)
            total += makespan
            parallel += makespan
            batch.clear()

    for event in trace:
        if event.phase == PHASE_RHS_EVAL:
            batch.append(event.seconds)
        else:
            flush_batch()
            total += event.seconds
            serial += event.seconds
    flush_batch()
    return SimulatedSchedule(workers, total, parallel, serial)


def sweep_workers(
    trace: Sequence[TraceEvent], worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16)
) -> list[SimulatedSchedule]:
    """Simulate the trace across several degrees of parallelism."""
    return [simulate_parallel_lfp(trace, k) for k in worker_counts]


def lfp_phase_events(trace: Sequence[TraceEvent]) -> list[TraceEvent]:
    """Only the events of the three LFP phases (drops setup/answer noise)."""
    wanted = (PHASE_RHS_EVAL, PHASE_TEMP_TABLES, PHASE_TERMINATION)
    return [e for e in trace if e.phase in wanted]


def simulate_from_tracer(tracer: Tracer, workers: int) -> SimulatedSchedule:
    """Replay the statement stream a :class:`~repro.obs.Tracer` collected."""
    return simulate_parallel_lfp(tracer.statements, workers)
