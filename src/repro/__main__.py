"""``python -m repro`` launches the User Interface REPL.

Subcommands:

* ``python -m repro lint ...`` — the rule-base static analyzer
  (:mod:`repro.analysis.cli`);
* ``python -m repro lint-concurrency ...`` — the lock-discipline checker
  for threaded code (:mod:`repro.analysis.concurrency.cli`);
* ``python -m repro trace ...`` — trace one query and export a Chrome
  trace (:mod:`repro.obs.cli`);
* ``python -m repro serve ...`` — the concurrent query server
  (:mod:`repro.server.cli`);
* ``python -m repro bench-serve ...`` — the server benchmarks;
* ``python -m repro bench-adaptive ...`` — the SLO-watchdog adaptive
  loop benchmark (detection/recovery time under injected degradation);
* ``python -m repro cluster ...`` — the sharded multi-process cluster
  (:mod:`repro.cluster.cli`);
* ``python -m repro bench-cluster ...`` — the cluster scaling benchmark;
  everything else goes to the REPL.
"""

import sys


def main(argv: "list[str] | None" = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if arguments and arguments[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(arguments[1:])
    if arguments and arguments[0] == "lint-concurrency":
        from .analysis.concurrency.cli import main as lint_concurrency_main

        return lint_concurrency_main(arguments[1:])
    if arguments and arguments[0] == "trace":
        from .obs.cli import main as trace_main

        return trace_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        from .server.cli import serve_main

        return serve_main(arguments[1:])
    if arguments and arguments[0] == "bench-serve":
        from .server.cli import bench_serve_main

        return bench_serve_main(arguments[1:])
    if arguments and arguments[0] == "bench-adaptive":
        from .server.cli import bench_adaptive_main

        return bench_adaptive_main(arguments[1:])
    if arguments and arguments[0] == "cluster":
        from .cluster.cli import cluster_main

        return cluster_main(arguments[1:])
    if arguments and arguments[0] == "bench-cluster":
        from .cluster.cli import bench_cluster_main

        return bench_cluster_main(arguments[1:])
    from .ui.repl import main as repl_main

    return repl_main(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
