"""``python -m repro`` launches the User Interface REPL."""

from .ui.repl import main

if __name__ == "__main__":
    raise SystemExit(main())
