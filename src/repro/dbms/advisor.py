"""The fast-path index advisor (paper conclusion 6c).

The paper argues the DBMS should "adapt access paths to the relation sizes";
its testbed could not, because the derived and delta relations live outside
the catalog the commercial DBMS indexes.  This module closes that gap: given
the compiled SELECTs of a clique, it derives which columns of the derived
relations participate in join equalities (from
:attr:`repro.dbms.sqlgen.CompiledSelect.join_columns`) and proposes indexes —
plus one full-row *set-membership* index per result relation, which serves
the ``EXCEPT`` / ``IN (SELECT …)`` set-difference probes that dominate the
paper's Test 6 termination costs.

The advisor only proposes; :func:`apply_index_advice` creates.  The LFP
strategies consult it once, before the iteration loop, and only when the
evaluation context's fast path enables it — so the benchmarks can measure
the crossover between index maintenance cost and probe savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .engine import Database
from .schema import column_name
from .sqlgen import CompiledSelect


@dataclass(frozen=True)
class IndexAdvice:
    """One proposed index on a derived or delta relation."""

    table: str
    columns: tuple[str, ...]

    @property
    def index_name(self) -> str:
        """Deterministic index name (stable across advisor runs)."""
        return f"fpidx_{self.table}_{'_'.join(self.columns)}"


def join_column_advice(
    selects: Iterable[CompiledSelect], predicate: str, table: str
) -> list[IndexAdvice]:
    """Indexes covering ``predicate``'s join columns wherever it occurs.

    Every slot of every compiled select that reads ``predicate`` contributes
    its join-equality columns; each distinct column combination becomes one
    proposed index on ``table``.
    """
    combinations: set[tuple[str, ...]] = set()
    for select in selects:
        for slot, slot_predicate in enumerate(select.table_slots):
            if slot_predicate != predicate:
                continue
            positions = select.join_columns_of(slot)
            if positions:
                combinations.add(tuple(column_name(i) for i in positions))
    return [IndexAdvice(table, columns) for columns in sorted(combinations)]


def set_membership_advice(table: str, arity: int) -> IndexAdvice:
    """A full-row index turning set-difference probes into index lookups."""
    return IndexAdvice(table, tuple(column_name(i) for i in range(arity)))


def advise_clique_indexes(
    selects: Sequence[CompiledSelect],
    predicates: Iterable[str],
    table_of: Callable[[str], str],
    arity_of: Callable[[str], int],
) -> list[IndexAdvice]:
    """Index advice for one clique's derived result relations.

    For each clique predicate: its join-column indexes (from every rule body
    that reads it) plus the full-row set-membership index.  Advice whose
    columns are a prefix of another retained index on the same table is
    dropped — the wider index already serves those lookups.
    """
    advice: list[IndexAdvice] = []
    for predicate in sorted(set(predicates)):
        table = table_of(predicate)
        proposed = join_column_advice(selects, predicate, table)
        proposed.append(set_membership_advice(table, arity_of(predicate)))
        advice.extend(proposed)
    return _drop_redundant_prefixes(advice)


def _drop_redundant_prefixes(advice: list[IndexAdvice]) -> list[IndexAdvice]:
    kept: list[IndexAdvice] = []
    for candidate in advice:
        if any(
            other is not candidate
            and other.table == candidate.table
            and other.columns[: len(candidate.columns)] == candidate.columns
            and len(other.columns) > len(candidate.columns)
            for other in advice
        ):
            continue
        if candidate not in kept:
            kept.append(candidate)
    return kept


def apply_index_advice(
    database: Database, advice: Iterable[IndexAdvice]
) -> int:
    """Create every advised index (idempotently); return how many."""
    count = 0
    for item in advice:
        database.create_index(item.index_name, item.table, item.columns)
        count += 1
    return count
