"""The extensional data dictionary: base relations and their column types.

The paper's testbed stores facts as ordinary database relations and keeps
their schemas in catalog relations.  :class:`ExtensionalCatalog` manages the
fact tables (named ``e_<predicate>``) and the dictionary tables
``epredicates``/``ecolumns``, which the Knowledge Manager reads during type
checking.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import CatalogError
from .engine import Database
from .schema import RelationSchema, quote_identifier

EPREDICATES = "epredicates"
ECOLUMNS = "ecolumns"
FACT_TABLE_PREFIX = "e_"


def fact_table_name(predicate: str) -> str:
    """Physical table name holding the facts of ``predicate``."""
    return f"{FACT_TABLE_PREFIX}{predicate}"


class ExtensionalCatalog:
    """Manages base relations and the extensional data dictionary."""

    def __init__(self, database: Database):
        self.database = database
        self._ensure_dictionary()

    def _ensure_dictionary(self) -> None:
        if self.database.table_exists(EPREDICATES):
            return
        self.database.execute(
            f"CREATE TABLE {EPREDICATES} ("
            "predname TEXT PRIMARY KEY, arity INTEGER NOT NULL)"
        )
        self.database.execute(
            f"CREATE TABLE {ECOLUMNS} ("
            "predname TEXT NOT NULL, colnumber INTEGER NOT NULL, "
            "coltype TEXT NOT NULL, PRIMARY KEY (predname, colnumber))"
        )
        # The paper indexes its dictionary relations so dictionary reads stay
        # insensitive to catalog size (Test 2).
        self.database.create_index("idx_ecolumns_pred", ECOLUMNS, ["predname"])
        self.database.commit()

    def create_relation(
        self, predicate: str, types: Sequence[str], indexed: bool = True
    ) -> RelationSchema:
        """Create a base relation and register it in the dictionary.

        Args:
            predicate: logical predicate name.
            types: SQL column types.
            indexed: create per-column indexes (on by default; the paper's
                join-heavy workloads depend on indexed base relations).

        Raises:
            CatalogError: when the predicate already exists.
        """
        if self.has_relation(predicate):
            raise CatalogError(f"base relation {predicate!r} already exists")
        schema = RelationSchema(fact_table_name(predicate), tuple(types))
        self.database.create_relation(schema)
        self.database.execute(
            f"INSERT INTO {EPREDICATES} VALUES (?, ?)", (predicate, schema.arity)
        )
        self.database.executemany(
            f"INSERT INTO {ECOLUMNS} VALUES (?, ?, ?)",
            [(predicate, i, t) for i, t in enumerate(schema.types)],
        )
        if indexed:
            for position, column in enumerate(schema.columns):
                self.database.create_index(
                    f"idx_{schema.name}_{position}", schema.name, [column]
                )
        self.database.commit()
        return schema

    def drop_relation(self, predicate: str) -> None:
        """Drop a base relation and de-register it.

        Raises:
            CatalogError: when the predicate does not exist.
        """
        if not self.has_relation(predicate):
            raise CatalogError(f"base relation {predicate!r} does not exist")
        self.database.drop_relation(fact_table_name(predicate))
        self.database.execute(
            f"DELETE FROM {EPREDICATES} WHERE predname = ?", (predicate,)
        )
        self.database.execute(
            f"DELETE FROM {ECOLUMNS} WHERE predname = ?", (predicate,)
        )
        self.database.commit()

    def has_relation(self, predicate: str) -> bool:
        """Whether ``predicate`` is a registered base relation."""
        rows = self.database.execute(
            f"SELECT 1 FROM {EPREDICATES} WHERE predname = ?", (predicate,)
        )
        return bool(rows)

    def relation_names(self) -> list[str]:
        """All registered base predicates, sorted."""
        rows = self.database.execute(
            f"SELECT predname FROM {EPREDICATES} ORDER BY predname"
        )
        return [name for (name,) in rows]

    def schema_of(self, predicate: str) -> RelationSchema:
        """Schema of a base relation.

        Raises:
            CatalogError: when the predicate does not exist.
        """
        rows = self.database.execute(
            f"SELECT coltype FROM {ECOLUMNS} WHERE predname = ? ORDER BY colnumber",
            (predicate,),
        )
        if not rows:
            raise CatalogError(f"base relation {predicate!r} does not exist")
        return RelationSchema(fact_table_name(predicate), tuple(t for (t,) in rows))

    def types_of(self, predicates: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """Column types of several base relations at once.

        This is the dictionary read the paper times as ``t_readdict`` — a
        single join-style query over the (indexed) dictionary relations.
        """
        wanted = sorted(set(predicates))
        if not wanted:
            return {}
        placeholders = ", ".join("?" for __ in wanted)
        rows = self.database.execute(
            f"SELECT p.predname, c.colnumber, c.coltype "
            f"FROM {EPREDICATES} AS p, {ECOLUMNS} AS c "
            f"WHERE p.predname = c.predname AND p.predname IN ({placeholders}) "
            f"ORDER BY p.predname, c.colnumber",
            wanted,
        )
        out: dict[str, list[str]] = {}
        for predicate, __, coltype in rows:
            out.setdefault(predicate, []).append(coltype)
        return {p: tuple(ts) for p, ts in out.items()}

    def insert_facts(self, predicate: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load fact tuples into a base relation."""
        schema = self.schema_of(predicate)
        count = self.database.insert_rows(schema, rows)
        self.database.commit()
        return count

    def delete_facts(self, predicate: str) -> None:
        """Remove all tuples from a base relation, keeping its schema."""
        schema = self.schema_of(predicate)
        self.database.execute(f"DELETE FROM {quote_identifier(schema.name)}")
        self.database.commit()

    def delete_rows(self, predicate: str, rows: Iterable[Sequence]) -> int:
        """Delete specific fact tuples from a base relation.

        Every stored copy of each listed tuple is removed (base relations
        keep duplicates on insert).  Returns the number of rows deleted.
        """
        schema = self.schema_of(predicate)
        condition = " AND ".join(f"{c} = ?" for c in schema.columns)
        count = self.database.executemany(
            f"DELETE FROM {quote_identifier(schema.name)} WHERE {condition}",
            [tuple(row) for row in rows],
        )
        self.database.commit()
        return count

    def fact_count(self, predicate: str) -> int:
        """Number of tuples stored for ``predicate``."""
        return self.database.row_count(fact_table_name(predicate))

    def facts_of(self, predicate: str) -> list[tuple]:
        """All tuples of a base relation."""
        self.schema_of(predicate)  # raises CatalogError when missing
        return self.database.fetch_all(fact_table_name(predicate))
