"""Translation of Horn clause rule bodies into SQL SELECT statements.

This is the heart of the compilation approach: evaluating the body of a rule
``p(t̄) :- q1, ..., qn`` over materialised relations for the ``qi`` is exactly
a project-select-join query.  The Code Generator emits one SELECT per rule
(paper section 3.2.6: "the SQL query to evaluate the body of each rule"), and
the run-time library executes them — possibly with some body occurrences
redirected to delta relations during semi-naive evaluation.

All relations use positional columns ``c0..``; every generated query is
parameterised (constants travel as ``?`` parameters, never spliced into SQL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..errors import CodeGenerationError
from ..datalog.clauses import Clause
from ..datalog.terms import Atom, Constant, Variable
from .schema import column_name, quote_identifier


@dataclass(frozen=True)
class CompiledSelect:
    """One rule body compiled to SQL.

    ``sql`` contains ``{N}``-style placeholders — ``{0}``, ``{1}``, … — one
    per *table slot*, to be substituted with concrete table names at
    execution time via :meth:`render`.  This lets semi-naive evaluation run
    the same compiled query against full or delta relations without
    recompiling.  ``table_slots`` names the predicate behind each slot: the
    positive body atoms in body order first, then the negated atoms (whose
    slots feed the ``NOT EXISTS`` subqueries).  ``positive_count`` says how
    many leading slots are positive — only those participate in semi-naive
    delta substitution.  ``parameters`` are the constant values, in order.
    """

    sql: str
    parameters: tuple[Any, ...]
    table_slots: tuple[str, ...]
    positive_count: int
    # Per table slot, the column positions participating in cross-atom
    # equality predicates (shared-variable joins and negation bindings) —
    # the raw material for the fast-path index advisor.
    join_columns: tuple[tuple[int, ...], ...] = ()

    def join_columns_of(self, slot: int) -> tuple[int, ...]:
        """Join-equality column positions of one table slot."""
        if slot < len(self.join_columns):
            return self.join_columns[slot]
        return ()

    @property
    def positive_predicates(self) -> tuple[str, ...]:
        """Predicates of the positive body atoms, in body order."""
        return self.table_slots[: self.positive_count]

    def render(self, tables: Sequence[str]) -> str:
        """Substitute concrete table names for the positional placeholders.

        Args:
            tables: one table name per slot (positive atoms first, then
                negated atoms), in :attr:`table_slots` order.
        """
        if len(tables) != len(self.table_slots):
            raise CodeGenerationError(
                f"expected {len(self.table_slots)} table names, "
                f"got {len(tables)}"
            )
        quoted = [quote_identifier(t) for t in tables]
        return self.sql.format(*quoted)

    def render_with(self, table_of: Mapping[str, str]) -> str:
        """Render using a predicate-to-table mapping."""
        return self.render([table_of[p] for p in self.table_slots])


def compile_rule_body(clause: Clause) -> CompiledSelect:
    """Compile the body of ``clause`` into a SELECT producing its head tuple.

    * Positive body atoms become entries in the FROM list (placeholder table
      names, aliased ``t0, t1, ...`` by body position).
    * Shared variables become join equalities against the variable's first
      positive occurrence.
    * Constants become parameterised equality predicates.
    * Negated atoms become ``NOT EXISTS`` subqueries (their placeholder index
      still counts — the subquery table is positional too).
    * The head terms become the select list; ``SELECT DISTINCT`` performs the
      duplicate elimination relational projection requires.

    Raises:
        CodeGenerationError: for bodies SQL cannot express — an empty positive
            body, or a head/negated variable with no positive occurrence
            (i.e. an unsafe rule; run the safety check first for a friendlier
            error).
    """
    positive = [a for a in clause.body if not a.negated]
    negated = [a for a in clause.body if a.negated]
    if not positive:
        raise CodeGenerationError(
            f"rule {clause} has no positive body atom; cannot compile to SQL"
        )

    placeholders: list[str] = []
    from_items: list[str] = []
    where: list[str] = []
    parameters: list[Any] = []
    location: dict[Variable, str] = {}
    # Where each variable first occurred, as (slot, column position), and the
    # per-slot join columns accumulated for the index advisor.
    first_occurrence: dict[Variable, tuple[int, int]] = {}
    join_columns: list[set[int]] = []

    where_const: list[str] = []
    params_const: list[Any] = []
    for index, atom in enumerate(positive):
        alias = f"t{index}"
        placeholder = f"{{{len(placeholders)}}}"
        placeholders.append(atom.predicate)
        join_columns.append(set())
        from_items.append(f"{placeholder} AS {alias}")
        for position, term in enumerate(atom.terms):
            column = f"{alias}.{column_name(position)}"
            if isinstance(term, Constant):
                where_const.append(f"{column} = ?")
                params_const.append(term.value)
            else:
                first = location.get(term)
                if first is None:
                    location[term] = column
                    first_occurrence[term] = (index, position)
                else:
                    where.append(f"{column} = {first}")
                    join_columns[index].add(position)
                    first_slot, first_position = first_occurrence[term]
                    join_columns[first_slot].add(first_position)

    # Join equalities first, then constant filters, for readable SQL; the
    # parameter list must follow textual ? order, so constants come last.
    where.extend(where_const)
    parameters.extend(params_const)

    for atom in negated:
        subquery, sub_params = _not_exists(
            atom, location, len(placeholders)
        )
        placeholders.append(atom.predicate)
        # The anti-join probes the negated relation by its variable-bound
        # columns, so those count as join columns for its slot.
        join_columns.append(
            {
                position
                for position, term in enumerate(atom.terms)
                if isinstance(term, Variable)
            }
        )
        where.append(subquery)
        parameters.extend(sub_params)

    select_items: list[str] = []
    for position, term in enumerate(clause.head.terms):
        if isinstance(term, Constant):
            select_items.append(f"? AS {column_name(position)}")
            # SQLite binds parameters in textual order; constants in the
            # select list precede the WHERE clause parameters.
        else:
            bound = location.get(term)
            if bound is None:
                raise CodeGenerationError(
                    f"head variable {term} of {clause} has no positive body "
                    "occurrence (unsafe rule)"
                )
            select_items.append(f"{bound} AS {column_name(position)}")

    if not select_items:
        # A fully ground head (boolean query): emit a witness column; the
        # caller maps any row to "true".
        select_items.append("1 AS truth")

    head_constants = [
        t.value for t in clause.head.terms if isinstance(t, Constant)
    ]
    all_parameters = tuple(head_constants) + tuple(parameters)

    sql = "SELECT DISTINCT " + ", ".join(select_items)
    sql += " FROM " + ", ".join(from_items)
    if where:
        sql += " WHERE " + " AND ".join(where)
    return CompiledSelect(
        sql,
        all_parameters,
        tuple(placeholders),
        len(positive),
        tuple(tuple(sorted(columns)) for columns in join_columns),
    )


def _not_exists(
    atom: Atom, location: Mapping[Variable, str], placeholder_index: int
) -> tuple[str, list[Any]]:
    """A NOT EXISTS clause for a negated atom bound by outer columns."""
    alias = "n"
    conditions: list[str] = []
    parameters: list[Any] = []
    for position, term in enumerate(atom.terms):
        column = f"{alias}.{column_name(position)}"
        if isinstance(term, Constant):
            conditions.append(f"{column} = ?")
            parameters.append(term.value)
        else:
            bound = location.get(term)
            if bound is None:
                raise CodeGenerationError(
                    f"variable {term} of negated atom {atom} has no positive "
                    "occurrence (unsafe rule)"
                )
            conditions.append(f"{column} = {bound}")
    body = f"SELECT 1 FROM {{{placeholder_index}}} AS {alias}"
    if conditions:
        body += " WHERE " + " AND ".join(conditions)
    return f"NOT EXISTS ({body})", parameters


def insert_new_tuples_sql(
    target: str, source_select: str, target_arity: int
) -> str:
    """INSERT INTO target the select's rows that are not already present.

    Used by both naive and semi-naive evaluation to grow a derived relation
    while keeping it a set.  The EXCEPT forces the DBMS-level set difference
    the paper identifies as a major cost of the SQL interface.
    """
    columns = ", ".join(column_name(i) for i in range(target_arity))
    quoted = quote_identifier(target)
    return (
        f"INSERT INTO {quoted} ({columns}) "
        f"{source_select} EXCEPT SELECT {columns} FROM {quoted}"
    )


def difference_sql(left: str, right: str, arity: int) -> str:
    """SELECT of rows in ``left`` but not in ``right`` (full set difference)."""
    columns = ", ".join(column_name(i) for i in range(arity))
    return (
        f"SELECT {columns} FROM {quote_identifier(left)} "
        f"EXCEPT SELECT {columns} FROM {quote_identifier(right)}"
    )


def copy_sql(target: str, source: str, arity: int) -> str:
    """INSERT copying every row of ``source`` into ``target``."""
    columns = ", ".join(column_name(i) for i in range(arity))
    return (
        f"INSERT INTO {quote_identifier(target)} ({columns}) "
        f"SELECT {columns} FROM {quote_identifier(source)}"
    )
