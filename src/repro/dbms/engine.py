"""The DBMS layer: an instrumented embedded-SQL interface.

The paper's testbed talks to "a commercial relational database management
system with SQL and embedded SQL (in C) interfaces"; every interaction goes
through SQL statements, and the paper's measurements attribute costs to those
statements (temporary-table create/drop, right-hand-side evaluation, full
set-difference termination checks).  :class:`Database` reproduces that
interface and instruments it: every statement is counted, timed, and
attributed to the innermost named *phase*, so the experiment harness can
produce the paper's breakdown tables.

Which engine sits underneath is a :class:`~repro.dbms.backends.SqlBackend`
(default: SQLite); everything driver-specific — connection setup, exception
types, catalog probes, dialect capabilities — lives behind that interface,
and the instrumentation here is engine-neutral.
"""

from __future__ import annotations

import contextlib
import itertools
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from ..errors import EvaluationError
from ..obs.trace import StatementRecord, Tracer
from .backends import BackendCapabilities, SqlBackend, get_backend
from .schema import RelationSchema, quote_identifier

_STATEMENT_KIND_RE = re.compile(r"\s*([A-Za-z]+)")

# Temporary-table names must be unique across every Database instance in the
# process *and* across threads: two handles opened on the same on-disk file
# share the table namespace, and two threads drawing names concurrently must
# never observe the same counter value.  The lock makes the draw atomic
# regardless of interpreter implementation details.
_TEMP_NAME_LOCK = threading.Lock()
_TEMP_NAME_COUNTER = itertools.count(1)

DEFAULT_STATEMENT_CACHE_SIZE = 128


@dataclass(frozen=True)
class ConnectionOptions:
    """How the underlying SQLite connection is opened and journalled.

    The defaults reproduce the seed single-session behaviour exactly
    (``journal_mode = MEMORY``, same-thread enforcement, permanent derived
    relations).  The concurrent query server opens its pooled handles with
    :meth:`writer` / :meth:`reader` instead.

    Attributes:
        wal: open the database in write-ahead-log journal mode, the mode
            that lets one writer commit while readers hold consistent
            snapshots.  Requires an on-disk path (``:memory:`` databases
            have no WAL).
        busy_timeout_ms: how long SQLite retries a locked database before
            giving up (``PRAGMA busy_timeout``); ``0`` keeps SQLite's
            fail-fast default.
        check_same_thread: forwarded to :func:`sqlite3.connect`.  ``False``
            lets a pooled handle be checked out by different threads over
            its lifetime (each checkout still uses it from one thread at a
            time).
        temp_derived: create every derived/scratch relation in the
            per-connection ``temp`` namespace instead of the shared main
            database.  Reader sessions of the query server set this so a
            read query physically cannot write the shared file — its
            ``d_*`` result relations and LFP scratch tables live (and
            shadow any same-named main-database leftovers) in connection-
            private storage.
    """

    wal: bool = False
    busy_timeout_ms: int = 0
    check_same_thread: bool = True
    temp_derived: bool = False

    @classmethod
    def writer(cls, busy_timeout_ms: int = 10_000) -> "ConnectionOptions":
        """Options for the query server's single writer session."""
        return cls(wal=True, busy_timeout_ms=busy_timeout_ms, check_same_thread=False)

    @classmethod
    def reader(cls, busy_timeout_ms: int = 10_000) -> "ConnectionOptions":
        """Options for a pooled reader session (snapshot reads only)."""
        return cls(
            wal=True,
            busy_timeout_ms=busy_timeout_ms,
            check_same_thread=False,
            temp_derived=True,
        )


class StatementCache:
    """An LRU cache of prepared statements (cursors), keyed on SQL text.

    The paper's embedded-SQL programs re-prepare the same statements every
    LFP iteration; the fast-path layer keeps the prepared form (a dedicated
    :class:`sqlite3.Cursor`, which pins the compiled statement in the
    connection's statement cache) alive across executions.  Hits and misses
    are counted so the benchmarks can report cache effectiveness.
    """

    def __init__(self, capacity: int = DEFAULT_STATEMENT_CACHE_SIZE):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._cursors: OrderedDict[str, Any] = OrderedDict()  # guarded-by: _lock
        # Lookup, counter update, and eviction must be one atomic step when
        # several threads share the owning Database handle.
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._cursors)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def cursor_for(self, connection: Any, sql: str) -> tuple[Any, bool]:
        """The cached cursor for ``sql`` (creating one), plus hit/miss."""
        with self._lock:
            cursor = self._cursors.get(sql)
            if cursor is not None:
                self._cursors.move_to_end(sql)
                self.hits += 1
                return cursor, True
            self.misses += 1
            cursor = connection.cursor()
            self._cursors[sql] = cursor
            evicted: list[Any] = []
            while len(self._cursors) > self.capacity:
                __, victim = self._cursors.popitem(last=False)
                evicted.append(victim)
        for victim in evicted:
            victim.close()
        return cursor, False

    def clear(self) -> None:
        """Drop every cached cursor (counters survive)."""
        with self._lock:
            cursors = list(self._cursors.values())
            self._cursors.clear()
        for cursor in cursors:
            with contextlib.suppress(Exception):
                cursor.close()


@dataclass
class PhaseStats:
    """Accumulated statement counts, rows, and wall time for one phase."""

    statements: int = 0
    rows_fetched: int = 0
    rows_changed: int = 0
    seconds: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def record(
        self,
        kind: str,
        seconds: float,
        fetched: int,
        changed: int,
        cache_hit: bool | None = None,
    ) -> None:
        """Fold one statement execution into the totals.

        ``cache_hit`` reports the statement-cache outcome (``None`` when the
        statement bypassed the cache, e.g. the cache is disabled).
        """
        self.statements += 1
        self.seconds += seconds
        self.rows_fetched += fetched
        self.rows_changed += changed
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if cache_hit is True:
            self.cache_hits += 1
        elif cache_hit is False:
            self.cache_misses += 1

    def merged_with(self, other: "PhaseStats") -> "PhaseStats":
        """A new PhaseStats combining both operands."""
        merged = PhaseStats(
            self.statements + other.statements,
            self.rows_fetched + other.rows_fetched,
            self.rows_changed + other.rows_changed,
            self.seconds + other.seconds,
            dict(self.by_kind),
            self.cache_hits + other.cache_hits,
            self.cache_misses + other.cache_misses,
        )
        for kind, count in other.by_kind.items():
            merged.by_kind[kind] = merged.by_kind.get(kind, 0) + count
        return merged


@dataclass(frozen=True)
class StatementEvent:
    """One executed statement, for trace-based analyses.

    The parallel-evaluation simulator (paper conclusion 7) replays these
    events under hypothetical schedules.
    """

    phase: str
    kind: str
    seconds: float


class Statistics:
    """Per-phase statement statistics for one :class:`Database`.

    Phases nest; a statement is attributed to the innermost active phase (or
    ``"(none)"`` outside any phase).  The experiment harness resets the
    statistics before a measured operation and reads them afterwards.

    With :meth:`enable_trace` every statement is additionally recorded as a
    :class:`StatementEvent`, in execution order.
    """

    DEFAULT_PHASE = "(none)"

    def __init__(self) -> None:
        self._phases: dict[str, PhaseStats] = {}
        self._stack: list[str] = []
        self._trace: list[StatementEvent] | None = None

    def reset(self) -> None:
        """Drop all accumulated numbers (the phase stack survives)."""
        self._phases.clear()
        if self._trace is not None:
            self._trace = []

    def enable_trace(self) -> None:
        """Start recording per-statement events (cleared by :meth:`reset`)."""
        self._trace = []

    def disable_trace(self) -> None:
        """Stop recording and drop any recorded events."""
        self._trace = None

    @property
    def trace(self) -> list[StatementEvent]:
        """The recorded statement events (empty unless tracing is enabled)."""
        return list(self._trace or ())

    @property
    def current_phase(self) -> str:
        """Name of the innermost active phase."""
        return self._stack[-1] if self._stack else self.DEFAULT_PHASE

    def push(self, phase: str) -> None:
        """Enter a named phase."""
        self._stack.append(phase)

    def pop(self) -> None:
        """Leave the innermost phase."""
        if self._stack:
            self._stack.pop()

    def record(
        self,
        kind: str,
        seconds: float,
        fetched: int,
        changed: int,
        cache_hit: bool | None = None,
    ) -> None:
        """Attribute one statement to the current phase."""
        phase = self._phases.setdefault(self.current_phase, PhaseStats())
        phase.record(kind, seconds, fetched, changed, cache_hit)
        if self._trace is not None:
            self._trace.append(
                StatementEvent(self.current_phase, kind, seconds)
            )

    def on_statement(self, record: StatementRecord) -> None:
        """Sink adapter over the observability event stream.

        :meth:`Database.execute` feeds Statistics directly through
        :meth:`record` on the hot path; this adapter formalises that
        Statistics is just another sink over the same per-statement events
        the :class:`~repro.obs.Tracer` consumes.
        """
        self.record(
            record.kind,
            record.seconds,
            record.rows_fetched,
            record.rows_changed,
            record.cache_hit,
        )

    def record_span(self, phase: str, seconds: float) -> None:
        """Attribute non-statement wall time to ``phase``.

        Pure-CPU work that issues no SQL (e.g. the ``lint`` phase of query
        compilation) still shows up in the per-phase breakdown this way —
        with zero statements, only seconds.
        """
        self._phases.setdefault(phase, PhaseStats()).seconds += seconds

    def phase(self, name: str) -> PhaseStats:
        """The statistics bucket for ``name`` (empty bucket if unused)."""
        return self._phases.get(name, PhaseStats())

    def phases(self) -> dict[str, PhaseStats]:
        """All phase buckets, by name."""
        return dict(self._phases)

    @property
    def total(self) -> PhaseStats:
        """All phases folded together."""
        total = PhaseStats()
        for stats in self._phases.values():
            total = total.merged_with(stats)
        return total


class Database:
    """An instrumented SQL database posing as the testbed's DBMS.

    All access must go through :meth:`execute` / the helpers built on it, so
    the statistics see every statement — the testbed's analogue of embedded
    SQL being the only path to the commercial DBMS.
    """

    def __init__(
        self,
        path: str = ":memory:",
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        options: ConnectionOptions | None = None,
        backend: "str | SqlBackend | None" = None,
    ):
        """Open the database.

        Args:
            path: database path (default: a private in-memory database).
            statement_cache_size: capacity of the prepared-statement LRU
                cache; ``0`` disables caching (every statement re-prepares,
                the seed behaviour the fast-path A/B benchmark compares
                against).  Forced off on backends whose cursors do not
                share connection state (``supports_shared_cursors``).
            options: connection-level knobs (journal mode, busy timeout,
                thread affinity, private derived relations); the default
                reproduces the seed single-session behaviour.
            backend: which engine to open — a registry name
                (``"sqlite"``, ``"duckdb"``), a
                :class:`~repro.dbms.backends.SqlBackend` instance, or
                ``None`` for the default SQLite backend.
        """
        self.backend = get_backend(backend)
        self.options = options if options is not None else ConnectionOptions()
        self._connection = self.backend.connect(path, self.options)
        # One statement at a time per handle: DB-API cursors are not
        # re-entrant, so when a handle is shared across threads
        # (check_same_thread=False) the execute/record step must be atomic.
        self._execute_lock = threading.RLock()  # serializes: one statement at a time is the point
        # Statistics.record() runs under _execute_lock; the phase stack is
        # driven by the single controlling thread between statements.
        self.statistics = Statistics()  # not-shared: record() is under _execute_lock, phases are single-threaded
        self.statement_cache: StatementCache | None = (
            StatementCache(statement_cache_size)
            if statement_cache_size
            and self.backend.capabilities.supports_shared_cursors
            else None
        )
        self._in_explicit_transaction = False  # not-shared: only the single writer batches transactions
        # Optional observability sink (see repro.obs).  ``None`` when tracing
        # is disabled — the hot path then pays one attribute test and nothing
        # else, so paper-faithful timings are untouched.
        self._tracer: Tracer | None = None  # not-shared: installed before the handle is shared

    @property
    def capabilities(self) -> BackendCapabilities:
        """Feature flags of the engine underneath this handle."""
        return self.backend.capabilities

    @property
    def tracer(self) -> Tracer | None:
        """The installed observability sink, if any."""
        return self._tracer

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Install (or remove, with ``None``) the observability sink."""
        self._tracer = tracer

    def close(self) -> None:
        """Close the underlying connection."""
        if self.statement_cache is not None:
            self.statement_cache.clear()
        self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute statements inside the block to phase ``name``."""
        self.statistics.push(name)
        try:
            yield
        finally:
            self.statistics.pop()

    def execute(
        self, sql: str, parameters: Sequence[Any] = ()
    ) -> list[tuple]:
        """Run one statement; return fetched rows (empty for non-queries).

        Raises:
            EvaluationError: wrapping any driver-level error.
        """
        kind = self._statement_kind(sql)
        cache_hit: bool | None = None
        with self._execute_lock:
            started = time.perf_counter()
            try:
                if self.statement_cache is not None:
                    cursor, cache_hit = self.statement_cache.cursor_for(
                        self._connection, sql
                    )
                    cursor.execute(sql, tuple(parameters))
                else:
                    cursor = self._connection.execute(sql, tuple(parameters))
                rows = cursor.fetchall() if cursor.description is not None else []
            except self.backend.driver_errors as error:
                raise EvaluationError(f"SQL failed: {error}\n  {sql}") from error
            elapsed = time.perf_counter() - started
            # Drivers without DML row counts (DuckDB) report -1 or omit the
            # attribute entirely; record 0 rather than guessing.
            rowcount = getattr(cursor, "rowcount", -1)
            changed = rowcount if rowcount > 0 else 0
            self.statistics.record(kind, elapsed, len(rows), changed, cache_hit)
        if self._tracer is not None:
            self._tracer.on_statement(
                StatementRecord(
                    phase=self.statistics.current_phase,
                    sql=sql,
                    kind=kind,
                    seconds=elapsed,
                    rows_fetched=len(rows),
                    rows_changed=changed,
                    cache_hit=cache_hit,
                    parameters=tuple(parameters),
                ),
                self,
            )
        return rows

    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> int:
        """Run one parameterised statement over many rows; return row count."""
        kind = self._statement_kind(sql)
        cache_hit: bool | None = None
        rows = list(rows)
        with self._execute_lock:
            started = time.perf_counter()
            try:
                if self.statement_cache is not None:
                    cursor, cache_hit = self.statement_cache.cursor_for(
                        self._connection, sql
                    )
                    cursor.executemany(sql, rows)
                else:
                    cursor = self._connection.executemany(sql, rows)
            except self.backend.driver_errors as error:
                raise EvaluationError(f"SQL failed: {error}\n  {sql}") from error
            elapsed = time.perf_counter() - started
            # sqlite3 reports -1 ("not applicable") for some statements; only
            # then fall back to the submitted row count.  A genuine 0 — e.g.
            # an UPDATE matching nothing — must stay 0.
            rowcount = getattr(cursor, "rowcount", -1)
            changed = rowcount if rowcount >= 0 else len(rows)
            self.statistics.record(kind, elapsed, 0, changed, cache_hit)
        if self._tracer is not None:
            self._tracer.on_statement(
                StatementRecord(
                    phase=self.statistics.current_phase,
                    sql=sql,
                    kind=kind,
                    seconds=elapsed,
                    rows_fetched=0,
                    rows_changed=changed,
                    cache_hit=cache_hit,
                    parameters=tuple(rows[0]) if rows else (),
                ),
                self,
            )
        return changed

    def commit(self) -> None:
        """Commit the current transaction.

        Inside an explicit :meth:`transaction` block this is a no-op: the
        inner operation joins the enclosing transaction, which commits (or
        rolls back) as one unit when the block exits.  That is what lets
        the query server apply a base-table change and its D/KB version
        bump atomically even though the individual operations commit when
        run stand-alone.
        """
        if self._in_explicit_transaction:
            return
        self.backend.commit(self._connection)

    def interrupt(self) -> None:
        """Abort any statement running on this handle (thread-safe).

        The interrupted statement raises
        :class:`~repro.errors.EvaluationError`; the query server's
        per-request timeout uses this to cancel overrunning work.  A no-op
        on backends without ``supports_interrupt``.
        """
        self.backend.interrupt(self._connection)

    def rollback(self) -> None:
        """Roll back the current transaction."""
        self.backend.rollback(self._connection)

    def snapshot_to(self, dest_path: str) -> None:
        """Copy a consistent snapshot of this database into ``dest_path``.

        The cluster's replication transport: a replica file is refreshed by
        copying the primary's current committed state, atomically from the
        perspective of the replica's own readers.  Goes through the backend
        interface so a second engine only needs to implement
        ``SqlBackend.snapshot_to`` to gain replicas.

        Raises:
            EvaluationError: the backend has no snapshot-copy support
                (``supports_snapshot_copy``), or the copy failed.
        """
        if not self.backend.capabilities.supports_snapshot_copy:
            raise EvaluationError(
                f"backend {self.backend.name!r} does not support "
                "snapshot copy"
            )
        with self._execute_lock:
            try:
                self.backend.snapshot_to(self._connection, dest_path)
            except self.backend.driver_errors as error:
                raise EvaluationError(
                    f"snapshot copy to {dest_path!r} failed: {error}"
                ) from error

    @contextlib.contextmanager
    def transaction(self) -> Iterator[None]:
        """Run the block as one explicit transaction (fast-path batching).

        Commits on success, rolls back on error.  Any implicitly opened
        transaction is committed first, so the block really starts at a
        transaction boundary; nested calls join the outer transaction.  The
        ``BEGIN``/``COMMIT`` bookends run outside :meth:`execute` and are
        *not* counted by :class:`Statistics` — batching changes when work is
        journalled, not which statements the application issued (so phase
        breakdowns stay comparable to the paper's Test 6).
        """
        if self._in_explicit_transaction:
            yield
            return
        if self.backend.in_transaction(self._connection):
            self.backend.commit(self._connection)
        self.backend.begin(self._connection)
        self._in_explicit_transaction = True
        try:
            yield
        except BaseException:
            self.backend.rollback(self._connection)
            raise
        else:
            self.backend.commit(self._connection)
        finally:
            self._in_explicit_transaction = False

    @staticmethod
    def _statement_kind(sql: str) -> str:
        match = _STATEMENT_KIND_RE.match(sql)
        return match.group(1).upper() if match else "OTHER"

    # -- schema helpers -----------------------------------------------------

    @property
    def temp_only(self) -> bool:
        """Whether this handle confines derived relations to ``temp``."""
        return self.options.temp_derived

    def create_relation(
        self, schema: RelationSchema, temporary: bool = False
    ) -> None:
        """Create a relation table for ``schema``.

        On a ``temp_derived`` handle every relation is created in the
        connection-private ``temp`` namespace regardless of ``temporary`` —
        reader sessions never write shared tables.
        """
        self.execute(
            schema.create_table_sql(temporary=temporary or self.temp_only)
        )

    def drop_relation(self, name: str, if_exists: bool = True) -> None:
        """Drop a relation table.

        On a ``temp_derived`` handle the drop is qualified to the ``temp``
        namespace, so a reader session can never drop a shared main-database
        table that happens to share a scratch relation's name.
        """
        clause = "IF EXISTS " if if_exists else ""
        qualifier = "temp." if self.temp_only else ""
        self.execute(f"DROP TABLE {clause}{qualifier}{quote_identifier(name)}")

    def table_exists(self, name: str) -> bool:
        """Whether a (permanent or temporary) table ``name`` exists."""
        sql, parameters = self.backend.table_exists_query(name)
        return bool(self.execute(sql, parameters))

    def table_names(self) -> list[str]:
        """All permanent table names."""
        rows = self.execute(self.backend.table_names_query())
        return [name for (name,) in rows]

    def insert_rows(
        self, schema: RelationSchema, rows: Iterable[Sequence[Any]], name: str | None = None
    ) -> int:
        """Bulk-insert ``rows`` into the relation; return the count."""
        return self.executemany(schema.insert_sql(name), rows)

    def row_count(self, name: str) -> int:
        """Number of rows in a relation."""
        rows = self.execute(f"SELECT COUNT(*) FROM {quote_identifier(name)}")
        return int(rows[0][0])

    def fetch_all(self, name: str) -> list[tuple]:
        """All rows of a relation, in arbitrary order."""
        return self.execute(f"SELECT * FROM {quote_identifier(name)}")

    def create_index(self, name: str, table: str, columns: Sequence[str]) -> None:
        """Create an index (the paper indexes its catalog relations)."""
        column_list = ", ".join(quote_identifier(c) for c in columns)
        self.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_identifier(name)} "
            f"ON {quote_identifier(table)} ({column_list})"
        )

    def fresh_temp_name(self, prefix: str) -> str:
        """A process- and thread-unique temporary table name.

        The counter is module-level and drawn under a lock, so two
        ``Database`` handles opened on the same on-disk file — or two
        threads drawing names concurrently — never hand out colliding
        names.
        """
        with _TEMP_NAME_LOCK:
            counter = next(_TEMP_NAME_COUNTER)
        return f"{prefix}_{counter}"

    def observe(self, sql: str, parameters: Sequence[Any] = ()) -> list[tuple]:
        """Uncounted read for the observability layer.

        Runs on the raw connection, bypassing both the statement cache and
        :class:`Statistics`, so the tracer can probe the database (EXPLAIN
        plans, delta cardinalities) without perturbing the statement stream
        the experiments measure.  Never use this for engine work.
        """
        cursor = self._connection.execute(sql, tuple(parameters))
        return cursor.fetchall()

    def explain_plan(self, sql: str, parameters: Sequence[Any] = ()) -> list[str]:
        """The DBMS's access-path plan for ``sql`` (EXPLAIN QUERY PLAN).

        A demonstration aid: the testbed surfaces how the underlying DBMS
        would execute a generated statement (which indexes the join uses,
        where full scans remain).
        """
        rows = self.execute(f"EXPLAIN QUERY PLAN {sql}", parameters)
        return [str(row[-1]) for row in rows]
