"""The DBMS substrate: an instrumented embedded-SQL interface over SQLite.

Stands in for the commercial relational DBMS of the paper's testbed.  The
Knowledge Manager and Run Time Library interact with it exclusively through
SQL statements, which :class:`~repro.dbms.engine.Database` counts, times, and
attributes to named phases for the experiment harness.
"""

from .advisor import (
    IndexAdvice,
    advise_clique_indexes,
    apply_index_advice,
    join_column_advice,
    set_membership_advice,
)
from .backends import (
    BackendCapabilities,
    DuckDbBackend,
    SqlBackend,
    SqliteBackend,
    available_backends,
    backend_available,
    get_backend,
    registered_backends,
)
from .catalog import ExtensionalCatalog, fact_table_name
from .engine import Database, PhaseStats, StatementCache, Statistics
from .schema import RelationSchema, column_name, column_names, quote_identifier
from .sqlgen import (
    CompiledSelect,
    compile_rule_body,
    copy_sql,
    difference_sql,
    insert_new_tuples_sql,
)

__all__ = [
    "BackendCapabilities",
    "CompiledSelect",
    "Database",
    "DuckDbBackend",
    "ExtensionalCatalog",
    "IndexAdvice",
    "PhaseStats",
    "RelationSchema",
    "SqlBackend",
    "SqliteBackend",
    "StatementCache",
    "Statistics",
    "advise_clique_indexes",
    "apply_index_advice",
    "available_backends",
    "backend_available",
    "get_backend",
    "registered_backends",
    "column_name",
    "column_names",
    "compile_rule_body",
    "copy_sql",
    "difference_sql",
    "fact_table_name",
    "insert_new_tuples_sql",
    "join_column_advice",
    "quote_identifier",
    "set_membership_advice",
]
