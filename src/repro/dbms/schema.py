"""Relation schemas for the testbed's DBMS layer.

Every relation the testbed materialises — base relations, derived-predicate
results, magic predicates, temporaries — uses positional column names
``c0 .. c{n-1}``; the logical column names live in the data dictionaries,
mirroring how the paper's testbed keeps schema information in catalog
relations rather than in the storage layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

_VALID_TYPES = frozenset(("TEXT", "INTEGER"))


def column_name(index: int) -> str:
    """Positional column name used by every testbed relation."""
    return f"c{index}"


def column_names(arity: int) -> tuple[str, ...]:
    """All positional column names of a relation with ``arity`` columns."""
    return tuple(column_name(i) for i in range(arity))


@dataclass(frozen=True)
class RelationSchema:
    """The physical schema of one stored relation."""

    name: str
    types: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation name must be non-empty")
        if not isinstance(self.types, tuple):
            object.__setattr__(self, "types", tuple(self.types))
        bad = [t for t in self.types if t not in _VALID_TYPES]
        if bad:
            raise ValueError(f"unsupported column types {bad} for {self.name!r}")

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.types)

    @property
    def columns(self) -> tuple[str, ...]:
        """Positional column names."""
        return column_names(self.arity)

    def create_table_sql(self, temporary: bool = False, name: str | None = None) -> str:
        """DDL creating this relation (optionally under another ``name``)."""
        target = name or self.name
        keyword = "CREATE TEMPORARY TABLE" if temporary else "CREATE TABLE"
        body = ", ".join(
            f"{column} {ctype}" for column, ctype in zip(self.columns, self.types)
        )
        return f"{keyword} {quote_identifier(target)} ({body})"

    def insert_sql(self, name: str | None = None) -> str:
        """Parameterised INSERT for this relation."""
        target = name or self.name
        placeholders = ", ".join("?" for __ in self.types)
        return f"INSERT INTO {quote_identifier(target)} VALUES ({placeholders})"

    def renamed(self, name: str) -> "RelationSchema":
        """The same schema under a different relation name."""
        return RelationSchema(name, self.types)


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier, doubling embedded quotes."""
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def schema_for(name: str, types: Iterable[str]) -> RelationSchema:
    """Convenience constructor accepting any iterable of types."""
    return RelationSchema(name, tuple(types))


def validate_row(schema: RelationSchema, row: Sequence) -> None:
    """Check a row's shape and value types against ``schema``.

    Raises:
        ValueError: on arity or type mismatch.
    """
    if len(row) != schema.arity:
        raise ValueError(
            f"row {row!r} has {len(row)} values but {schema.name!r} has "
            f"{schema.arity} columns"
        )
    for value, ctype in zip(row, schema.types):
        if ctype == "INTEGER" and not isinstance(value, int):
            raise ValueError(f"value {value!r} is not INTEGER in {schema.name!r}")
        if ctype == "TEXT" and not isinstance(value, str):
            raise ValueError(f"value {value!r} is not TEXT in {schema.name!r}")
