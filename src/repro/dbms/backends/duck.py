"""The DuckDB backend: a second in-process engine, optional dependency.

DuckDB speaks close-enough ANSI SQL that the generated project-select-join
statements, ``EXCEPT`` differences, and recursive CTEs run unchanged; what
differs is everything around them, captured in the capability flags:

* ``.cursor()`` clones the connection (its own temp namespace and
  transaction), so the prepared-cursor statement cache is unsound —
  ``supports_shared_cursors`` is False and the engine runs uncached;
* there is no ``changes()`` function, no ``WITHOUT ROWID``, and no
  ``INSERT OR IGNORE``, so the in-DBMS LFP operator strategy falls back to
  semi-naive iteration;
* ``rowcount`` is unreliable for DML, so per-statement ``rows_changed``
  statistics are best-effort (counts stay comparable *within* a backend,
  which is all the A/B benches compare);
* WAL journalling and the ``temp.``-qualified namespace of reader sessions
  are SQLite-specific; the server's pooled connection options are rejected
  at connect time rather than silently misbehaving.

The ``duckdb`` package is deliberately **not** imported at module load: the
backend registers itself unconditionally, and only :meth:`connect` needs
the driver, raising a clear error when the extra is not installed.
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import TYPE_CHECKING, Any

from ...errors import EvaluationError
from .base import BackendCapabilities, SqlBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ConnectionOptions


def duckdb_available() -> bool:
    """Whether the optional ``duckdb`` driver package is importable."""
    return importlib.util.find_spec("duckdb") is not None


class DuckDbBackend(SqlBackend):
    """In-process DuckDB, loaded lazily from the optional extra."""

    name = "duckdb"
    capabilities = BackendCapabilities(
        supports_recursive_cte=True,
        supports_wal=False,
        supports_temp_namespace=False,
        supports_without_rowid=False,
        supports_changes_function=False,
        supports_interrupt=True,
        supports_shared_cursors=False,
    )

    def _module(self) -> Any:
        try:
            return importlib.import_module("duckdb")
        except ImportError as error:
            raise EvaluationError(
                "the 'duckdb' backend needs the optional duckdb package; "
                "install the project's [duckdb] extra or pick backend='sqlite'"
            ) from error

    def connect(self, path: str, options: "ConnectionOptions") -> Any:
        duckdb = self._module()
        if options.wal:
            raise EvaluationError(
                "the duckdb backend does not support WAL connection options; "
                "the query server's pooled sessions require backend='sqlite'"
            )
        if options.temp_derived:
            raise EvaluationError(
                "the duckdb backend has no connection-private temp namespace "
                "for derived relations (temp_derived requires backend='sqlite')"
            )
        return duckdb.connect(path)

    @property
    def driver_errors(self) -> tuple[type[BaseException], ...]:
        duckdb = self._module()
        return (duckdb.Error,)

    def begin(self, connection: Any) -> None:
        connection.execute("BEGIN TRANSACTION")

    def in_transaction(self, connection: Any) -> bool:
        # DuckDB's python API exposes no transaction-state probe; the
        # Database layer tracks explicit transactions itself, and implicit
        # ones commit per statement (autocommit), so "no" is always sound
        # for the commit-before-BEGIN use this feeds.
        return False

    def commit(self, connection: Any) -> None:
        try:
            connection.commit()
        except self.driver_errors:
            # Committing with no transaction open is an error in DuckDB but
            # a no-op in sqlite3; normalise to the no-op contract.
            pass

    def rollback(self, connection: Any) -> None:
        try:
            connection.rollback()
        except self.driver_errors:
            pass

    def table_exists_query(self, name: str) -> tuple[str, tuple]:
        return (
            "SELECT table_name FROM information_schema.tables "
            "WHERE table_name = ?",
            (name,),
        )

    def table_names_query(self) -> str:
        return (
            "SELECT table_name FROM information_schema.tables "
            "WHERE table_type = 'BASE TABLE' ORDER BY table_name"
        )

    def recursive_insert_sql(
        self, with_clause: str, insert_into: str, select_stmt: str
    ) -> str:
        # DuckDB attaches the WITH clause to the INSERT's SELECT.
        return f"{insert_into} WITH RECURSIVE {with_clause} {select_stmt}"
