"""Pluggable SQL backends for the instrumented Database.

The registry maps short names (``"sqlite"``, ``"duckdb"``) to backend
classes; :func:`get_backend` resolves a name (or passes an instance
through), and :func:`available_backends` lists the backends whose driver
is actually importable in this environment — the cross-engine parity
suite and benches iterate over that.
"""

from __future__ import annotations

from ...errors import EvaluationError
from .base import BackendCapabilities, SqlBackend
from .duck import DuckDbBackend, duckdb_available
from .sqlite import SqliteBackend

DEFAULT_BACKEND = "sqlite"

_REGISTRY: dict[str, type[SqlBackend]] = {
    SqliteBackend.name: SqliteBackend,
    DuckDbBackend.name: DuckDbBackend,
}


def registered_backends() -> list[str]:
    """Every backend name the registry knows, installed or not."""
    return sorted(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered *and* its driver is importable."""
    if name not in _REGISTRY:
        return False
    if name == DuckDbBackend.name:
        return duckdb_available()
    return True


def available_backends() -> list[str]:
    """The registered backends usable in this environment."""
    return [name for name in registered_backends() if backend_available(name)]


def get_backend(backend: "str | SqlBackend | None") -> SqlBackend:
    """Resolve a backend name (or instance, or ``None`` for the default).

    Raises:
        EvaluationError: for a name the registry does not know.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, SqlBackend):
        return backend
    try:
        return _REGISTRY[backend]()
    except KeyError:
        raise EvaluationError(
            f"unknown SQL backend {backend!r}; registered: "
            + ", ".join(registered_backends())
        ) from None


__all__ = [
    "BackendCapabilities",
    "DEFAULT_BACKEND",
    "DuckDbBackend",
    "SqlBackend",
    "SqliteBackend",
    "available_backends",
    "backend_available",
    "duckdb_available",
    "get_backend",
    "registered_backends",
]
