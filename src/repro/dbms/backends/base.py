"""The abstract SQL backend interface.

The paper's testbed layers its knowledge management on "a commercial
relational database management system" reached exclusively through SQL; the
reproduction should be able to swap that DBMS to show its results are
shape- rather than engine-dependent.  A :class:`SqlBackend` encapsulates
everything driver-specific — how a connection is opened and configured,
which exception types the driver raises, how the catalog is introspected,
and which SQL dialect features are available — while
:class:`~repro.dbms.engine.Database` keeps the instrumentation (statement
counting, phases, tracing) engine-neutral.

Capability flags, not feature sniffing: the evaluation strategies ask the
backend what it supports (``supports_recursive_cte``,
``supports_changes_function``, ...) and pick a portable plan when a feature
is missing, so a query never errors because of the engine underneath it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..engine import ConnectionOptions


@dataclass(frozen=True)
class BackendCapabilities:
    """What the engine underneath a :class:`SqlBackend` can do.

    Attributes:
        supports_recursive_cte: ``WITH RECURSIVE`` is available, so a whole
            linear clique can be evaluated in one statement
            (:mod:`repro.runtime.lfp_cte`).
        supports_wal: write-ahead-log journalling (the concurrent query
            server's reader/writer mode) can be enabled.
        supports_temp_namespace: a per-connection ``temp.`` namespace exists
            and shadows same-named main-database tables — required by
            ``ConnectionOptions(temp_derived=True)`` reader sessions.
        supports_without_rowid: ``WITHOUT ROWID`` keyed tables and
            ``INSERT OR IGNORE`` — the storage layout of the in-DBMS LFP
            operator (:mod:`repro.runtime.lfp`).
        supports_changes_function: ``SELECT changes()`` reports the row
            count of the previous DML statement (the LFP operator's
            termination signal).
        supports_interrupt: a running statement can be aborted from another
            thread (the query server's per-request timeout).
        supports_shared_cursors: cursors created from one connection share
            its session state (temp tables, transactions), which is what
            makes the prepared-statement cursor cache sound.  Engines whose
            ``.cursor()`` clones the connection (DuckDB) must run uncached.
        supports_snapshot_copy: the engine can copy a transactionally
            consistent snapshot of the whole database into another database
            file while both stay live (SQLite's online backup API) — the
            replication transport of the cluster's read replicas
            (:mod:`repro.cluster.replica`).
    """

    supports_recursive_cte: bool = True
    supports_wal: bool = False
    supports_temp_namespace: bool = False
    supports_without_rowid: bool = False
    supports_changes_function: bool = False
    supports_interrupt: bool = False
    supports_shared_cursors: bool = False
    supports_snapshot_copy: bool = False


class SqlBackend(abc.ABC):
    """Everything driver-specific about one SQL engine.

    Implementations are stateless: one backend instance can serve any
    number of :class:`~repro.dbms.engine.Database` handles.
    """

    #: Registry name of the backend (``"sqlite"``, ``"duckdb"``, ...).
    name: ClassVar[str]
    #: Engine feature flags, used by the evaluation strategies.
    capabilities: ClassVar[BackendCapabilities]

    @abc.abstractmethod
    def connect(self, path: str, options: "ConnectionOptions") -> Any:
        """Open and configure a DB-API-style connection.

        Raises:
            EvaluationError: when ``options`` asks for a feature the engine
                does not support (e.g. WAL journalling), or the optional
                driver package is not installed.
        """

    @property
    @abc.abstractmethod
    def driver_errors(self) -> tuple[type[BaseException], ...]:
        """Exception classes the driver raises, wrapped into EvaluationError."""

    # -- transactions -------------------------------------------------------

    @abc.abstractmethod
    def begin(self, connection: Any) -> None:
        """Open an explicit transaction on ``connection``."""

    @abc.abstractmethod
    def in_transaction(self, connection: Any) -> bool:
        """Whether ``connection`` currently holds an open transaction."""

    def commit(self, connection: Any) -> None:
        """Commit the current transaction (no-op when none is open)."""
        connection.commit()

    def rollback(self, connection: Any) -> None:
        """Roll back the current transaction (no-op when none is open)."""
        connection.rollback()

    def interrupt(self, connection: Any) -> None:
        """Abort the statement running on ``connection``, if supported."""
        if self.capabilities.supports_interrupt:
            connection.interrupt()

    def snapshot_to(self, connection: Any, dest_path: str) -> None:
        """Copy a consistent snapshot of ``connection``'s database to a file.

        The copy is transactionally consistent — readers of the destination
        see either the old database or the new one, never a torn mix — and
        both databases stay live throughout.

        Raises:
            NotImplementedError: when ``supports_snapshot_copy`` is False.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support snapshot copy"
        )

    # -- catalog introspection ----------------------------------------------

    @abc.abstractmethod
    def table_exists_query(self, name: str) -> tuple[str, tuple]:
        """``(sql, parameters)`` returning a row iff table ``name`` exists."""

    @abc.abstractmethod
    def table_names_query(self) -> str:
        """SQL returning one ``(name,)`` row per permanent table, ordered."""

    # -- dialect ------------------------------------------------------------

    def recursive_insert_sql(
        self, with_clause: str, insert_into: str, select_stmt: str
    ) -> str:
        """Compose ``WITH RECURSIVE`` + ``INSERT`` + ``SELECT`` as one statement.

        Engines disagree on where the WITH clause attaches (SQLite: before
        the INSERT; DuckDB: on the INSERT's SELECT), so the composition is a
        backend decision.

        Raises:
            NotImplementedError: when ``supports_recursive_cte`` is False.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support recursive CTEs"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
