"""The SQLite backend: the testbed's default (and reference) engine.

This is the connection-management code factored out of the original
single-engine ``repro.dbms.engine``; its observable behaviour — the pragmas
issued at connect time, the statements generated for catalog probes, the
exception types wrapped — is byte-for-byte what the seed implementation
did, so traced statement sequences on the default backend are unchanged.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING, Any

from .base import BackendCapabilities, SqlBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ConnectionOptions


class SqliteBackend(SqlBackend):
    """:mod:`sqlite3` with the testbed's connection configuration."""

    name = "sqlite"
    capabilities = BackendCapabilities(
        supports_recursive_cte=True,
        supports_wal=True,
        supports_temp_namespace=True,
        supports_without_rowid=True,
        supports_changes_function=True,
        supports_interrupt=True,
        supports_shared_cursors=True,
        supports_snapshot_copy=True,
    )

    def connect(self, path: str, options: "ConnectionOptions") -> Any:
        connection = sqlite3.connect(
            path, check_same_thread=options.check_same_thread
        )
        connection.execute("PRAGMA synchronous = OFF")
        if options.wal:
            connection.execute("PRAGMA journal_mode = WAL")
        else:
            connection.execute("PRAGMA journal_mode = MEMORY")
        if options.busy_timeout_ms:
            connection.execute(
                f"PRAGMA busy_timeout = {int(options.busy_timeout_ms)}"
            )
        return connection

    @property
    def driver_errors(self) -> tuple[type[BaseException], ...]:
        return (sqlite3.Error,)

    def begin(self, connection: Any) -> None:
        connection.execute("BEGIN")

    def in_transaction(self, connection: Any) -> bool:
        return bool(connection.in_transaction)

    def table_exists_query(self, name: str) -> tuple[str, tuple]:
        return (
            "SELECT name FROM sqlite_master WHERE type = 'table' AND name = ? "
            "UNION ALL "
            "SELECT name FROM sqlite_temp_master WHERE type = 'table' AND name = ?",
            (name, name),
        )

    def table_names_query(self) -> str:
        return "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"

    def recursive_insert_sql(
        self, with_clause: str, insert_into: str, select_stmt: str
    ) -> str:
        # SQLite attaches the WITH clause before the INSERT keyword.
        return f"WITH RECURSIVE {with_clause} {insert_into} {select_stmt}"

    def snapshot_to(self, connection: Any, dest_path: str) -> None:
        # The online backup API: copies the whole main database inside one
        # destination write transaction, so destination readers switch
        # atomically from the old snapshot to the new — including a live
        # WAL-mode replica file served by another process's session pool.
        dest = sqlite3.connect(dest_path)
        try:
            dest.execute("PRAGMA busy_timeout = 10000")
            connection.backup(dest)
        finally:
            dest.close()
