"""One shard of the cluster: a primary server, its replicas, their feeds.

A shard is a full PR-5 concurrent query server — session pool, admission
control, versioned result cache — over its own database file holding one
hash partition of the EDB, plus ``replicas`` read-only copies each fed by
a snapshot-copy :class:`~repro.cluster.replica.Replicator`.  The
:class:`ShardRuntime` boots all of it inside one process; the supervisor
runs one such process per shard, and the in-process ``LocalCluster`` used
by tests runs them as threads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..km.partition import PartitionSpec
from ..server.service import DkbServer, ServerConfig
from .replica import Replicator


@dataclass(frozen=True)
class ShardConfig:
    """Everything one shard process needs to boot (picklable).

    Attributes:
        shard_id: this shard's number in ``spec``'s hash space.
        path: the primary database file; replica files live beside it.
        spec: the cluster-wide partition metadata.
        replicas: read replicas to boot for this shard.
        host: bind address for the primary and every replica.
        port: primary bind port (``0`` = ephemeral); replicas always bind
            ephemerally.
        readers: reader sessions per server (primary and replicas alike).
        max_waiters: admission wait-queue bound per server.
        cache_size: result-cache entries per server.
        request_timeout: per-query budget in seconds.
        replication_poll: replica pull cadence in seconds.
        trace: open pooled sessions with tracing enabled.
    """

    shard_id: int
    path: str
    spec: PartitionSpec
    replicas: int = 0
    host: str = "127.0.0.1"
    port: int = 0
    readers: int = 4
    max_waiters: int = 64
    cache_size: int = 256
    request_timeout: "float | None" = 30.0
    session_timeout: "float | None" = 30.0
    replication_poll: float = 0.25
    trace: bool = False

    def replica_path(self, index: int) -> str:
        root, extension = os.path.splitext(self.path)
        return f"{root}.replica{index}{extension or '.sqlite'}"


@dataclass
class ShardAddresses:
    """The bound addresses of one running shard (JSON/pickle friendly)."""

    shard_id: int
    primary: tuple[str, int]
    replicas: list[tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "primary": list(self.primary),
            "replicas": [list(address) for address in self.replicas],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardAddresses":
        return cls(
            shard_id=int(payload["shard_id"]),
            primary=(str(payload["primary"][0]), int(payload["primary"][1])),
            replicas=[
                (str(host), int(port)) for host, port in payload["replicas"]
            ],
        )


class ShardRuntime:
    """Boots and owns one shard's primary, replicas, and replicators."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        self.primary = DkbServer(
            ServerConfig(
                path=config.path,
                host=config.host,
                port=config.port,
                readers=config.readers,
                max_waiters=config.max_waiters,
                session_timeout=config.session_timeout,
                request_timeout=config.request_timeout,
                cache_size=config.cache_size,
                trace=config.trace,
                shard_id=config.shard_id,
                partition=config.spec,
                role="primary",
                replication_poll=config.replication_poll,
            )
        ).start()
        leader = self.primary.address
        self.replicators: list[Replicator] = []
        self.replicas: list[DkbServer] = []
        try:
            for index in range(config.replicas):
                replica_path = config.replica_path(index)
                # The first sync (inside start()) writes a complete copy of
                # the primary — catalog included — before the replica's own
                # pool opens, so the replica never serves a half-built file.
                replicator = Replicator(
                    config.path,
                    replica_path,
                    poll_interval=config.replication_poll,
                ).start()
                self.replicators.append(replicator)
                self.replicas.append(
                    DkbServer(
                        ServerConfig(
                            path=replica_path,
                            host=config.host,
                            port=0,
                            readers=config.readers,
                            max_waiters=config.max_waiters,
                            session_timeout=config.session_timeout,
                            request_timeout=config.request_timeout,
                            cache_size=config.cache_size,
                            trace=config.trace,
                            shard_id=config.shard_id,
                            partition=config.spec,
                            role="replica",
                            leader=leader,
                            replication_poll=config.replication_poll,
                        )
                    ).start()
                )
        except BaseException:
            self.close()
            raise

    @property
    def addresses(self) -> ShardAddresses:
        return ShardAddresses(
            shard_id=self.config.shard_id,
            primary=self.primary.address,
            replicas=[replica.address for replica in self.replicas],
        )

    def sync_replicas(self) -> list[int]:
        """Force one replication step on every replica; returns watermarks."""
        return [replicator.sync() for replicator in self.replicators]

    def close(self) -> None:
        for replicator in self.replicators:
            replicator.close()
        for replica in self.replicas:
            replica.close()
        self.primary.close()

    def __enter__(self) -> "ShardRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["ShardAddresses", "ShardConfig", "ShardRuntime"]
