"""``python -m repro cluster`` / ``bench-cluster`` — the cluster CLIs.

``cluster`` boots a sharded cluster (one process per shard, optional read
replicas, the router in the supervising process) and serves until
interrupted; ``--demo-depth`` seeds the ancestor workload through the
router first so the cluster is immediately queryable.  ``bench-cluster``
runs the shard-scaling benchmark (1 shard vs N shards under an identical
closed-loop population), prints the table, optionally writes
``BENCH_cluster_*.json``, and exits non-zero on protocol errors or a
scaling regression, so CI can gate on it.

Heavyweight imports happen inside the entry points, keeping
``python -m repro``'s startup light.
"""

from __future__ import annotations

import argparse
import json


def _parse_spec_arguments(arguments: argparse.Namespace) -> "Any":
    """Build the PartitionSpec from the repeatable CLI declarations."""
    from ..km.partition import PartitionSpec, TablePartition

    tables = {}
    for declaration in arguments.partition or []:
        name, _, column = declaration.partition(":")
        tables[name] = TablePartition(int(column) if column else 0)
    routes = {}
    for declaration in arguments.route or []:
        name, _, position = declaration.partition(":")
        if not position:
            raise SystemExit(
                f"--route needs predicate:position, got {declaration!r}"
            )
        routes[name] = int(position)
    return PartitionSpec(
        shards=arguments.shards,
        tables=tables,
        broadcast=frozenset(arguments.broadcast or ()),
        routes=routes,
        key_delimiter=arguments.key_delimiter,
    )


def build_cluster_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Serve a sharded D/KBMS cluster: one process per "
        "shard, optional read replicas, and a routing front-end speaking "
        "the single-server protocol.",
    )
    parser.add_argument(
        "data_dir", help="directory for the per-shard database files"
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="hash partitions (default: 2)"
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="read replicas per shard (default: 0)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7408, help="router port (0 = ephemeral)"
    )
    parser.add_argument(
        "--readers",
        type=int,
        default=4,
        help="reader sessions per backend server (default: 4)",
    )
    parser.add_argument(
        "--partition",
        action="append",
        metavar="TABLE[:KEYCOL]",
        help="hash-partition TABLE on KEYCOL (default column 0); repeatable",
    )
    parser.add_argument(
        "--broadcast",
        action="append",
        metavar="TABLE",
        help="replicate TABLE to every shard; repeatable",
    )
    parser.add_argument(
        "--route",
        action="append",
        metavar="PRED:POS",
        help="declare derived PRED routable on argument POS; repeatable",
    )
    parser.add_argument(
        "--key-delimiter",
        default="_",
        help="entity-group prefix separator in key values (default: '_')",
    )
    parser.add_argument(
        "--max-lag",
        type=int,
        default=None,
        metavar="K",
        help="bound replica staleness to K versions behind the newest "
        "witnessed version (default: unbounded)",
    )
    parser.add_argument(
        "--no-replica-reads",
        action="store_true",
        help="serve every read from shard primaries",
    )
    parser.add_argument(
        "--replication-poll",
        type=float,
        default=0.25,
        help="replica pull cadence in seconds (default: 0.25)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus /metrics on this router side port, with "
        "per-shard versions and replica lag (0 = ephemeral; omit for no "
        "exporter)",
    )
    parser.add_argument(
        "--demo-depth",
        type=int,
        default=0,
        metavar="DEPTH",
        help="seed the ancestor rules plus one DEPTH-level binary tree "
        "per shard through the router before serving",
    )
    parser.add_argument(
        "--rules",
        metavar="FILE",
        default=None,
        help="Horn clause file to vet against the partition spec "
        "(default: the ancestor demo rules)",
    )
    parser.add_argument(
        "--lint-partition",
        action="store_true",
        help="run only the partition lints (DK10x) over the rules and "
        "exit: 0 clean, 1 findings, 2 bad input — no shard boots",
    )
    return parser


def _partition_lint_program(arguments: argparse.Namespace) -> "Any":
    """The program the partition lints vet: ``--rules`` or the demo rules."""
    from ..datalog.parser import parse_program
    from ..workloads.queries import ANCESTOR_RULES

    if arguments.rules is not None:
        with open(arguments.rules) as handle:
            return parse_program(handle.read())
    return parse_program(ANCESTOR_RULES)


def _vet_partition(arguments: argparse.Namespace, spec: "Any") -> int:
    """Run the DK10x lints pre-boot; returns the would-be exit code.

    ``--lint-partition`` prints the full report; otherwise only
    error-severity findings are printed (they abort the boot).
    """
    from ..errors import TestbedError
    from .speclint import lint_partition

    try:
        program = _partition_lint_program(arguments)
    except (OSError, TestbedError) as error:
        print(f"python -m repro cluster: error: {error}")
        return 2
    report = lint_partition(program, spec)
    if arguments.lint_partition:
        print(report.render())
        return 1 if report.has_errors else 0
    if report.has_errors:
        print("refusing to boot: the rule base fails the partition lints")
        print(report.render())
        return 1
    return 0


def cluster_main(argv: "list[str] | None" = None) -> int:
    from ..server.client import DkbClient
    from .router import ReadPolicy
    from .supervisor import ClusterConfig, ClusterSupervisor

    arguments = build_cluster_parser().parse_args(argv)
    spec = _parse_spec_arguments(arguments)
    # Vet the rule base against the partition spec before any shard
    # process boots — an unroutable spec is a configuration error, not
    # something to discover after the cluster is serving.
    if arguments.lint_partition or arguments.demo_depth or arguments.rules:
        status = _vet_partition(arguments, spec)
        if arguments.lint_partition or status:
            return status
    config = ClusterConfig(
        spec=spec,
        data_dir=arguments.data_dir,
        replicas=arguments.replicas,
        host=arguments.host,
        router_port=arguments.port,
        read_policy=ReadPolicy(
            prefer_replica=not arguments.no_replica_reads,
            max_lag=arguments.max_lag,
        ),
        readers=arguments.readers,
        replication_poll=arguments.replication_poll,
        metrics_port=arguments.metrics_port,
    )
    supervisor = ClusterSupervisor(config)
    try:
        if arguments.demo_depth:
            from ..bench.cluster import seed_cluster, wait_for_replicas

            host, port = supervisor.address
            with DkbClient(host, port) as client:
                trees = seed_cluster(
                    client, depth=arguments.demo_depth, trees=spec.shards
                )
                if arguments.replicas:
                    wait_for_replicas(client)
            print(
                f"seeded ancestor demo ({trees} trees of depth "
                f"{arguments.demo_depth}) through the router"
            )
        print(json.dumps(supervisor.describe(), indent=2))
        host, port = supervisor.address
        print(f"cluster router on {host}:{port}")
        if supervisor.router is not None and supervisor.router.exporter is not None:
            mhost, mport = supervisor.router.exporter.address
            print(f"metrics: http://{mhost}:{mport}/metrics")
        supervisor.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        supervisor.close()
    return 0


def build_bench_cluster_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench-cluster",
        description="Run the cluster benchmark: read throughput at 1 shard "
        "vs N shards under the same closed-loop client population.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trees, short burst, 2 shards (for smoke tests and CI)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="scaled shard count (default: 4)"
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="read replicas per shard (default: 0)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=32,
        help="closed-loop clients (default: 32)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds per measurement (default: 6, quick: 2.5)",
    )
    parser.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="write BENCH_cluster_*.json artifacts into DIR",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless N-shard throughput >= X * 1-shard throughput",
    )
    return parser


def bench_cluster_main(argv: "list[str] | None" = None) -> int:
    import os

    from ..bench.cluster import format_cluster_scaling, run_cluster_scaling
    from ..bench.reporting import write_bench_json

    arguments = build_bench_cluster_parser().parse_args(argv)
    shards = 2 if arguments.quick else arguments.shards
    depth = 5 if arguments.quick else 8
    duration = arguments.duration or (2.5 if arguments.quick else 5.0)

    points = run_cluster_scaling(
        shard_counts=(1, shards),
        depth=depth,
        replicas=arguments.replicas,
        clients=arguments.clients,
        duration=duration,
    )
    print("Cluster read scaling (fig-12 ancestor mix, closed-loop clients):")
    print(format_cluster_scaling(points))

    if arguments.report:
        os.makedirs(arguments.report, exist_ok=True)
        print()
        print(
            write_bench_json(
                os.path.join(arguments.report, "BENCH_cluster_scaling.json"),
                "cluster_scaling",
                points,
                depth=depth,
                clients=arguments.clients,
                duration=duration,
                replicas=arguments.replicas,
            )
        )

    failures = []
    if any(point.errors for point in points):
        failures.append("protocol errors during the scaling run")
    if arguments.min_speedup is not None:
        baseline = points[0].throughput_rps
        scaled = points[-1].throughput_rps
        speedup = scaled / baseline if baseline else 0.0
        if speedup < arguments.min_speedup:
            failures.append(
                f"{points[-1].shards}-shard speedup {speedup:.2f}x is below "
                f"the {arguments.min_speedup:.2f}x floor"
            )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(cluster_main())
