"""The Partitioner: routing queries and updates over a PartitionSpec.

The spec (:class:`~repro.km.partition.PartitionSpec`) says *where rows
live*; the partitioner decides *where requests go*:

* an **update** is split by hashing each row's partition key — every slice
  goes to exactly the shard whose writer owns it, and broadcast relations
  fan the whole batch to every shard;
* a **query** is routed by inspecting its goals: when every routable goal
  pins the same shard through a bound routing-key argument, the query is
  *pinned* and touches one backend; when it only reads broadcast
  relations, *any* one shard can answer; everything else *fans out* to all
  shards and the router merges the per-shard answers.

Fan-out correctness rests on the entity-group placement documented in
:mod:`repro.km.partition`: partitioned data decomposes into shard-local
components, so the union of per-shard closures is the global closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence, Union

from ..datalog.clauses import Query
from ..datalog.parser import parse_query
from ..datalog.terms import Constant
from ..km.partition import PartitionSpec

#: How a query may be routed.
PINNED = "pinned"  # one shard owns every answer
ANY = "any"  # broadcast-only read: any single shard can answer
FANOUT = "fanout"  # scatter to all shards, gather and merge


@dataclass(frozen=True)
class QueryRoute:
    """The routing decision for one query.

    Attributes:
        kind: ``"pinned"``, ``"any"``, or ``"fanout"``.
        shard: the owning shard for ``pinned`` routes, else ``None``.
    """

    kind: str
    shard: "int | None" = None

    @property
    def is_pinned(self) -> bool:
        return self.kind == PINNED


class Partitioner:
    """Routing logic over one :class:`PartitionSpec`."""

    def __init__(self, spec: PartitionSpec) -> None:
        self.spec = spec

    @property
    def shards(self) -> int:
        return self.spec.shards

    def all_shards(self) -> range:
        return range(self.spec.shards)

    # -- updates -----------------------------------------------------------

    def split_update(
        self, predicate: str, rows: Iterable[Sequence[Any]]
    ) -> dict[int, list[tuple]]:
        """Partition one update batch by owning shard.

        Broadcast relations map the whole batch to *every* shard.
        Relations the spec does not mention hash like a partitioned
        relation keyed on column 0 — the safe default for ad-hoc base
        relations created through the router.
        """
        rows = [tuple(row) for row in rows]
        if self.spec.is_broadcast(predicate):
            return {shard: list(rows) for shard in self.all_shards()}
        slices: dict[int, list[tuple]] = {}
        for row in rows:
            if self.spec.is_partitioned(predicate):
                shard = self.spec.shard_of_row(predicate, row)
                assert shard is not None  # not broadcast, checked above
            else:
                shard = self.spec.shard_of_key(row[0])
            slices.setdefault(shard, []).append(row)
        return slices

    # -- queries -----------------------------------------------------------

    def route(self, query: Union[str, Query]) -> QueryRoute:
        """Decide where one query must run.

        A query is pinned when at least one goal binds the routing-key
        argument of a routable predicate with a constant, and every such
        bound goal agrees on the shard.  A query reading only broadcast
        relations is ``any``-routed.  Everything else — unbound routable
        goals, disagreeing pins, predicates the spec knows nothing about —
        fans out.

        Raises:
            ParseError: the query text does not parse.
        """
        if isinstance(query, str):
            query = parse_query(query)
        pins: set[int] = set()
        broadcast_only = True
        for goal in query.goals:
            predicate = goal.predicate
            if not self.spec.is_broadcast(predicate):
                broadcast_only = False
            position = self.spec.route_key_position(predicate)
            if position is None or position >= len(goal.terms):
                continue
            term = goal.terms[position]
            if isinstance(term, Constant):
                pins.add(self.spec.shard_of_key(term.value))
        if broadcast_only:
            return QueryRoute(ANY)
        if len(pins) == 1:
            return QueryRoute(PINNED, pins.pop())
        return QueryRoute(FANOUT)


def merge_rows(parts: Iterable[Iterable[Sequence[Any]]]) -> list[list[Any]]:
    """Set-union merge of per-shard answer sets, first-seen order.

    Answers from disjoint partitions are disjoint by construction, but
    queries that also touch broadcast relations can produce the same row
    on several shards — the merge must stay a set, exactly like the
    ``UNION`` semantics of the single-node evaluation.
    """
    merged: list[list[Any]] = []
    seen: set[tuple] = set()
    for part in parts:
        for row in part:
            key = tuple(row)
            if key not in seen:
                seen.add(key)
                merged.append(list(row))
    return merged


__all__ = [
    "ANY",
    "FANOUT",
    "PINNED",
    "Partitioner",
    "QueryRoute",
    "merge_rows",
]
