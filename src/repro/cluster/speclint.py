"""Partition-aware rule vetting: the DK10x lints at the cluster boundary.

Two call sites use this module:

* :class:`~repro.cluster.router.ClusterRouter` vets every ``define``
  before fanning it out — a rule base that fails the partition lints is
  rejected with ``UNROUTABLE_RULES`` instead of being installed on shards
  that cannot evaluate it soundly;
* ``python -m repro cluster`` (:mod:`repro.cluster.cli`) vets the demo (or
  ``--rules``) program against the configured
  :class:`~repro.km.partition.PartitionSpec` *before any shard boots*, and
  ``--lint-partition`` runs just that check and exits.

Only the DK10x passes run here — the full rule-base lint (safety, types,
...) already runs shard-side on define, so the cluster layer adds exactly
the checks that need the partition metadata.
"""

from __future__ import annotations

from ..analysis import (
    PARTITION_PASSES,
    AnalysisConfig,
    DiagnosticReport,
    analyze,
)
from ..datalog.clauses import Program, Query
from ..km.partition import PartitionSpec

#: Partition lints only; undefined body predicates are fine (a define may
#: reference relations created by later updates, as the session model
#: allows) and the semantic passes already ran where the rules live.
PARTITION_LINT_CONFIG = AnalysisConfig(
    passes=PARTITION_PASSES, allow_undefined=True
)


def lint_partition(
    program: Program,
    spec: PartitionSpec,
    query: Query | None = None,
) -> DiagnosticReport:
    """Run the DK10x passes over ``program`` (and ``query``) for ``spec``."""
    return analyze(
        program,
        query,
        config=PARTITION_LINT_CONFIG,
        partition=spec,
    )


def partition_errors(
    program: Program,
    spec: PartitionSpec,
    query: Query | None = None,
) -> str | None:
    """One rendered message when the program fails the lints, else ``None``.

    Warnings do not reject a rule base — fanning out is legal, just slow;
    only error-severity findings (non-local negation, recursive broadcast
    writes) make shard-local evaluation *wrong*.
    """
    report = lint_partition(program, spec, query)
    if not report.has_errors:
        return None
    return "; ".join(str(diagnostic) for diagnostic in report.errors)
