"""Read replicas fed by snapshot copy, watermarked by ``dkbversion``.

A replica is a second database file serving the same shard, refreshed by
copying the primary's committed state through the backend interface
(:meth:`~repro.dbms.engine.Database.snapshot_to`).  The persistent D/KB
version counter the single-node server already maintains doubles as the
**replication watermark**: after a copy, the replica's ``dkbversion`` *is*
the primary version the copy captured, so

* a replica read reports exactly which committed state it saw,
* the router can enforce bounded staleness by sending a version floor
  (``min_version``) that the replica checks inside its read snapshot, and
* "how far behind is this replica" is one integer subtraction — testable,
  not hoped-for.

The :class:`Replicator` polls the primary's version and copies only when
it advanced (a version-gated pull, the testbed analogue of log shipping);
``sync()`` forces one replication step synchronously, which is what the
deterministic staleness tests use instead of sleeping.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..dbms.engine import ConnectionOptions, Database
from ..obs.metrics import MetricsRegistry
from ..server.pool import read_version


class Replicator:
    """Keeps one replica file caught up with one primary file.

    Args:
        source_path: the shard primary's database file.
        dest_path: the replica file being served by a replica server.
        poll_interval: seconds between watermark probes of the background
            thread (started by :meth:`start`; ``sync()`` works without it).
        metrics: optional registry receiving ``replica.*`` counters.
    """

    def __init__(
        self,
        source_path: str,
        dest_path: str,
        poll_interval: float = 0.25,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.source_path = source_path
        self.dest_path = dest_path
        self.poll_interval = poll_interval
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # A plain reader connection to the primary: snapshot_to copies the
        # committed state, and read_version outside a transaction sees the
        # latest commit.  WAL mode keeps the probe from blocking the writer.
        self._source = Database(
            source_path, options=ConnectionOptions.reader()
        )
        self._lock = threading.Lock()  # serializes: one snapshot copy at a time is the point
        self._watermark = -1  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.copies = 0  # guarded-by: _lock

    # -- the replication step ---------------------------------------------

    @property
    def watermark(self) -> int:
        """The primary version the replica last caught up to (-1 = never)."""
        with self._lock:
            return self._watermark

    def lag(self) -> int:
        """Versions the replica is currently behind the primary."""
        with self._lock:
            return max(0, self._source_version() - self._watermark)

    def _source_version(self) -> int:
        self._source.commit()  # leave any stale read snapshot
        return read_version(self._source)

    def sync(self) -> int:
        """Run one replication step now; returns the new watermark.

        Copies only when the primary's version moved past the watermark
        (the version counter is the dirty flag), so an idle shard costs
        one SELECT per poll, not one file copy.
        """
        with self._lock:
            version = self._source_version()
            # Lag as observed at this probe, *before* the copy catches up:
            # how many versions the replica was behind when the pull ran.
            self.metrics.gauge("replica.lag").set(
                float(max(0, version - max(0, self._watermark)))
            )
            if version > self._watermark:
                self._source.snapshot_to(self.dest_path)
                self._watermark = version
                self.copies += 1
                self.metrics.counter("replica.copies").inc()
                self.metrics.gauge("replica.watermark").set(version)
            return self._watermark

    # -- background pull loop ---------------------------------------------

    def start(self) -> "Replicator":
        """Start the background pull loop; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("replicator already started")
        self.sync()  # first copy happens before the replica serves
        self._thread = threading.Thread(
            target=self._run, name="dkb-replicator", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.sync()
            except Exception:  # pragma: no cover - e.g. primary closing
                self.metrics.counter("replica.copy_errors").inc()

    def close(self) -> None:
        """Stop the pull loop and release the source connection."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._source.close()

    def __enter__(self) -> "Replicator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["Replicator"]
