"""The routing front-end: one wire endpoint over N shards and their replicas.

The router speaks the *same* line-oriented JSON protocol as a single
shard — a client cannot tell a cluster from one server — and implements
the distribution rules on top of the :class:`~repro.cluster.partition.
Partitioner`:

* **pinned queries** (a bound routing-key argument) go to one backend of
  the owning shard — a replica when the read policy allows, the primary
  otherwise;
* **unpinned queries** scatter to every shard and the per-shard answers
  are set-union merged (gather);
* **updates** are split by hash and serialized through each owning
  shard's single writer; broadcast relations and rule definitions fan out
  to all primaries;
* **staleness is bounded, not accidental**: every replica read carries a
  version floor — the connection's read-your-writes token and/or the
  ``max_lag`` distance from the newest version the router has *witnessed*
  — and a replica that cannot satisfy the floor answers ``STALE_REPLICA``,
  upon which the router retries on the primary.  The client just sees a
  slightly slower correct answer.

Version bookkeeping: the router never invents versions.  It remembers, per
shard, the highest version any backend reply carried (witnessed versions)
and, per client connection, the versions that connection's own writes
produced (read-my-writes floors).
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Optional

from ..datalog.parser import parse_program
from ..errors import ParseError, TestbedError
from ..obs.metrics import MetricsRegistry
from ..obs.live.exporter import MetricSample, MetricsExporter
from ..server.client import DkbClient, ServerError, StaleReplicaError
from ..server.protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    decode_line,
    encode_message,
    error_reply,
    ok_reply,
    validate_request,
)
from .partition import ANY, Partitioner, merge_rows
from .shard import ShardAddresses
from .speclint import partition_errors


@dataclass(frozen=True)
class ReadPolicy:
    """Where reads run and how stale they may be.

    Attributes:
        prefer_replica: serve pinned/scattered reads from shard replicas
            when the shard has any (primaries otherwise).
        max_lag: bound, in D/KB versions, on how far behind the newest
            *witnessed* version a replica read may be; ``None`` = any
            committed snapshot is acceptable.
        read_my_writes: reads on a connection never run below the versions
            of that connection's own earlier writes (per-shard floor
            tokens).
    """

    prefer_replica: bool = True
    max_lag: Optional[int] = None
    read_my_writes: bool = True

    def __post_init__(self) -> None:
        if self.max_lag is not None and self.max_lag < 0:
            raise ValueError(f"max_lag must be >= 0, got {self.max_lag}")


@dataclass(frozen=True)
class RouterConfig:
    """Everything a :class:`ClusterRouter` needs to boot.

    Attributes:
        partitioner: the routing logic (carries the PartitionSpec).
        shards: bound addresses of every shard, indexed by shard id.
        host, port: the router's own bind address.
        read_policy: replica usage and staleness bounds.
        connect_timeout: socket timeout towards backends, seconds.
        metrics_port: serve Prometheus ``/metrics`` on this side port
            (``0`` = ephemeral; ``None`` = no exporter).  The page carries
            the router's own counters plus per-shard cluster samples —
            witnessed versions, replica watermarks, and replica *lag* —
            gathered by pinging the backends at scrape time.
    """

    partitioner: Partitioner
    shards: tuple[ShardAddresses, ...]
    host: str = "127.0.0.1"
    port: int = 0
    read_policy: ReadPolicy = field(default_factory=ReadPolicy)
    connect_timeout: float = 30.0
    metrics_port: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.shards) != self.partitioner.shards:
            raise ValueError(
                f"partitioner expects {self.partitioner.shards} shards, "
                f"got addresses for {len(self.shards)}"
            )
        for index, shard in enumerate(self.shards):
            if shard.shard_id != index:
                raise ValueError(
                    f"shard address {index} carries shard_id {shard.shard_id}"
                )


class _BackendPool:
    """One connection per backend address, owned by one handler thread."""

    def __init__(self, timeout: float) -> None:
        self.timeout = timeout
        self._clients: dict[tuple[str, int], DkbClient] = {}

    def client(self, address: tuple[str, int]) -> DkbClient:
        client = self._clients.get(address)
        if client is None:
            client = DkbClient(address[0], address[1], timeout=self.timeout)
            self._clients[address] = client
        return client

    def drop(self, address: tuple[str, int]) -> None:
        client = self._clients.pop(address, None)
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        for address in list(self._clients):
            self.drop(address)


class _RouterHandler(socketserver.StreamRequestHandler):
    """One client connection: route line requests until EOF."""

    server: "_RouterTcpServer"

    def setup(self) -> None:
        super().setup()
        self.backends = _BackendPool(self.server.router.config.connect_timeout)
        # Read-my-writes floor tokens: shard -> lowest version this
        # connection's reads may be served at.
        self.write_floors: dict[int, int] = {}

    def finish(self) -> None:
        self.backends.close()
        super().finish()

    def handle(self) -> None:
        router = self.server.router
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionResetError, BrokenPipeError, OSError):
                return
            if not line:
                return
            if not line.strip():
                continue
            started = time.perf_counter()
            request_id: Any = None
            try:
                message = decode_line(line)
                request_id = message.get("id")
                validate_request(message)
                reply = router.dispatch(message, self)
                reply["id"] = request_id
            except ProtocolError as error:
                reply = error_reply(
                    request_id, error.code, error.message, error.details
                )
            except ServerError as error:
                # A backend refusal the router could not absorb — forward
                # the structured code unchanged.
                reply = error_reply(
                    request_id, error.code, error.message, error.details
                )
            except ParseError as error:
                reply = error_reply(request_id, ErrorCode.BAD_REQUEST, str(error))
            except ConnectionError as error:
                reply = error_reply(
                    request_id,
                    ErrorCode.INTERNAL,
                    f"backend unreachable: {error}",
                )
            except Exception as error:  # pragma: no cover - defensive
                reply = error_reply(
                    request_id,
                    ErrorCode.INTERNAL,
                    f"{type(error).__name__}: {error}",
                )
            router.metrics.counter("router.requests").inc()
            if not reply.get("ok"):
                router.metrics.counter("router.errors").inc()
            router.metrics.histogram("router.request_seconds").observe(
                time.perf_counter() - started
            )
            try:
                wfile: BinaryIO = self.wfile
                wfile.write(encode_message(reply))
                wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                return


class _RouterTcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    router: "ClusterRouter"


class ClusterRouter:
    """The cluster's front door; use as a context manager or start/close."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.partitioner = config.partitioner
        self.metrics = MetricsRegistry()
        # Highest version witnessed per shard, from any backend reply.
        self._versions: dict[int, int] = {}  # guarded-by: _versions_lock
        self._versions_lock = threading.Lock()
        # Round-robin cursors: replica choice per shard, any-shard reads.
        self._cursor_lock = threading.Lock()
        self._replica_cursor: dict[int, int] = {}  # guarded-by: _cursor_lock
        self._any_cursor = 0  # guarded-by: _cursor_lock
        # Partitioned relations whose schema exists on *every* shard: the
        # first insert of each fans an empty typed slice to non-owners so
        # shard-local evaluation sees an empty relation, not a missing one.
        self._ensured: set[str] = set()  # guarded-by: _ensured_lock
        self._ensured_lock = threading.Lock()
        self._tcp = _RouterTcpServer((config.host, config.port), _RouterHandler)
        self._tcp.router = self
        self._thread: Optional[threading.Thread] = None
        self.started_at = time.time()
        # The /metrics side port: the exporter's scrape threads share one
        # backend pool, serialized by a lock (scrapes are rare; one ping
        # round per scrape is fine).
        self.exporter: Optional[MetricsExporter] = None
        self._scrape_lock = threading.Lock()
        self._scrape_backends = _BackendPool(  # guarded-by: _scrape_lock
            config.connect_timeout
        )
        if config.metrics_port is not None:
            # Touch the lazily-created counters so every family shows up
            # on the very first scrape (a dashboard should see a zero
            # series, not a missing one).
            for name in (
                "router.requests",
                "router.errors",
                "router.writes",
                "router.pinned_reads",
                "router.any_reads",
                "router.fanout_reads",
                "router.stale_fallbacks",
                "router.backend_failures",
            ):
                self.metrics.counter(name)
            self.exporter = (
                MetricsExporter(config.host, config.metrics_port)
                .add_source(self.metrics, {"role": "router"})
                .add_collector(self._cluster_samples)
                .start()
            )

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ClusterRouter":
        if self._thread is not None:
            raise RuntimeError("router already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="dkb-router",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._tcp.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.exporter is not None:
            self.exporter.close()
        with self._scrape_lock:
            self._scrape_backends.close()

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- version bookkeeping ----------------------------------------------

    def witness(self, shard: int, version: Any) -> None:
        """Record the highest version seen in a reply from ``shard``."""
        if not isinstance(version, int):
            return
        with self._versions_lock:
            if version > self._versions.get(shard, -1):
                self._versions[shard] = version

    def witnessed_version(self, shard: int) -> int:
        with self._versions_lock:
            return self._versions.get(shard, 0)

    def _floor_for(
        self, shard: int, handler: _RouterHandler
    ) -> Optional[int]:
        """The version floor a read on ``shard`` must satisfy, if any."""
        policy = self.config.read_policy
        floors: list[int] = []
        if policy.read_my_writes:
            token = handler.write_floors.get(shard)
            if token is not None:
                floors.append(token)
        if policy.max_lag is not None:
            floors.append(
                max(0, self.witnessed_version(shard) - policy.max_lag)
            )
        return max(floors) if floors else None

    # -- backend selection -------------------------------------------------

    def _read_backend(self, shard: int) -> tuple[str, int]:
        """The backend a read on ``shard`` should try first."""
        addresses = self.config.shards[shard]
        if self.config.read_policy.prefer_replica and addresses.replicas:
            with self._cursor_lock:
                cursor = self._replica_cursor.get(shard, 0)
                self._replica_cursor[shard] = cursor + 1
            return addresses.replicas[cursor % len(addresses.replicas)]
        return addresses.primary

    def _any_shard(self) -> int:
        with self._cursor_lock:
            shard = self._any_cursor % self.partitioner.shards
            self._any_cursor += 1
        return shard

    # -- request dispatch --------------------------------------------------

    def dispatch(
        self, message: dict[str, Any], handler: _RouterHandler
    ) -> dict[str, Any]:
        """Serve one validated request; returns the success reply."""
        op = message["op"]
        request_id = message.get("id")
        if op == "ping":
            return self._dispatch_ping(request_id, handler)
        if op == "query":
            return self._dispatch_query(message, handler)
        if op == "update":
            return self._dispatch_update(message, handler)
        if op == "define":
            self._vet_define(message)
            return self._fanout_write(message, handler, count_key="added")
        if op == "materialize":
            return self._fanout_write(message, handler, count_key="count")
        if op == "lint":
            # The rule base is identical on every shard; any one can lint.
            client = handler.backends.client(self._read_backend(self._any_shard()))
            reply = client.request("lint", q=message.get("q"))
            return ok_reply(request_id, diagnostics=reply["diagnostics"])
        if op == "stats":
            return ok_reply(request_id, stats=self.stats(handler))
        raise ProtocolError(ErrorCode.BAD_REQUEST, f"unknown op {op!r}")

    def _vet_define(self, message: dict[str, Any]) -> None:
        """Reject rule bases the partition lints (DK10x) prove unroutable.

        Raises:
            ProtocolError: ``UNROUTABLE_RULES`` when an error-severity
                DK10x finding means no shard could evaluate the rules
                soundly under this partition spec.  (Parse errors pass
                through — the shard-side define reports them with full
                context.)
        """
        try:
            program = parse_program(message["program"])
        except TestbedError:
            return
        findings = partition_errors(program, self.partitioner.spec)
        if findings is not None:
            raise ProtocolError(
                ErrorCode.UNROUTABLE_RULES,
                f"rule base fails partition lints: {findings}",
            )

    def _dispatch_ping(
        self, request_id: Any, handler: _RouterHandler
    ) -> dict[str, Any]:
        """Ping every primary: the authoritative per-shard version map."""
        versions: dict[str, int] = {}
        for shard in self.partitioner.all_shards():
            client = handler.backends.client(self.config.shards[shard].primary)
            reply = client.ping()
            self.witness(shard, reply.get("version"))
            versions[str(shard)] = int(reply["version"])
        return ok_reply(
            request_id,
            pong=True,
            protocol=PROTOCOL_VERSION,
            router=True,
            shards=self.partitioner.shards,
            versions=versions,
        )

    # -- reads -------------------------------------------------------------

    def _read_one(
        self,
        shard: int,
        message: dict[str, Any],
        handler: _RouterHandler,
    ) -> dict[str, Any]:
        """One shard-local read honouring the staleness policy.

        Tries the policy's preferred backend with the computed version
        floor; a ``STALE_REPLICA`` refusal falls back to the shard primary
        (which always satisfies any floor a committed write produced).
        Connection failures towards a replica also fail over to the
        primary rather than surfacing to the client.
        """
        payload = {
            key: message[key]
            for key in (
                "q", "bindings", "strategy", "optimize", "use_views",
                "use_cache",
            )
            if key in message
        }
        floor = self._floor_for(shard, handler)
        explicit = message.get("min_version")
        if explicit is not None:
            floor = explicit if floor is None else max(floor, explicit)
        if floor is not None and floor > 0:
            payload["min_version"] = floor
        backend = self._read_backend(shard)
        primary = self.config.shards[shard].primary
        if backend != primary:
            try:
                reply = handler.backends.client(backend).request(
                    "query", shard=shard, **payload
                )
                self.witness(shard, reply.get("version"))
                return reply
            except StaleReplicaError:
                self.metrics.counter("router.stale_fallbacks").inc()
            except (ConnectionError, OSError):
                handler.backends.drop(backend)
                self.metrics.counter("router.backend_failures").inc()
        reply = handler.backends.client(primary).request(
            "query", shard=shard, **payload
        )
        self.witness(shard, reply.get("version"))
        return reply

    def _dispatch_query(
        self, message: dict[str, Any], handler: _RouterHandler
    ) -> dict[str, Any]:
        route = self.partitioner.route(message["q"])
        if route.is_pinned:
            shards = [route.shard]
            self.metrics.counter("router.pinned_reads").inc()
        elif route.kind == ANY:
            shards = [self._any_shard()]
            self.metrics.counter("router.any_reads").inc()
        else:
            shards = list(self.partitioner.all_shards())
            self.metrics.counter("router.fanout_reads").inc()
        replies = [
            (shard, self._read_one(shard, message, handler))
            for shard in shards
        ]
        rows = merge_rows(reply["rows"] for _, reply in replies)
        versions = {
            str(shard): int(reply["version"]) for shard, reply in replies
        }
        return ok_reply(
            message.get("id"),
            rows=rows,
            count=len(rows),
            version=min(versions.values()),
            versions=versions,
            shards=[shard for shard, _ in replies],
            cached=all(reply.get("cached", False) for _, reply in replies),
            answered_from_view=all(
                reply.get("answered_from_view", False) for _, reply in replies
            ),
            seconds=sum(reply.get("seconds", 0.0) for _, reply in replies),
        )

    # -- writes ------------------------------------------------------------

    def _apply_write(
        self,
        shard: int,
        handler: _RouterHandler,
        message: dict[str, Any],
    ) -> dict[str, Any]:
        """One write on ``shard``'s primary, floors and versions updated."""
        client = handler.backends.client(self.config.shards[shard].primary)
        reply = client.request(message["op"], shard=shard, **{
            key: value
            for key, value in message.items()
            if key not in ("op", "id", "shard")
        })
        version = reply.get("version")
        self.witness(shard, version)
        if isinstance(version, int):
            previous = handler.write_floors.get(shard, 0)
            handler.write_floors[shard] = max(previous, version)
        return reply

    def _ensure_schema_everywhere(
        self, message: dict[str, Any], slices: dict[int, list[tuple]]
    ) -> None:
        """Widen the first insert of a relation to every shard.

        Non-owner shards get an empty slice carrying the batch's inferred
        column types, which creates the relation's schema there — a shard
        owning none of a partitioned relation's rows must still evaluate
        rules that read it (against an empty extent).  One-time per
        predicate per router; later inserts touch only owning shards.
        """
        predicate = message["predicate"]
        if message["action"] != "insert" or len(slices) == self.partitioner.shards:
            with self._ensured_lock:
                self._ensured.add(predicate)
            return
        with self._ensured_lock:
            if predicate in self._ensured:
                return
            self._ensured.add(predicate)
        rows = message["rows"]
        if "types" not in message and rows:
            message["types"] = [
                "INTEGER"
                if isinstance(value, int) and not isinstance(value, bool)
                else "TEXT"
                for value in rows[0]
            ]
        for shard in self.partitioner.all_shards():
            slices.setdefault(shard, [])

    def _dispatch_update(
        self, message: dict[str, Any], handler: _RouterHandler
    ) -> dict[str, Any]:
        predicate = message["predicate"]
        slices = self.partitioner.split_update(predicate, message["rows"])
        if not slices:
            return ok_reply(message.get("id"), count=0, versions={})
        self._ensure_schema_everywhere(message, slices)
        broadcast = self.partitioner.spec.is_broadcast(predicate)
        counts: list[int] = []
        versions: dict[str, int] = {}
        for shard in sorted(slices):
            sliced = dict(message)
            sliced["rows"] = [list(row) for row in slices[shard]]
            reply = self._apply_write(shard, handler, sliced)
            counts.append(int(reply.get("count", 0)))
            versions[str(shard)] = int(reply["version"])
        # A broadcast write applies the same batch everywhere: report one
        # copy, not the sum over shards.
        count = counts[0] if broadcast else sum(counts)
        self.metrics.counter("router.writes").inc()
        return ok_reply(
            message.get("id"),
            count=count,
            version=min(versions.values()),
            versions=versions,
            shards=sorted(slices),
        )

    def _fanout_write(
        self,
        message: dict[str, Any],
        handler: _RouterHandler,
        count_key: str,
    ) -> dict[str, Any]:
        """Apply one rule-base write (define/materialize) on every shard."""
        replies = {
            shard: self._apply_write(shard, handler, message)
            for shard in self.partitioner.all_shards()
        }
        versions = {
            str(shard): int(reply["version"])
            for shard, reply in replies.items()
            if isinstance(reply.get("version"), int)
        }
        first = replies[0]
        self.metrics.counter("router.writes").inc()
        return ok_reply(
            message.get("id"),
            **{count_key: first.get(count_key, 0)},
            version=min(versions.values()) if versions else 0,
            versions=versions,
        )

    # -- live observability ------------------------------------------------

    def _cluster_samples(self) -> "list[MetricSample]":
        """Per-shard cluster samples for the /metrics page.

        One ping round per scrape: every shard primary (refreshing the
        witnessed version) and every replica (its watermark).  Replica
        **lag** is the distance from the shard's witnessed version to the
        replica's watermark — the page a dashboard alerts on.  Unreachable
        backends degrade to an ``up 0`` sample rather than failing the
        whole scrape.
        """
        samples: list[MetricSample] = []
        with self._scrape_lock:
            for shard in self.partitioner.all_shards():
                addresses = self.config.shards[shard]
                labels = {"shard": str(shard)}
                try:
                    reply = self._scrape_backends.client(
                        addresses.primary
                    ).ping()
                    self.witness(shard, reply.get("version"))
                    samples.append(
                        MetricSample("cluster.primary.up", 1.0, labels)
                    )
                except (ServerError, ConnectionError, OSError):
                    self._scrape_backends.drop(addresses.primary)
                    samples.append(
                        MetricSample("cluster.primary.up", 0.0, labels)
                    )
                witnessed = self.witnessed_version(shard)
                samples.append(
                    MetricSample(
                        "cluster.shard.version",
                        float(witnessed),
                        labels,
                        help="highest D/KB version witnessed per shard",
                    )
                )
                for index, address in enumerate(addresses.replicas):
                    rlabels = dict(labels)
                    rlabels["replica"] = str(index)
                    try:
                        reply = self._scrape_backends.client(address).ping()
                        watermark = int(reply["version"])
                    except (ServerError, ConnectionError, OSError):
                        self._scrape_backends.drop(address)
                        samples.append(
                            MetricSample("cluster.replica.up", 0.0, rlabels)
                        )
                        continue
                    samples.append(
                        MetricSample("cluster.replica.up", 1.0, rlabels)
                    )
                    samples.append(
                        MetricSample(
                            "cluster.replica.watermark",
                            float(watermark),
                            rlabels,
                        )
                    )
                    samples.append(
                        MetricSample(
                            "cluster.replica.lag",
                            float(max(0, witnessed - watermark)),
                            rlabels,
                            help="versions behind the shard's witnessed "
                            "version",
                        )
                    )
        return samples

    # -- introspection -----------------------------------------------------

    def stats(self, handler: _RouterHandler) -> dict[str, Any]:
        """Router metrics plus the per-shard primary/replica stats."""
        shards: dict[str, Any] = {}
        for shard in self.partitioner.all_shards():
            addresses = self.config.shards[shard]
            primary = handler.backends.client(addresses.primary).stats()
            replicas = []
            for address in addresses.replicas:
                try:
                    reply = handler.backends.client(address).ping()
                    replicas.append(
                        {
                            "address": list(address),
                            "watermark": int(reply["version"]),
                        }
                    )
                except (ServerError, ConnectionError, OSError):
                    replicas.append({"address": list(address), "watermark": None})
            shards[str(shard)] = {
                "primary": primary["stats"],
                "primary_version": self.witnessed_version(shard),
                "replicas": replicas,
            }
        return {
            "protocol": PROTOCOL_VERSION,
            "router": True,
            "uptime_seconds": time.time() - self.started_at,
            "read_policy": {
                "prefer_replica": self.config.read_policy.prefer_replica,
                "max_lag": self.config.read_policy.max_lag,
                "read_my_writes": self.config.read_policy.read_my_writes,
            },
            "partition": self.partitioner.spec.to_dict(),
            "metrics": self.metrics.snapshot(),
            "shards": shards,
        }


__all__ = ["ClusterRouter", "ReadPolicy", "RouterConfig"]
