"""The sharded multi-process D/KBMS cluster.

A routing front-end (:class:`ClusterRouter`) over ``N`` shard backends,
each a full concurrent query server (:mod:`repro.server`) holding one hash
partition of the EDB, optionally with read replicas fed by snapshot copy
and watermarked by the persistent D/KB version counter.  The partition
*metadata* lives in :mod:`repro.km.partition`; this package holds the
runtime: routing (:mod:`.partition`), replication (:mod:`.replica`), the
per-shard process (:mod:`.shard`), the front-end (:mod:`.router`), and
cluster boot (:mod:`.supervisor`).
"""

from ..km.partition import PartitionSpec, TablePartition
from .partition import Partitioner, QueryRoute, merge_rows
from .replica import Replicator
from .router import ClusterRouter, ReadPolicy, RouterConfig
from .shard import ShardAddresses, ShardConfig, ShardRuntime
from .supervisor import ClusterConfig, ClusterSupervisor, LocalCluster

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSupervisor",
    "LocalCluster",
    "PartitionSpec",
    "Partitioner",
    "QueryRoute",
    "ReadPolicy",
    "Replicator",
    "RouterConfig",
    "ShardAddresses",
    "ShardConfig",
    "ShardRuntime",
    "TablePartition",
    "merge_rows",
]
