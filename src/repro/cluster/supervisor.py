"""Booting whole clusters: in-process for tests, one process per shard.

Two deployment shapes over the same parts:

* :class:`LocalCluster` runs every shard runtime *and* the router inside
  the calling process — deterministic and debuggable, the shape the
  consistency tests use (``sync_replicas()`` replaces sleeping on the
  replication poll);
* :class:`ClusterSupervisor` forks one OS process per shard (the shard
  reports its bound addresses back over a pipe) and runs the router in
  the supervising process — real multi-process parallelism, the shape
  ``python -m repro cluster`` and the scaling benchmark use.

Both resolve a :class:`ClusterConfig` into per-shard
:class:`~repro.cluster.shard.ShardConfig` s and a
:class:`~repro.cluster.router.RouterConfig`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from ..km.partition import PartitionSpec
from ..server.client import DkbClient
from .partition import Partitioner
from .router import ClusterRouter, ReadPolicy, RouterConfig
from .shard import ShardAddresses, ShardConfig, ShardRuntime


@dataclass(frozen=True)
class ClusterConfig:
    """One declaration for a whole cluster (picklable).

    Attributes:
        spec: the partition metadata; ``spec.shards`` is the shard count.
        data_dir: directory receiving ``shard{i}.sqlite`` files (created
            if missing).
        replicas: read replicas per shard.
        host: bind address for every server and the router.
        router_port: the router's port (``0`` = ephemeral); shard backends
            always bind ephemerally.
        read_policy: the router's replica usage and staleness bounds.
        readers: reader sessions per backend server.
        max_waiters: admission wait-queue bound per backend server.
        cache_size: result-cache entries per backend server.
        request_timeout: per-query budget in seconds.
        replication_poll: replica pull cadence in seconds.
        metrics_port: the router's Prometheus ``/metrics`` side port
            (``0`` = ephemeral; ``None`` = no exporter).
    """

    spec: PartitionSpec
    data_dir: str
    replicas: int = 0
    host: str = "127.0.0.1"
    router_port: int = 0
    read_policy: ReadPolicy = field(default_factory=ReadPolicy)
    readers: int = 4
    max_waiters: int = 64
    cache_size: int = 256
    request_timeout: "float | None" = 30.0
    replication_poll: float = 0.25
    trace: bool = False
    metrics_port: Optional[int] = None

    def shard_path(self, shard_id: int) -> str:
        return os.path.join(self.data_dir, f"shard{shard_id}.sqlite")

    def shard_config(self, shard_id: int) -> ShardConfig:
        return ShardConfig(
            shard_id=shard_id,
            path=self.shard_path(shard_id),
            spec=self.spec,
            replicas=self.replicas,
            host=self.host,
            port=0,
            readers=self.readers,
            max_waiters=self.max_waiters,
            cache_size=self.cache_size,
            request_timeout=self.request_timeout,
            replication_poll=self.replication_poll,
            trace=self.trace,
        )

    def router_config(
        self, shards: "list[ShardAddresses]"
    ) -> RouterConfig:
        return RouterConfig(
            partitioner=Partitioner(self.spec),
            shards=tuple(shards),
            host=self.host,
            port=self.router_port,
            read_policy=self.read_policy,
            metrics_port=self.metrics_port,
        )


class LocalCluster:
    """Every shard and the router in one process — the test harness shape."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        os.makedirs(config.data_dir, exist_ok=True)
        self.shards: list[ShardRuntime] = []
        self.router: Optional[ClusterRouter] = None
        try:
            for shard_id in range(config.spec.shards):
                self.shards.append(ShardRuntime(config.shard_config(shard_id)))
            self.router = ClusterRouter(
                config.router_config(
                    [runtime.addresses for runtime in self.shards]
                )
            ).start()
        except BaseException:
            self.close()
            raise

    @property
    def address(self) -> tuple[str, int]:
        assert self.router is not None
        return self.router.address

    def client(self, timeout: float | None = 30.0) -> DkbClient:
        """A fresh protocol connection to the router."""
        host, port = self.address
        return DkbClient(host, port, timeout=timeout)

    def sync_replicas(self) -> dict[int, list[int]]:
        """Force one replication step everywhere; per-shard watermarks."""
        return {
            runtime.config.shard_id: runtime.sync_replicas()
            for runtime in self.shards
        }

    def close(self) -> None:
        if self.router is not None:
            self.router.close()
            self.router = None
        for runtime in self.shards:
            runtime.close()
        self.shards = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _shard_entry(
    config: ShardConfig, conn: multiprocessing.connection.Connection
) -> None:
    """One shard process: boot, report addresses, serve until told to stop.

    Module-level so the spawn start method can pickle it; the runtime
    serves from its own daemon threads, so this entry just parks on the
    control pipe — any message (or the supervisor dying and closing its
    end) is the shutdown signal.
    """
    try:
        runtime = ShardRuntime(config)
    except BaseException as error:
        conn.send({"error": f"{type(error).__name__}: {error}"})
        raise
    try:
        conn.send(runtime.addresses.to_dict())
        try:
            conn.recv()
        except EOFError:
            pass
    finally:
        runtime.close()


class ClusterSupervisor:
    """One process per shard plus the router — ``python -m repro cluster``.

    Args:
        config: the cluster declaration.
        boot_timeout: seconds to wait for each shard process to report its
            bound addresses before declaring the boot failed.
    """

    def __init__(self, config: ClusterConfig, boot_timeout: float = 60.0) -> None:
        self.config = config
        os.makedirs(config.data_dir, exist_ok=True)
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._pipes: list[multiprocessing.connection.Connection] = []
        self.shards: list[ShardAddresses] = []
        self.router: Optional[ClusterRouter] = None
        try:
            for shard_id in range(config.spec.shards):
                parent, child = context.Pipe()
                process = context.Process(
                    target=_shard_entry,
                    args=(config.shard_config(shard_id), child),
                    name=f"dkb-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child.close()
                self._processes.append(process)
                self._pipes.append(parent)
            for shard_id, pipe in enumerate(self._pipes):
                if not pipe.poll(boot_timeout):
                    raise RuntimeError(
                        f"shard {shard_id} did not report within "
                        f"{boot_timeout}s"
                    )
                payload = pipe.recv()
                if "error" in payload:
                    raise RuntimeError(
                        f"shard {shard_id} failed to boot: {payload['error']}"
                    )
                self.shards.append(ShardAddresses.from_dict(payload))
            self.router = ClusterRouter(
                config.router_config(self.shards)
            ).start()
        except BaseException:
            self.close()
            raise

    @property
    def address(self) -> tuple[str, int]:
        assert self.router is not None
        return self.router.address

    def client(self, timeout: float | None = 30.0) -> DkbClient:
        host, port = self.address
        return DkbClient(host, port, timeout=timeout)

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly picture of the running topology."""
        return {
            "router": list(self.address),
            "shards": [addresses.to_dict() for addresses in self.shards],
            "partition": self.config.spec.to_dict(),
            "replicas": self.config.replicas,
        }

    def serve_forever(self) -> None:
        """Block until interrupted (the ``python -m repro cluster`` loop).

        The router already serves from its own thread; this just parks the
        supervising thread so ``KeyboardInterrupt`` lands somewhere useful.
        """
        import time

        while True:
            time.sleep(1.0)

    def close(self) -> None:
        if self.router is not None:
            self.router.close()
            self.router = None
        for pipe in self._pipes:
            try:
                pipe.send("stop")
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=10.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck shard
                process.terminate()
                process.join(timeout=5.0)
        for pipe in self._pipes:
            pipe.close()
        self._processes = []
        self._pipes = []

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "ClusterConfig",
    "ClusterSupervisor",
    "LocalCluster",
]
