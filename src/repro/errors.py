"""Exception hierarchy for the D/KBMS testbed.

Every error raised by the public API derives from :class:`TestbedError`, so
callers can catch one base class.  The sub-hierarchy mirrors the components of
the Knowledge Manager described in the paper: parsing, semantic checking,
optimization, code generation, and DBMS access each have a distinct error
class.
"""

from __future__ import annotations


class TestbedError(Exception):
    """Base class for all errors raised by the testbed."""

    # Despite the Test* name, this is not a pytest case.
    __test__ = False


class ParseError(TestbedError):
    """A Horn clause, fact, or query could not be parsed.

    Carries the offending source text and, when available, the position of
    the first bad token.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        location = f" at position {position}" if position is not None else ""
        source = f" in {text!r}" if text else ""
        super().__init__(f"{message}{location}{source}")


class SemanticError(TestbedError):
    """Base class for errors detected by the Semantic Checker."""


class UndefinedPredicateError(SemanticError):
    """A derived predicate reachable from the query has no defining rule.

    This is the first semantic check of section 3.2.4 of the paper.
    """

    def __init__(self, predicate: str):
        self.predicate = predicate
        super().__init__(f"no rule or base relation defines predicate {predicate!r}")


class TypeInferenceError(SemanticError):
    """Type inference failed or two rules infer conflicting column types.

    This is the second semantic check of section 3.2.4 of the paper.
    """


class ArityError(SemanticError):
    """A predicate is used with inconsistent numbers of arguments."""

    def __init__(self, predicate: str, arities: set[int]):
        self.predicate = predicate
        self.arities = frozenset(arities)
        pretty = ", ".join(str(a) for a in sorted(arities))
        super().__init__(f"predicate {predicate!r} used with conflicting arities: {pretty}")


class SafetyError(SemanticError):
    """A rule is unsafe: a head or negated variable is not range-restricted."""


class StratificationError(SemanticError):
    """A program with negation has no stratification (negation in a cycle)."""


class OptimizationError(TestbedError):
    """The magic-sets (or other) rewriting could not be applied."""


class CodeGenerationError(TestbedError):
    """The Code Generator could not emit a program fragment for the query."""


class EvaluationError(TestbedError):
    """The run-time library failed while evaluating a query program."""


class CatalogError(TestbedError):
    """A base relation is missing from, or conflicts with, the data dictionary."""


class UpdateError(TestbedError):
    """The stored-D/KB update algorithm failed or would corrupt the store."""


class WorkloadError(TestbedError):
    """A synthetic workload generator was given invalid parameters."""
