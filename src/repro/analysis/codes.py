"""The stable diagnostic code catalog of the rule-base static analyzer.

Every diagnostic the analyzer can emit carries one of the ``DK``-prefixed
codes below.  Codes are stable identifiers: tools (CI gates, editors, the
REPL) may match on them, so a code is never renumbered or reused once
shipped.  :data:`CATALOG` records the default severity and a one-line
description per code — the same table DESIGN.md section 10 documents.
"""

from __future__ import annotations

from .diagnostics import Severity

#: A pass itself failed; the diagnostic wraps the underlying error.
INTERNAL_ERROR = "DK000"
#: A rule is unsafe: a head or negated variable is not range-restricted.
UNSAFE_RULE = "DK001"
#: Negation occurs inside a recursive cycle (not stratifiable).
UNSTRATIFIABLE_NEGATION = "DK002"
#: Conflicting column types within or between rules, against the stored
#: dictionary, or between a query constant and its column.
TYPE_CONFLICT = "DK003"
#: A referenced predicate is neither a base relation nor defined by rules.
UNDEFINED_PREDICATE = "DK004"
#: A rule is unreachable from the query (dead code for this query).
DEAD_RULE = "DK005"
#: A rule is a tautology, a duplicate, or subsumed by another rule.
REDUNDANT_RULE = "DK006"
#: A derived predicate is defined but never referenced by rules or queries.
UNREFERENCED_PREDICATE = "DK007"
#: A recursive predicate is called with an all-free adornment, so magic
#: sets cannot restrict its evaluation.
ALL_FREE_RECURSION = "DK008"
#: A rule body compiles to a SELECT whose FROM list forms a cartesian
#: product (disconnected join structure).
CARTESIAN_PRODUCT = "DK009"
#: A recursive rule carries no constants: every LFP iteration rescans the
#: participating relations unrestricted.
CONSTANT_FREE_RECURSION = "DK010"

#: code -> (default severity, one-line description).
CATALOG: dict[str, tuple[Severity, str]] = {
    INTERNAL_ERROR: (Severity.ERROR, "an analysis pass failed internally"),
    UNSAFE_RULE: (Severity.ERROR, "unsafe rule (not range-restricted)"),
    UNSTRATIFIABLE_NEGATION: (
        Severity.ERROR,
        "negation inside a recursive cycle (not stratifiable)",
    ),
    TYPE_CONFLICT: (Severity.ERROR, "conflicting column types"),
    UNDEFINED_PREDICATE: (
        Severity.ERROR,
        "predicate neither defined by rules nor a base relation",
    ),
    DEAD_RULE: (Severity.WARNING, "rule unreachable from the query"),
    REDUNDANT_RULE: (
        Severity.WARNING,
        "tautological, duplicate, or subsumed rule",
    ),
    UNREFERENCED_PREDICATE: (
        Severity.INFO,
        "derived predicate never referenced by rules or the query",
    ),
    ALL_FREE_RECURSION: (
        Severity.WARNING,
        "recursive predicate called with an all-free adornment",
    ),
    CARTESIAN_PRODUCT: (
        Severity.WARNING,
        "rule body compiles to a cartesian product",
    ),
    CONSTANT_FREE_RECURSION: (
        Severity.INFO,
        "recursive rule has no constants to restrict iteration",
    ),
}
