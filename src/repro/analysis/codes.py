"""The stable diagnostic code catalog of the rule-base static analyzer.

Every diagnostic the analyzer can emit carries one of the ``DK``-prefixed
codes below.  Codes are stable identifiers: tools (CI gates, editors, the
REPL) may match on them, so a code is never renumbered or reused once
shipped.  :data:`CATALOG` records the default severity and a one-line
description per code — the same table DESIGN.md section 10 documents.
"""

from __future__ import annotations

from .diagnostics import Severity

#: A pass itself failed; the diagnostic wraps the underlying error.
INTERNAL_ERROR = "DK000"
#: A rule is unsafe: a head or negated variable is not range-restricted.
UNSAFE_RULE = "DK001"
#: Negation occurs inside a recursive cycle (not stratifiable).
UNSTRATIFIABLE_NEGATION = "DK002"
#: Conflicting column types within or between rules, against the stored
#: dictionary, or between a query constant and its column.
TYPE_CONFLICT = "DK003"
#: A referenced predicate is neither a base relation nor defined by rules.
UNDEFINED_PREDICATE = "DK004"
#: A rule is unreachable from the query (dead code for this query).
DEAD_RULE = "DK005"
#: A rule is a tautology, a duplicate, or subsumed by another rule.
REDUNDANT_RULE = "DK006"
#: A derived predicate is defined but never referenced by rules or queries.
UNREFERENCED_PREDICATE = "DK007"
#: A recursive predicate is called with an all-free adornment, so magic
#: sets cannot restrict its evaluation.
ALL_FREE_RECURSION = "DK008"
#: A rule body compiles to a SELECT whose FROM list forms a cartesian
#: product (disconnected join structure).
CARTESIAN_PRODUCT = "DK009"
#: A recursive rule carries no constants: every LFP iteration rescans the
#: participating relations unrestricted.
CONSTANT_FREE_RECURSION = "DK010"

# -- DK10x: partition-aware lints, computed from a PartitionSpec ------------

#: The query can never be pinned to one shard: no goal binds the routing-key
#: argument of a routable predicate (or the bound keys disagree), so every
#: evaluation fans out to all shards.
NEVER_PINNED = "DK100"
#: A rule body joins two partitioned base relations on different key terms,
#: so matching rows can live on different shards — correctness then rests
#: entirely on entity-group co-location of the data.
CROSS_GROUP_JOIN = "DK101"
#: A rule derives a broadcast relation: every evaluation writes a fanned-out
#: extent, per LFP iteration when the rule is recursive ("hot").
BROADCAST_RULE_WRITE = "DK102"
#: A derived predicate has no declared route and is not broadcast — queries
#: against it always fan out.
UNROUTED_DERIVED = "DK103"
#: A negated goal over a non-broadcast predicate is not aligned with the
#: entity group of the rule's positive goals: a single shard sees only its
#: fragment of the negated relation, so NOT can succeed spuriously.
NONLOCAL_NEGATION = "DK104"
#: A routed derived predicate depends on a broadcast relation: broadcast
#: writes reach shards (and their replicas) at different versions, so pinned
#: or replica reads can observe a mixed-version join.
REPLICA_UNSAFE_ROUTE = "DK105"

#: code -> (default severity, one-line description).
CATALOG: dict[str, tuple[Severity, str]] = {
    INTERNAL_ERROR: (Severity.ERROR, "an analysis pass failed internally"),
    UNSAFE_RULE: (Severity.ERROR, "unsafe rule (not range-restricted)"),
    UNSTRATIFIABLE_NEGATION: (
        Severity.ERROR,
        "negation inside a recursive cycle (not stratifiable)",
    ),
    TYPE_CONFLICT: (Severity.ERROR, "conflicting column types"),
    UNDEFINED_PREDICATE: (
        Severity.ERROR,
        "predicate neither defined by rules nor a base relation",
    ),
    DEAD_RULE: (Severity.WARNING, "rule unreachable from the query"),
    REDUNDANT_RULE: (
        Severity.WARNING,
        "tautological, duplicate, or subsumed rule",
    ),
    UNREFERENCED_PREDICATE: (
        Severity.INFO,
        "derived predicate never referenced by rules or the query",
    ),
    ALL_FREE_RECURSION: (
        Severity.WARNING,
        "recursive predicate called with an all-free adornment",
    ),
    CARTESIAN_PRODUCT: (
        Severity.WARNING,
        "rule body compiles to a cartesian product",
    ),
    CONSTANT_FREE_RECURSION: (
        Severity.INFO,
        "recursive rule has no constants to restrict iteration",
    ),
    NEVER_PINNED: (
        Severity.WARNING,
        "query can never be pinned to a single shard",
    ),
    CROSS_GROUP_JOIN: (
        Severity.WARNING,
        "rule joins partitioned relations across entity groups",
    ),
    BROADCAST_RULE_WRITE: (
        Severity.ERROR,
        "rule derives a broadcast relation",
    ),
    UNROUTED_DERIVED: (
        Severity.WARNING,
        "derived predicate has no declared route",
    ),
    NONLOCAL_NEGATION: (
        Severity.ERROR,
        "negation a single shard can evaluate over a partial relation",
    ),
    REPLICA_UNSAFE_ROUTE: (
        Severity.WARNING,
        "routed derived predicate depends on a broadcast relation",
    ),
}
