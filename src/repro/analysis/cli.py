"""``python -m repro lint`` — the analyzer as a CI-friendly command line.

Lints Horn clause files (and/or a generated synthetic rule base) and exits
nonzero when any error-level diagnostic is found, so the command slots
directly into CI pipelines::

    python -m repro lint examples/family.dkb
    python -m repro lint --query "?- anc('a', X)." rules.dkb
    python -m repro lint --rulegen 50,9        # lint a rulegen rule base

Facts in a linted file define their predicates (and, with ``--types``,
column types can be declared without loading facts); predicates defined
nowhere surface as ``DK004`` errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Mapping, Sequence

from ..datalog.clauses import Program, Query
from ..datalog.parser import parse_program, parse_query
from ..errors import TestbedError
from ..workloads.rulegen import make_rule_base
from .diagnostics import DiagnosticReport, Severity
from .engine import analyze


def _parse_types(entries: list[str]) -> dict[str, tuple[str, ...]]:
    """``pred:TEXT,INTEGER`` declarations into a base-types mapping."""
    out: dict[str, tuple[str, ...]] = {}
    for entry in entries:
        predicate, separator, columns = entry.partition(":")
        if not separator or not predicate or not columns:
            raise ValueError(
                f"bad --types entry {entry!r}; expected name:TYPE[,TYPE...]"
            )
        out[predicate] = tuple(
            c.strip().upper() for c in columns.split(",")
        )
    return out


def _lint_one(
    label: str,
    program: Program,
    query: Query | None,
    base_types: Mapping[str, Sequence[str]],
    min_severity: Severity,
    output: IO[str],
    json_format: bool = False,
) -> DiagnosticReport:
    report = analyze(program, query, base_types=base_types)
    if json_format:
        # One diagnostic per line; ``source`` says which input it is from.
        for diagnostic in report:
            if diagnostic.severity.rank <= min_severity.rank:
                print(
                    json.dumps({"source": label, **diagnostic.to_json()}),
                    file=output,
                )
    else:
        print(f"== {label} ==", file=output)
        print(report.render(min_severity), file=output)
    return report


def main(argv: list[str] | None = None, output: IO[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Exit code 0 when every linted program is free of error-level
    diagnostics (and, with ``--werror``, of warnings), 1 when findings
    fail the run, 2 on bad usage or unreadable/unparsable input.
    """
    output = output if output is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Statically analyze Horn clause rule bases.",
    )
    parser.add_argument(
        "files", nargs="*", help="Horn clause files to lint"
    )
    parser.add_argument(
        "--query",
        metavar="QUERY",
        help="query context, e.g. \"?- anc('a', X).\" — enables the "
        "reachability and adornment passes",
    )
    parser.add_argument(
        "--types",
        metavar="PRED:TYPE[,TYPE...]",
        action="append",
        default=[],
        help="declare a base relation's column types without loading facts "
        "(repeatable)",
    )
    parser.add_argument(
        "--rulegen",
        metavar="TOTAL,RELEVANT",
        help="also lint a synthetic rulegen rule base with R_s=TOTAL, "
        "R_rs=RELEVANT (base relations typed TEXT,TEXT)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="text report (default) or one JSON diagnostic per line",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as failures too",
    )
    parser.add_argument(
        "--severity",
        choices=[s.value for s in Severity],
        default=Severity.INFO.value,
        help="minimum severity to display (default: info)",
    )
    arguments = parser.parse_args(argv)
    if not arguments.files and not arguments.rulegen:
        parser.print_usage(sys.stderr)
        print(
            "python -m repro lint: error: nothing to lint "
            "(give files and/or --rulegen)",
            file=sys.stderr,
        )
        return 2

    try:
        base_types = _parse_types(arguments.types)
    except ValueError as error:
        print(f"python -m repro lint: error: {error}", file=sys.stderr)
        return 2

    min_severity = Severity(arguments.severity)
    query: Query | None = None
    if arguments.query:
        try:
            query = parse_query(arguments.query)
        except TestbedError as error:
            print(f"python -m repro lint: error: {error}", file=sys.stderr)
            return 2

    failed = False
    bad_input = False
    for path in arguments.files:
        try:
            with open(path) as handle:
                program = parse_program(handle.read())
        except (OSError, TestbedError) as error:
            print(f"== {path} ==", file=output)
            print(f"error: {error}", file=output)
            bad_input = True
            continue
        report = _lint_one(
            path,
            program,
            query,
            base_types,
            min_severity,
            output,
            json_format=arguments.format == "json",
        )
        failed |= report.has_errors or (
            arguments.werror and bool(report.warnings)
        )

    if arguments.rulegen:
        try:
            total_text, __, relevant_text = arguments.rulegen.partition(",")
            rule_base = make_rule_base(int(total_text), int(relevant_text))
        except (ValueError, TestbedError) as error:
            print(
                f"python -m repro lint: error: bad --rulegen: {error}",
                file=sys.stderr,
            )
            return 2
        generated_types = dict(base_types)
        for base in rule_base.base_predicates:
            generated_types.setdefault(base, ("TEXT", "TEXT"))
        report = _lint_one(
            f"rulegen({arguments.rulegen})",
            rule_base.program,
            parse_query(rule_base.query_text()),
            generated_types,
            min_severity,
            output,
            json_format=arguments.format == "json",
        )
        failed |= report.has_errors or (
            arguments.werror and bool(report.warnings)
        )

    if bad_input:
        return 2
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
