"""Rule-base static analysis: a collect-all diagnostics engine.

The paper's Semantic Checker (section 3.2.4) fails fast — one problem per
compile attempt.  This package is the standing analysis layer the deferred
"future work" checks point at: :func:`analyze` runs every registered lint
pass over a program (safety, stratification, types, reachability,
redundancy, adornment trouble, compiled-join-structure trouble) and returns
one :class:`DiagnosticReport` carrying *all* findings, each with a stable
``DK``-prefixed code, a severity, a clause locus, and a fix hint.

The Semantic Checker itself now runs through this engine
(:mod:`repro.km.semantic`), keeping its fail-fast contract by raising from
an error-severity report; ``python -m repro lint`` and the REPL's ``:lint``
command expose the full collect-all behaviour.
"""

from .codes import CATALOG
from .diagnostics import Diagnostic, DiagnosticReport, Severity
from .engine import (
    PARTITION_PASSES,
    SEMANTIC_PASSES,
    AnalysisConfig,
    AnalysisContext,
    analysis_pass,
    analyze,
    registered_passes,
)

__all__ = [
    "CATALOG",
    "PARTITION_PASSES",
    "SEMANTIC_PASSES",
    "AnalysisConfig",
    "AnalysisContext",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "analysis_pass",
    "analyze",
    "registered_passes",
]
