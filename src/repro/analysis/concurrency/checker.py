"""Lock-discipline checks over scanned modules.

Consumes the per-module facts of :mod:`repro.analysis.concurrency.scan`
and reports :class:`~repro.analysis.diagnostics.Diagnostic` findings under
the ``CC`` codes:

* **CC001** — an access to a ``# guarded-by:`` attribute without holding
  the named lock (``__init__``/``__post_init__`` are exempt; writes to
  another object's guarded attribute are never allowed from outside).
* **CC002** — an attribute of a thread-shared class written from
  non-lifecycle methods with no consistent lock discipline and no
  annotation.
* **CC003** — a cycle in the global lock-acquisition graph, or a
  non-reentrant lock acquired while already held.
* **CC004** — a blocking call (SQL execute, socket I/O, sleep, snapshot
  copy...) while holding a lock not annotated ``# serializes:``,
  directly or through resolved calls.
* **CC005** — a ``guarded-by`` annotation naming a lock the class (or
  module) does not declare.
* **CC006** *(info)* — an attribute consistently guarded by one lock but
  not annotated; annotating it turns drift into a CC001 error.

A class is **thread-shared** when it declares a lock primitive or one of
its methods is a ``Thread``/``Timer`` target; socketserver plumbing
(request handlers, server classes) is exempt — those are per-request or
framework-managed instances.

Calls are resolved one level deep by construction site
(``self.a = ClassName(...)``), parameter annotation (``db: Database``) and
bare module-function name, then acquisition and blocking effects propagate
to a fixpoint — so "holds ``Replicator._lock``, calls ``read_version``,
which executes SQL" is visible as a lock-graph edge and a potential
blocking-under-lock site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import Diagnostic, DiagnosticReport, Severity
from . import codes
from .scan import (
    Acquire,
    ClassInfo,
    LockInfo,
    MethodInfo,
    ModuleInfo,
    scan_module,
)

#: A lock's global identity: (module path, owning class or "<module>", attr).
LockUid = tuple[str, str, str]
#: A scanned function's identity: (module path, class or "<module>", method).
UnitKey = tuple[str, str, str]


@dataclass
class _Unit:
    """One scanned function with its resolution context."""

    key: UnitKey
    module: ModuleInfo
    cls: ClassInfo | None
    info: MethodInfo

    @property
    def qualname(self) -> str:
        owner = self.cls.name if self.cls is not None else self.module.path
        return f"{owner}.{self.info.name}"


@dataclass
class _Registry:
    """Cross-module resolution tables."""

    modules: list[ModuleInfo]
    units: dict[UnitKey, _Unit] = field(default_factory=dict)
    classes_by_name: dict[str, list[ClassInfo]] = field(default_factory=dict)
    locks: dict[LockUid, LockInfo] = field(default_factory=dict)

    @classmethod
    def build(cls, modules: list[ModuleInfo]) -> "_Registry":
        registry = cls(modules=modules)
        for module in modules:
            for name, lock in module.locks.items():
                registry.locks[(module.path, "<module>", name)] = lock
            for class_info in module.classes.values():
                registry.classes_by_name.setdefault(
                    class_info.name, []
                ).append(class_info)
                for attr, lock in class_info.locks.items():
                    registry.locks[
                        (module.path, class_info.name, attr)
                    ] = lock
                for method in class_info.methods.values():
                    key = (module.path, class_info.name, method.name)
                    registry.units[key] = _Unit(key, module, class_info, method)
            for function in module.functions.values():
                key = (module.path, "<module>", function.name)
                registry.units[key] = _Unit(key, module, None, function)
        return registry

    def unique_class(self, name: str | None) -> ClassInfo | None:
        if name is None:
            return None
        candidates = self.classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def canonical(
        self, unit: _Unit, ref: tuple[str, str]
    ) -> LockUid | None:
        """Resolve a held-set element to a lock identity, if it is one."""
        space, name = ref
        if space == "self" and unit.cls is not None:
            canonical = unit.cls.canonical_lock(name)
            if canonical is not None:
                return (unit.module.path, unit.cls.name, canonical)
            return None
        if space == "mod" and name in unit.module.locks:
            return (unit.module.path, "<module>", name)
        return None

    def held_locks(
        self, unit: _Unit, held: frozenset[tuple[str, str]]
    ) -> set[LockUid]:
        out = set()
        for ref in held:
            uid = self.canonical(unit, ref)
            if uid is not None:
                out.add(uid)
        return out

    def resolve_call(
        self, unit: _Unit, ref: tuple[str, ...]
    ) -> _Unit | None:
        """One call site -> the scanned unit it lands in (best effort)."""
        kind = ref[0]
        if kind == "self" and unit.cls is not None:
            method = unit.cls.methods.get(ref[1])
            if method is not None:
                return self.units[
                    (unit.module.path, unit.cls.name, method.name)
                ]
            return None
        if kind == "attr" and unit.cls is not None:
            attribute = unit.cls.attributes.get(ref[1])
            target = self.unique_class(
                attribute.value_class if attribute else None
            )
            if target is not None and ref[2] in target.methods:
                return self.units[(target.path, target.name, ref[2])]
            return None
        if kind == "param":
            target = self.unique_class(unit.info.param_types.get(ref[1]))
            if target is not None and ref[2] in target.methods:
                return self.units[(target.path, target.name, ref[2])]
            return None
        if kind == "name":
            name = ref[1]
            nested = f"{unit.info.name}.{name}"
            if unit.cls is not None and nested in unit.cls.methods:
                return self.units[(unit.module.path, unit.cls.name, nested)]
            if unit.cls is None and nested in unit.module.functions:
                return self.units[(unit.module.path, "<module>", nested)]
            if name in unit.module.functions:
                return self.units[(unit.module.path, "<module>", name)]
            candidates = [
                module
                for module in self.modules
                if name in module.functions
            ]
            if len(candidates) == 1:
                return self.units[(candidates[0].path, "<module>", name)]
        return None


def lock_display(uid: LockUid) -> str:
    """``ClassName._lock`` / ``module.py:_GLOBAL_LOCK`` for messages."""
    path, owner, attr = uid
    if owner == "<module>":
        return f"{path}:{attr}"
    return f"{owner}.{attr}"


@dataclass
class _Summaries:
    """Fixpoint call-effect summaries."""

    #: Locks a call into the unit may acquire (directly or transitively).
    acquires: dict[UnitKey, set[LockUid]]
    #: Blocking-call names reachable from the unit, with one witness site.
    blocking: dict[UnitKey, dict[str, tuple[str, int, str]]]
    #: Resolved callees per unit (memoized once, reused by the checks).
    callees: dict[UnitKey, list[tuple[_Unit, int, frozenset]]]


def _summarize(registry: _Registry) -> _Summaries:
    acquires: dict[UnitKey, set[LockUid]] = {}
    blocking: dict[UnitKey, dict[str, tuple[str, int, str]]] = {}
    callees: dict[UnitKey, list[tuple[_Unit, int, frozenset]]] = {}
    for key, unit in registry.units.items():
        own_acquires = set()
        for acquire in unit.info.acquires:
            uid = registry.canonical(unit, acquire.lock)
            if uid is not None:
                own_acquires.add(uid)
        acquires[key] = own_acquires
        blocking[key] = {
            event.name: (unit.module.path, event.line, unit.qualname)
            for event in unit.info.blocking
        }
        resolved = []
        for call in unit.info.calls:
            target = registry.resolve_call(unit, call.ref)
            if target is not None and target.key != key:
                resolved.append((target, call.line, call.held))
        callees[key] = resolved
    changed = True
    while changed:
        changed = False
        for key, unit in registry.units.items():
            for target, _line, _held in callees[key]:
                missing_locks = acquires[target.key] - acquires[key]
                if missing_locks:
                    acquires[key] |= missing_locks
                    changed = True
                for name, site in blocking[target.key].items():
                    if name not in blocking[key]:
                        blocking[key][name] = site
                        changed = True
    return _Summaries(acquires, blocking, callees)


def _relative_held(
    registry: _Registry, unit: _Unit, held: frozenset
) -> set[LockUid]:
    return registry.held_locks(unit, held)


def _check_guarded_attributes(
    registry: _Registry,
) -> list[Diagnostic]:
    """CC001 / CC002 / CC005 / CC006 over every scanned class."""
    out: list[Diagnostic] = []
    for module in registry.modules:
        for cls in module.classes.values():
            out.extend(_check_class_attributes(registry, module, cls))
    out.extend(_check_cross_object_writes(registry))
    return out


def _check_class_attributes(
    registry: _Registry, module: ModuleInfo, cls: ClassInfo
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    guarded: dict[str, LockUid] = {}
    for attr, info in cls.attributes.items():
        if info.guarded_by is None:
            continue
        lock_name = info.guarded_by
        canonical = cls.canonical_lock(lock_name)
        if canonical is not None:
            guarded[attr] = (module.path, cls.name, canonical)
        elif lock_name in module.locks:
            guarded[attr] = (module.path, "<module>", lock_name)
        else:
            out.append(
                Diagnostic(
                    codes.UNKNOWN_LOCK,
                    Severity.ERROR,
                    f"attribute {attr!r} is annotated guarded-by "
                    f"{lock_name!r}, but {cls.name} declares no such lock",
                    predicate=f"{cls.name}.{attr}",
                    path=module.path,
                    line=info.line,
                    hint="declare the lock in __init__ or fix the "
                    "annotation to one of: "
                    + (", ".join(sorted(cls.locks)) or "(none declared)"),
                )
            )
    # CC001: every access to a guarded attribute must hold its lock.
    for method in cls.methods.values():
        if method.name.split(".", 1)[0] in ("__init__", "__post_init__"):
            continue
        for access in method.accesses:
            if access.receiver is not None:
                continue
            lock_uid = guarded.get(access.attr)
            if lock_uid is None:
                continue
            unit = registry.units[(module.path, cls.name, method.name)]
            if lock_uid in registry.held_locks(unit, access.held):
                continue
            verb = "written" if access.write else "read"
            out.append(
                Diagnostic(
                    codes.UNGUARDED_ACCESS,
                    Severity.ERROR,
                    f"{cls.name}.{access.attr} is {verb} in "
                    f"{method.name}() without holding "
                    f"{lock_display(lock_uid)} (its guarded-by lock)",
                    predicate=f"{cls.name}.{access.attr}",
                    path=module.path,
                    line=access.line,
                    hint=f"wrap the access in 'with self."
                    f"{lock_uid[2]}:' or move it into a locked method",
                )
            )
    # CC002 / CC006: infer shared mutable attributes.
    if cls.is_thread_shared:
        out.extend(_infer_shared_attributes(registry, module, cls, guarded))
    return out


def _infer_shared_attributes(
    registry: _Registry,
    module: ModuleInfo,
    cls: ClassInfo,
    guarded: dict[str, LockUid],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for attr, info in sorted(cls.attributes.items()):
        if (
            attr in guarded
            or info.guarded_by is not None
            or info.not_shared
            or info.synchronized
            or attr in cls.locks
        ):
            continue
        accesses: list[tuple[MethodInfo, object]] = []
        shared_write = False
        for method in cls.methods.values():
            if method.is_lifecycle:
                continue
            for access in method.accesses:
                if access.attr != attr or access.receiver is not None:
                    continue
                accesses.append((method, access))
                shared_write = shared_write or access.write
        if not shared_write:
            continue
        common: set[LockUid] | None = None
        first = None
        for method, access in accesses:
            unit = registry.units[(module.path, cls.name, method.name)]
            held = registry.held_locks(unit, access.held)
            common = held if common is None else (common & held)
            if first is None or access.write and not first[1].write:
                first = (method, access)
        assert first is not None
        if common:
            lock_uid = sorted(common)[0]
            out.append(
                Diagnostic(
                    codes.UNANNOTATED_GUARD,
                    Severity.INFO,
                    f"{cls.name}.{attr} is consistently accessed under "
                    f"{lock_display(lock_uid)} but has no guarded-by "
                    "annotation",
                    predicate=f"{cls.name}.{attr}",
                    path=module.path,
                    line=info.line,
                    hint=f"annotate the initialization with "
                    f"'# guarded-by: {lock_uid[2]}' to lock the "
                    "discipline in",
                )
            )
        else:
            method, access = first
            out.append(
                Diagnostic(
                    codes.UNPROTECTED_SHARED,
                    Severity.ERROR,
                    f"{cls.name}.{attr} is written from thread-reachable "
                    f"method {method.name}() with no consistent lock "
                    "discipline",
                    predicate=f"{cls.name}.{attr}",
                    path=module.path,
                    line=access.line,
                    hint="guard every access with one class lock and "
                    "annotate the attribute '# guarded-by: <lock>', or "
                    "mark it '# not-shared: <why>'",
                )
            )
    return out


def _check_cross_object_writes(registry: _Registry) -> list[Diagnostic]:
    """CC001 for ``self.other.attr = ...`` where ``attr`` is guarded."""
    out: list[Diagnostic] = []
    for unit in registry.units.values():
        if unit.cls is None:
            continue
        if unit.info.name.split(".", 1)[0] in ("__init__", "__post_init__"):
            continue
        for access in unit.info.accesses:
            if access.receiver is None or not access.write:
                continue
            attribute = unit.cls.attributes.get(access.receiver)
            target = registry.unique_class(
                attribute.value_class if attribute else None
            )
            if target is None:
                continue
            target_attr = target.attributes.get(access.attr)
            if target_attr is None or target_attr.guarded_by is None:
                continue
            out.append(
                Diagnostic(
                    codes.UNGUARDED_ACCESS,
                    Severity.ERROR,
                    f"{unit.qualname}() writes {target.name}."
                    f"{access.attr} directly, which is guarded by "
                    f"{target.name}.{target_attr.guarded_by} — callers "
                    "cannot hold another object's lock",
                    predicate=f"{target.name}.{access.attr}",
                    path=unit.module.path,
                    line=access.line,
                    hint=f"add a locked mutator method on {target.name} "
                    "and call that instead",
                )
            )
    return out


def _check_lock_graph(
    registry: _Registry, summaries: _Summaries
) -> list[Diagnostic]:
    """CC003: build the acquisition graph, report self-deadlocks + cycles."""
    out: list[Diagnostic] = []
    edges: dict[LockUid, set[LockUid]] = {}
    witness: dict[tuple[LockUid, LockUid], tuple[str, int, str]] = {}
    self_deadlocks: dict[tuple[LockUid, str], tuple[str, int]] = {}

    def add_edge(
        source: LockUid, dest: LockUid, site: tuple[str, int, str]
    ) -> None:
        if source == dest:
            if registry.locks[dest].kind != "RLock":
                key = (dest, site[2])
                if key not in self_deadlocks:
                    self_deadlocks[key] = (site[0], site[1])
            return
        edges.setdefault(source, set()).add(dest)
        witness.setdefault((source, dest), site)

    for key, unit in registry.units.items():
        for acquire in unit.info.acquires:
            dest = registry.canonical(unit, acquire.lock)
            if dest is None:
                continue
            for source in registry.held_locks(unit, acquire.held):
                add_edge(
                    source,
                    dest,
                    (unit.module.path, acquire.line, unit.qualname),
                )
        for target, line, held in summaries.callees[key]:
            held_uids = registry.held_locks(unit, held)
            if not held_uids:
                continue
            for dest in summaries.acquires[target.key]:
                for source in held_uids:
                    add_edge(
                        source,
                        dest,
                        (unit.module.path, line, unit.qualname),
                    )
    for (lock_uid, qualname), (path, line) in sorted(
        self_deadlocks.items()
    ):
        out.append(
            Diagnostic(
                codes.LOCK_CYCLE,
                Severity.ERROR,
                f"non-reentrant lock {lock_display(lock_uid)} "
                f"({registry.locks[lock_uid].kind}) is re-acquired in "
                f"{qualname}() while already held: guaranteed "
                "self-deadlock",
                predicate=lock_display(lock_uid),
                path=path,
                line=line,
                hint="use threading.RLock, or release before the call",
            )
        )
    for cycle in _cycles(edges):
        start = cycle[0]
        chain = " -> ".join(lock_display(uid) for uid in cycle + (start,))
        site = witness[(cycle[-1], start)]
        out.append(
            Diagnostic(
                codes.LOCK_CYCLE,
                Severity.ERROR,
                f"lock-acquisition cycle: {chain}; two threads taking "
                "these locks in opposite order deadlock",
                predicate=lock_display(start),
                path=site[0],
                line=site[1],
                hint="impose one global lock order and acquire in that "
                "order everywhere",
            )
        )
    return out


def _cycles(
    edges: dict[LockUid, set[LockUid]]
) -> list[tuple[LockUid, ...]]:
    """Strongly connected components with >1 node, as canonical cycles."""
    index = 0
    indices: dict[LockUid, int] = {}
    low: dict[LockUid, int] = {}
    stack: list[LockUid] = []
    on_stack: set[LockUid] = set()
    components: list[list[LockUid]] = []
    nodes = sorted(set(edges) | {d for dests in edges.values() for d in dests})

    def strongconnect(node: LockUid) -> None:
        nonlocal index
        indices[node] = low[node] = index
        index += 1
        stack.append(node)
        on_stack.add(node)
        for dest in sorted(edges.get(node, ())):
            if dest not in indices:
                strongconnect(dest)
                low[node] = min(low[node], low[dest])
            elif dest in on_stack:
                low[node] = min(low[node], indices[dest])
        if low[node] == indices[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                components.append(component)

    for node in nodes:
        if node not in indices:
            strongconnect(node)
    cycles = []
    for component in components:
        ordered = sorted(component)
        cycles.append(tuple(ordered))
    return sorted(cycles)


def _check_blocking_under_lock(
    registry: _Registry, summaries: _Summaries
) -> list[Diagnostic]:
    """CC004: blocking work while holding a non-serializing lock."""
    findings: dict[tuple[str, int], Diagnostic] = {}
    for key, unit in registry.units.items():
        for event in unit.info.blocking:
            offenders = sorted(
                uid
                for uid in registry.held_locks(unit, event.held)
                if not registry.locks[uid].serializes
            )
            if not offenders:
                continue
            site = (unit.module.path, event.line)
            if site in findings:
                continue
            findings[site] = Diagnostic(
                codes.BLOCKING_UNDER_LOCK,
                Severity.ERROR,
                f"{unit.qualname}() calls blocking {event.name}() while "
                f"holding {lock_display(offenders[0])}: every thread "
                "needing that lock stalls behind the I/O",
                predicate=lock_display(offenders[0]),
                path=unit.module.path,
                line=event.line,
                hint="move the blocking call outside the critical "
                "section, or annotate the lock '# serializes: <why>' if "
                "serializing this work is the point",
            )
        for target, line, held in summaries.callees[key]:
            blocked = summaries.blocking[target.key]
            if not blocked:
                continue
            offenders = sorted(
                uid
                for uid in registry.held_locks(unit, held)
                if not registry.locks[uid].serializes
            )
            if not offenders:
                continue
            site = (unit.module.path, line)
            if site in findings:
                continue
            name, (bpath, bline, bqual) = sorted(blocked.items())[0]
            findings[site] = Diagnostic(
                codes.BLOCKING_UNDER_LOCK,
                Severity.ERROR,
                f"{unit.qualname}() holds {lock_display(offenders[0])} "
                f"across a call to {target.qualname}(), which blocks in "
                f"{name}() ({bpath}:{bline})",
                predicate=lock_display(offenders[0]),
                path=unit.module.path,
                line=line,
                hint="call it outside the critical section, or annotate "
                "the lock '# serializes: <why>' if serializing this work "
                "is the point",
            )
    return [findings[site] for site in sorted(findings)]


def check_modules(modules: list[ModuleInfo]) -> DiagnosticReport:
    """Run every concurrency check over already-scanned modules."""
    registry = _Registry.build(modules)
    diagnostics: list[Diagnostic] = []
    checks = (
        ("attributes", lambda: _check_guarded_attributes(registry)),
        ("lock-graph", None),
        ("blocking", None),
    )
    summaries: _Summaries | None = None
    try:
        summaries = _summarize(registry)
    except Exception as error:  # pragma: no cover - defensive
        diagnostics.append(
            Diagnostic(
                codes.INTERNAL_ERROR,
                Severity.ERROR,
                f"call-summary fixpoint failed: {error}",
            )
        )
    for name, thunk in checks:
        try:
            if thunk is not None:
                diagnostics.extend(thunk())
            elif summaries is not None and name == "lock-graph":
                diagnostics.extend(_check_lock_graph(registry, summaries))
            elif summaries is not None and name == "blocking":
                diagnostics.extend(
                    _check_blocking_under_lock(registry, summaries)
                )
        except Exception as error:  # pragma: no cover - defensive
            diagnostics.append(
                Diagnostic(
                    codes.INTERNAL_ERROR,
                    Severity.ERROR,
                    f"concurrency check {name!r} failed: {error}",
                )
            )
    diagnostics.sort(key=lambda d: d.sort_key)
    return DiagnosticReport(
        tuple(diagnostics), ("concurrency-attributes", "lock-graph", "blocking")
    )


def check_sources(sources: dict[str, str]) -> DiagnosticReport:
    """Scan and check a mapping of path -> source text.

    Raises:
        SyntaxError: when a file does not parse.
    """
    modules = [
        scan_module(path, text) for path, text in sorted(sources.items())
    ]
    return check_modules(modules)


def check_files(paths: list[str]) -> DiagnosticReport:
    """Scan and check files on disk (callers expand directories first).

    Raises:
        OSError: when a file cannot be read.
        SyntaxError: when a file does not parse.
    """
    sources = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            sources[path] = handle.read()
    return check_sources(sources)
