"""Concurrency static analysis: lock discipline for the server/cluster code.

The testbed's multi-session server (:mod:`repro.server`) and sharded
cluster (:mod:`repro.cluster`) share :class:`~repro.dbms.engine.Database`
handles across request threads, replicator poll loops and timer callbacks.
This package is the checker that keeps that code honest without running
it: an AST scan (:mod:`~repro.analysis.concurrency.scan`) extracts locks,
annotated attributes and per-statement held-lock sets, and the checker
(:mod:`~repro.analysis.concurrency.checker`) verifies guarded-by
discipline, infers unprotected shared attributes, builds the global
lock-acquisition graph (cycles = deadlock) and flags blocking calls made
while holding a guard lock.  Findings are ordinary
:class:`~repro.analysis.diagnostics.Diagnostic` values under ``CC`` codes;
``python -m repro lint-concurrency`` is the command-line front end.
"""

from .checker import check_files, check_modules, check_sources
from .codes import CC_CATALOG
from .scan import ModuleInfo, scan_module

__all__ = [
    "CC_CATALOG",
    "ModuleInfo",
    "check_files",
    "check_modules",
    "check_sources",
    "scan_module",
]
