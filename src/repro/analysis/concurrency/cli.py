"""``python -m repro lint-concurrency`` — the lock-discipline checker CLI.

Scans Python files (or directories, recursively) and reports ``CC``-coded
findings; the exit-code contract matches ``python -m repro lint``::

    python -m repro lint-concurrency src/repro/server src/repro/cluster
    python -m repro lint-concurrency --format json src/repro/dbms

Exit 0 when clean (no error-level findings; with ``--werror`` no warnings
either), 1 when findings fail the run, 2 on unreadable or unparsable
input.  ``--format json`` writes one JSON object per diagnostic per line
(the :meth:`~repro.analysis.diagnostics.Diagnostic.to_json` schema).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import IO

from ..diagnostics import Severity
from .checker import check_files


def discover(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        OSError: when a path does not exist.
    """
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        elif os.path.exists(path):
            out.add(path)
        else:
            raise OSError(f"no such file or directory: {path!r}")
    return sorted(out)


def main(argv: list[str] | None = None, output: IO[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 clean / 1 fail / 2 usage)."""
    output = output if output is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro lint-concurrency",
        description="Check lock discipline of threaded Python code.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="Python files or directories (searched recursively)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="text report (default) or one JSON diagnostic per line",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as failures too",
    )
    parser.add_argument(
        "--severity",
        choices=[s.value for s in Severity],
        default=Severity.INFO.value,
        help="minimum severity to display (default: info)",
    )
    arguments = parser.parse_args(argv)
    try:
        files = discover(arguments.paths)
    except OSError as error:
        print(
            f"python -m repro lint-concurrency: error: {error}",
            file=sys.stderr,
        )
        return 2
    if not files:
        print(
            "python -m repro lint-concurrency: error: no Python files found",
            file=sys.stderr,
        )
        return 2
    try:
        report = check_files(files)
    except OSError as error:
        print(
            f"python -m repro lint-concurrency: error: {error}",
            file=sys.stderr,
        )
        return 2
    except SyntaxError as error:
        print(
            f"python -m repro lint-concurrency: error: "
            f"{error.filename}:{error.lineno}: {error.msg}",
            file=sys.stderr,
        )
        return 2
    min_severity = Severity(arguments.severity)
    if arguments.format == "json":
        for diagnostic in report:
            if diagnostic.severity.rank <= min_severity.rank:
                print(json.dumps(diagnostic.to_json()), file=output)
    else:
        print(report.render(min_severity), file=output)
    failed = report.has_errors or (
        arguments.werror and bool(report.warnings)
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
