"""Stable ``CC``-prefixed codes for the concurrency checker.

The rule-base analyzer owns the ``DK`` codes
(:mod:`repro.analysis.codes`); the source-level lock-discipline checker
(:mod:`repro.analysis.concurrency`) reports under its own ``CC`` band so a
mixed JSON stream stays unambiguous.  Same contract as the DK catalog:
codes are append-only and never renumbered.
"""

from __future__ import annotations

from ..diagnostics import Severity

#: A checker pass crashed; the finding wraps the underlying error.
INTERNAL_ERROR = "CC000"
#: An access to a ``# guarded-by:`` attribute without holding its lock.
UNGUARDED_ACCESS = "CC001"
#: An inferred shared mutable attribute with no lock discipline at all.
UNPROTECTED_SHARED = "CC002"
#: A cycle in the global lock-acquisition graph (deadlock), or a
#: non-reentrant lock re-acquired while already held (self-deadlock).
LOCK_CYCLE = "CC003"
#: A blocking call (socket, SQL execute, sleep, ...) made while holding a
#: lock not annotated ``# serializes:``.
BLOCKING_UNDER_LOCK = "CC004"
#: A ``# guarded-by:`` annotation naming a lock the class does not declare.
UNKNOWN_LOCK = "CC005"
#: An attribute consistently guarded by one lock but not annotated.
UNANNOTATED_GUARD = "CC006"

#: Every concurrency code with its default severity and one-line meaning.
CC_CATALOG: dict[str, tuple[Severity, str]] = {
    INTERNAL_ERROR: (
        Severity.ERROR,
        "a concurrency-checker pass failed internally",
    ),
    UNGUARDED_ACCESS: (
        Severity.ERROR,
        "guarded attribute accessed without holding its designated lock",
    ),
    UNPROTECTED_SHARED: (
        Severity.ERROR,
        "shared mutable attribute written with no lock discipline",
    ),
    LOCK_CYCLE: (
        Severity.ERROR,
        "lock-acquisition cycle (potential deadlock)",
    ),
    BLOCKING_UNDER_LOCK: (
        Severity.ERROR,
        "blocking call made while holding a guard lock",
    ),
    UNKNOWN_LOCK: (
        Severity.ERROR,
        "guarded-by annotation names a lock the class does not declare",
    ),
    UNANNOTATED_GUARD: (
        Severity.INFO,
        "attribute consistently guarded but missing a guarded-by annotation",
    ),
}
