"""AST scan: extract the lock-discipline facts of one Python module.

The scanner turns a source file into a :class:`ModuleInfo` — classes with
their declared locks, attributes (and ``# guarded-by:`` / ``# not-shared:``
/ ``# serializes:`` annotations), and per-method event streams: attribute
accesses, calls, blocking operations and lock acquisitions, each tagged
with the set of locks *held* at that point.  The checker
(:mod:`repro.analysis.concurrency.checker`) consumes these facts; nothing
here decides whether anything is wrong.

Held-lock tracking is flow-sensitive at statement granularity:

* ``with self._lock:`` (and multi-item ``with``) holds for the body;
* statement-level ``self._lock.acquire(...)`` — bare or assigned, as in
  ``got = self._lock.acquire(timeout=t)`` — holds until a statement-level
  ``self._lock.release()``;
* ``try`` bodies, handlers, ``else`` and ``finally`` are walked
  sequentially, so an acquire in the body pairs with a release in
  ``finally``;
* ``if`` branches are walked independently and their exit states
  intersected (a release on one branch only counts if every branch
  releases).

``threading.Condition(self._lock)`` aliases the condition attribute to the
underlying lock, so holding either name counts as holding the lock.

Annotations are trailing comments on the initializing assignment::

    self._watermark = -1          # guarded-by: _lock
    self._lock = threading.Lock() # serializes: snapshot copy is the point
    self._tracer = None           # not-shared: set before threads start

Nested function definitions become pseudo-methods named
``outer.inner`` and are scanned with an *empty* held set — they run later,
typically on another thread (``threading.Thread(target=inner)``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: Trailing-comment annotations the scanner honours.
ANNOTATION_RE = re.compile(
    r"#\s*(guarded-by|not-shared|serializes)\s*:\s*([^\n#]+)"
)

#: threading factories whose result is a lock-like primitive.
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: threading/queue factories that are internally synchronized — mutating
#: them from several threads is their job, so they are exempt from
#: shared-attribute inference.
SYNCHRONIZED_FACTORIES = frozenset(
    {"Event", "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue", "Barrier"}
)

#: Method names that almost certainly block (I/O, SQL, sleeping).  ``wait``
#: is deliberately absent: ``Condition.wait`` releases its lock.  ``get``
#: and ``put`` only count when the receiver is a known ``Queue`` attribute
#: (``dict.get`` is everywhere).  ``join`` is absent (``os.path.join``).
BLOCKING_CALLS = frozenset(
    {
        "accept",
        "commit",
        "connect",
        "execute",
        "executemany",
        "executescript",
        "poll",
        "read",
        "readline",
        "recv",
        "recv_into",
        "request",
        "rollback",
        "select",
        "send",
        "sendall",
        "serve_forever",
        "sleep",
        "snapshot_to",
    }
)

#: Queue methods that block only when the receiver really is a queue.
QUEUE_BLOCKING_CALLS = frozenset({"get", "put"})

#: Container methods that mutate their receiver — calling one on a guarded
#: attribute is a *write* to that attribute.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Methods that run before the object is shared or while tearing it down;
#: writes from these do not make an attribute "shared mutable".
LIFECYCLE_METHODS = frozenset(
    {
        "__init__",
        "__post_init__",
        "__enter__",
        "__exit__",
        "__del__",
        "close",
        "finish",
        "setup",
        "shutdown",
        "start",
        "stop",
    }
)

#: Base-class name fragments marking socketserver plumbing: one instance
#: per request/thread, so their attributes are not cross-thread shared.
EXEMPT_BASE_FRAGMENTS = ("RequestHandler", "TCPServer", "UDPServer", "BaseServer")

#: A lock as held-set element: ("self", attr) or ("mod", global name).
LockRef = tuple[str, str]


@dataclass
class LockInfo:
    """One lock-like attribute (or module global) and how it is declared."""

    name: str
    kind: str  # Lock | RLock | Condition | Semaphore | BoundedSemaphore
    line: int
    serializes: bool = False
    #: For ``Condition(self._x)``: the underlying lock attribute name.
    aliases: str | None = None


@dataclass
class AttributeInfo:
    """One instance attribute and its annotation, from first assignment."""

    name: str
    line: int
    guarded_by: str | None = None
    not_shared: bool = False
    #: Class name of the assigned value when it was ``Name(...)`` — used to
    #: resolve ``self.attr.method()`` calls across classes.
    value_class: str | None = None
    #: The factory was internally synchronized (Event, Queue, ...).
    synchronized: bool = False


@dataclass
class Access:
    """One read or write of ``self.attr`` (or ``self.receiver.attr``)."""

    attr: str
    line: int
    write: bool
    held: frozenset[LockRef]
    #: Set for cross-object accesses ``self.<receiver>.<attr>``.
    receiver: str | None = None


@dataclass
class CallSite:
    """A call the checker may resolve to another scanned method.

    ``ref`` is ``("self", m)``, ``("attr", a, m)``, ``("param", p, m)``
    or ``("name", f)``.
    """

    ref: tuple[str, ...]
    line: int
    held: frozenset[LockRef]


@dataclass
class BlockingCall:
    """A call matching the blocking-name heuristics."""

    name: str
    line: int
    held: frozenset[LockRef]


@dataclass
class Acquire:
    """A lock acquisition and the locks already held when it happens."""

    lock: LockRef
    line: int
    held: frozenset[LockRef]


@dataclass
class MethodInfo:
    """Everything observed inside one function body."""

    name: str
    line: int
    accesses: list[Access] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    #: Parameter name -> annotated class name, for cross-class resolution.
    param_types: dict[str, str] = field(default_factory=dict)

    @property
    def is_lifecycle(self) -> bool:
        """Whether writes here count as pre/post-sharing initialization."""
        base = self.name.split(".", 1)[0]
        return base in LIFECYCLE_METHODS


@dataclass
class ClassInfo:
    """One scanned class: locks, attributes, methods, thread entries."""

    name: str
    path: str
    line: int
    bases: list[str] = field(default_factory=list)
    locks: dict[str, LockInfo] = field(default_factory=dict)
    attributes: dict[str, AttributeInfo] = field(default_factory=dict)
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    #: Method names handed to ``Thread``/``Timer`` as targets (includes
    #: ``outer.inner`` pseudo-methods).
    thread_targets: set[str] = field(default_factory=set)

    @property
    def is_exempt(self) -> bool:
        """socketserver plumbing: per-request instances, not shared state."""
        return any(
            fragment in base
            for base in self.bases
            for fragment in EXEMPT_BASE_FRAGMENTS
        )

    @property
    def is_thread_shared(self) -> bool:
        """Instances are reached by more than one thread.

        Heuristic: the class declares a lock primitive (why else?) or one
        of its methods is a ``Thread``/``Timer`` target.  Exempt
        socketserver plumbing never counts.
        """
        if self.is_exempt:
            return False
        return bool(self.locks) or bool(self.thread_targets)

    def canonical_lock(self, name: str) -> str | None:
        """Resolve ``name`` through Condition aliasing to the real lock."""
        info = self.locks.get(name)
        if info is None:
            return None
        if info.aliases is not None and info.aliases in self.locks:
            return info.aliases
        return name


@dataclass
class ModuleInfo:
    """One scanned source file."""

    path: str
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, MethodInfo] = field(default_factory=dict)
    locks: dict[str, LockInfo] = field(default_factory=dict)


def _annotation_for(lines: list[str], node: ast.stmt) -> tuple[str, str] | None:
    """The trailing annotation of ``node``, if any (checks first/last line)."""
    for lineno in {node.lineno, getattr(node, "end_lineno", node.lineno)}:
        if lineno is None or lineno > len(lines):
            continue
        match = ANNOTATION_RE.search(lines[lineno - 1])
        if match:
            return match.group(1), match.group(2).strip()
    return None


def _call_factory(node: ast.expr) -> str | None:
    """The bare factory name of a ``Call`` value (``threading.Lock`` -> Lock)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _annotation_class(node: ast.expr | None) -> str | None:
    """First class-ish identifier of a type annotation (``"Database"``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    else:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - malformed annotation
            return None
    match = re.search(r"[A-Za-z_][A-Za-z0-9_]*", text.split("|")[0].strip())
    if match is None:
        return None
    name = match.group(0)
    if name in {"Optional", "Union"}:
        inner = re.search(r"\[\s*([A-Za-z_][A-Za-z0-9_]*)", text)
        return inner.group(1) if inner else None
    return name


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``X`` (else None)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodScanner:
    """Walk one function body, tracking held locks statement by statement."""

    def __init__(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        info: MethodInfo,
        lines: list[str],
    ) -> None:
        self.module = module
        self.cls = cls
        self.info = info
        self.lines = lines

    # -- entry ----------------------------------------------------------

    def scan(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            annotated = _annotation_class(arg.annotation)
            if annotated is not None:
                self.info.param_types[arg.arg] = annotated
        self._walk_body(node.body, frozenset())

    # -- statements -----------------------------------------------------

    def _walk_body(
        self, stmts: list[ast.stmt], held: frozenset[LockRef]
    ) -> frozenset[LockRef]:
        for stmt in stmts:
            held = self._walk_stmt(stmt, held)
        return held

    def _walk_stmt(
        self, stmt: ast.stmt, held: frozenset[LockRef]
    ) -> frozenset[LockRef]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            gained: list[LockRef] = []
            for item in stmt.items:
                ref = self._lock_ref(item.context_expr)
                if ref is not None:
                    self.info.acquires.append(
                        Acquire(ref, item.context_expr.lineno, held)
                    )
                    gained.append(ref)
                else:
                    self._visit_expr(item.context_expr, held)
            self._walk_body(stmt.body, held | frozenset(gained))
            return held
        if isinstance(stmt, ast.If):
            self._visit_expr(stmt.test, held)
            true_exit = self._walk_body(stmt.body, held)
            false_exit = self._walk_body(stmt.orelse, held)
            return true_exit & false_exit
        if isinstance(stmt, ast.Try):
            held = self._walk_body(stmt.body, held)
            for handler in stmt.handlers:
                held = self._walk_body(handler.body, held)
            held = self._walk_body(stmt.orelse, held)
            return self._walk_body(stmt.finalbody, held)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter, held)
            self._record_store(stmt.target, held)
            self._walk_body(stmt.body, held)
            self._walk_body(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, held)
            self._walk_body(stmt.body, held)
            self._walk_body(stmt.orelse, held)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_nested(stmt)
            return held
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._walk_assign(stmt, held)
        if isinstance(stmt, ast.Expr):
            acquired = self._acquire_in(stmt.value, held)
            if acquired is not None:
                return held | {acquired}
            released = self._release_in(stmt.value)
            if released is not None:
                return held - {released}
            self._visit_expr(stmt.value, held)
            return held
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_store(target, held)
            return held
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child, held)
            return held
        # Remaining statements (pass, break, imports, class defs...) carry
        # no events; walk their expressions generically just in case.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child, held)
        return held

    def _walk_assign(
        self,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        held: frozenset[LockRef],
    ) -> frozenset[LockRef]:
        value = stmt.value
        if value is not None:
            acquired = self._acquire_in(value, held)
            if acquired is not None:
                # got = self._lock.acquire(timeout=...) — treat as held;
                # the paired statement-level release() drops it again.
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    self._record_store(target, held)
                return held | {acquired}
            self._visit_expr(value, held)
        if isinstance(stmt, ast.AugAssign):
            # += reads then writes the target.
            self._record_load_of_target(stmt.target, held)
            self._record_store(stmt.target, held)
        else:
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                self._record_store(target, held)
        return held

    def _scan_nested(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Nested def: a pseudo-method scanned with an empty held set."""
        name = f"{self.info.name}.{node.name}"
        nested = MethodInfo(name=name, line=node.lineno)
        owner = self.cls.methods if self.cls is not None else self.module.functions
        owner[name] = nested
        _MethodScanner(self.module, self.cls, nested, self.lines).scan(node)

    # -- locks ----------------------------------------------------------

    def _lock_ref(self, node: ast.expr) -> LockRef | None:
        """``self.X`` / bare module-lock name as a with-item or receiver."""
        attr = _self_attr(node)
        if attr is not None:
            return ("self", attr)
        if isinstance(node, ast.Name) and node.id in self.module.locks:
            return ("mod", node.id)
        return None

    def _acquire_in(
        self, node: ast.expr, held: frozenset[LockRef]
    ) -> LockRef | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            ref = self._lock_ref(node.func.value)
            if ref is not None:
                self.info.acquires.append(Acquire(ref, node.lineno, held))
                return ref
        return None

    def _release_in(self, node: ast.expr) -> LockRef | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
        ):
            return self._lock_ref(node.func.value)
        return None

    # -- expressions ----------------------------------------------------

    def _record_store(self, target: ast.expr, held: frozenset[LockRef]) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self.info.accesses.append(
                Access(attr, target.lineno, True, held)
            )
            return
        if isinstance(target, ast.Attribute):
            receiver = _self_attr(target.value)
            if receiver is not None:
                # self.<receiver>.<attr> = ... — a cross-object write.
                self.info.accesses.append(
                    Access(target.attr, target.lineno, True, held, receiver)
                )
                self.info.accesses.append(
                    Access(receiver, target.lineno, False, held)
                )
                return
            self._visit_expr(target.value, held)
            return
        if isinstance(target, ast.Subscript):
            base_attr = _self_attr(target.value)
            if base_attr is not None:
                self.info.accesses.append(
                    Access(base_attr, target.lineno, True, held)
                )
            else:
                self._visit_expr(target.value, held)
            self._visit_expr(target.slice, held)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, held)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value, held)

    def _record_load_of_target(
        self, target: ast.expr, held: frozenset[LockRef]
    ) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self.info.accesses.append(Access(attr, target.lineno, False, held))
            return
        if isinstance(target, ast.Attribute):
            receiver = _self_attr(target.value)
            if receiver is not None:
                self.info.accesses.append(
                    Access(target.attr, target.lineno, False, held, receiver)
                )
        elif isinstance(target, ast.Subscript):
            base_attr = _self_attr(target.value)
            if base_attr is not None:
                self.info.accesses.append(
                    Access(base_attr, target.lineno, False, held)
                )

    def _visit_expr(self, node: ast.expr, held: frozenset[LockRef]) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node, held)
            return
        attr = _self_attr(node)
        if attr is not None:
            self.info.accesses.append(Access(attr, node.lineno, False, held))
            return
        if isinstance(node, ast.Attribute):
            receiver = _self_attr(node.value)
            if receiver is not None:
                # self.<receiver>.<attr> read: the receiver is what this
                # class owns — record that; the inner attribute belongs to
                # another object and reads of it are not checked.
                self.info.accesses.append(
                    Access(receiver, node.lineno, False, held)
                )
                return
            self._visit_expr(node.value, held)
            return
        if isinstance(node, (ast.Lambda,)):
            # Lambdas run later (often on another thread); scan with an
            # empty held set, like nested defs.
            self._visit_expr_in_new_context(node.body)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, held)
            elif isinstance(child, ast.comprehension):
                self._visit_expr(child.iter, held)
                for condition in child.ifs:
                    self._visit_expr(condition, held)

    def _visit_expr_in_new_context(self, node: ast.expr) -> None:
        self._visit_expr(node, frozenset())

    def _visit_call(self, node: ast.Call, held: frozenset[LockRef]) -> None:
        func = node.func
        self._detect_thread_target(node)
        handled_receiver = False
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            self_attr = _self_attr(receiver)
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                # self.m(...)
                self.info.calls.append(CallSite(("self", method), node.lineno, held))
                handled_receiver = True
            elif self_attr is not None:
                # self.a.m(...)
                if method in MUTATOR_METHODS:
                    self.info.accesses.append(
                        Access(self_attr, node.lineno, True, held)
                    )
                else:
                    self.info.accesses.append(
                        Access(self_attr, node.lineno, False, held)
                    )
                if self._is_blocking(method, self_attr):
                    self.info.blocking.append(
                        BlockingCall(method, node.lineno, held)
                    )
                if method not in ("acquire", "release"):
                    self.info.calls.append(
                        CallSite(("attr", self_attr, method), node.lineno, held)
                    )
                handled_receiver = True
            elif isinstance(receiver, ast.Name):
                name = receiver.id
                if name == "subprocess" or self._is_blocking(method, None):
                    self.info.blocking.append(
                        BlockingCall(
                            f"{name}.{method}"
                            if name in ("time", "subprocess", "socket")
                            else method,
                            node.lineno,
                            held,
                        )
                    )
                if name in self.info.param_types:
                    self.info.calls.append(
                        CallSite(("param", name, method), node.lineno, held)
                    )
                handled_receiver = True
            else:
                if self._is_blocking(method, None):
                    self.info.blocking.append(
                        BlockingCall(method, node.lineno, held)
                    )
        elif isinstance(func, ast.Name):
            if func.id in BLOCKING_CALLS:
                self.info.blocking.append(
                    BlockingCall(func.id, node.lineno, held)
                )
            self.info.calls.append(CallSite(("name", func.id), node.lineno, held))
            handled_receiver = True
        if not handled_receiver and isinstance(func, ast.Attribute):
            self._visit_expr(func.value, held)
        for argument in node.args:
            if isinstance(argument, ast.Starred):
                self._visit_expr(argument.value, held)
            else:
                self._visit_expr(argument, held)
        for keyword in node.keywords:
            self._visit_expr(keyword.value, held)

    def _is_blocking(self, method: str, receiver_attr: str | None) -> bool:
        if method in BLOCKING_CALLS:
            return True
        if method in QUEUE_BLOCKING_CALLS and receiver_attr is not None:
            if self.cls is not None:
                info = self.cls.attributes.get(receiver_attr)
                if info is not None and info.value_class is not None:
                    return "Queue" in info.value_class
        return False

    def _detect_thread_target(self, node: ast.Call) -> None:
        factory = _call_factory(node)
        if factory not in ("Thread", "Timer"):
            return
        target: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg in ("target", "function"):
                target = keyword.value
        if target is None and factory == "Timer" and len(node.args) >= 2:
            target = node.args[1]
        if target is None or self.cls is None:
            return
        attr = _self_attr(target)
        if attr is not None:
            self.cls.thread_targets.add(attr)
            return
        if isinstance(target, ast.Name):
            # A nested function of this method, handed to a thread.
            self.cls.thread_targets.add(f"{self.info.name}.{target.id}")


def _record_attribute(
    cls: ClassInfo,
    attr: str,
    stmt: ast.stmt,
    value: ast.expr | None,
    lines: list[str],
) -> None:
    """Register ``self.attr = value`` metadata (first assignment wins)."""
    annotation = _annotation_for(lines, stmt)
    factory = _call_factory(value) if value is not None else None
    if factory in LOCK_FACTORIES:
        if attr not in cls.locks:
            aliases = None
            if (
                factory == "Condition"
                and isinstance(value, ast.Call)
                and value.args
            ):
                aliases = _self_attr(value.args[0])
            cls.locks[attr] = LockInfo(
                name=attr,
                kind=factory,
                line=stmt.lineno,
                serializes=bool(annotation and annotation[0] == "serializes"),
                aliases=aliases,
            )
        return
    if attr in cls.attributes:
        existing = cls.attributes[attr]
        if existing.guarded_by is None and annotation:
            kind, text = annotation
            if kind == "guarded-by":
                existing.guarded_by = text.removeprefix("self.").strip()
            elif kind == "not-shared":
                existing.not_shared = True
        return
    info = AttributeInfo(
        name=attr,
        line=stmt.lineno,
        value_class=factory,
        synchronized=factory in SYNCHRONIZED_FACTORIES,
    )
    if annotation:
        kind, text = annotation
        if kind == "guarded-by":
            info.guarded_by = text.removeprefix("self.").strip()
        elif kind == "not-shared":
            info.not_shared = True
    cls.attributes[attr] = info


def _collect_attributes(
    cls: ClassInfo, node: ast.ClassDef, lines: list[str]
) -> None:
    """Harvest lock/attribute declarations from the whole class body."""
    for stmt in node.body:
        # Class-level declarations (dataclass fields, handler annotations).
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            attr = stmt.target.id
            _record_attribute(cls, attr, stmt, stmt.value, lines)
            annotated = _annotation_class(stmt.annotation)
            if annotated is not None and attr in cls.attributes:
                if cls.attributes[attr].value_class is None:
                    cls.attributes[attr].value_class = annotated
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    _record_attribute(cls, target.id, stmt, stmt.value, lines)
    for method in ast.walk(node):
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        _record_attribute(cls, attr, stmt, stmt.value, lines)
            elif isinstance(stmt, ast.AnnAssign):
                attr = _self_attr(stmt.target)
                if attr is not None:
                    _record_attribute(cls, attr, stmt, stmt.value, lines)
                    annotated = _annotation_class(stmt.annotation)
                    if (
                        annotated is not None
                        and attr in cls.attributes
                        and cls.attributes[attr].value_class is None
                    ):
                        cls.attributes[attr].value_class = annotated


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - exotic base expression
        return ""


def scan_module(path: str, source: str) -> ModuleInfo:
    """Parse and scan one file.

    Raises:
        SyntaxError: when the file does not parse.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    module = ModuleInfo(path=path)
    # Module-level locks first, so function scans can recognise them.
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            factory = _call_factory(stmt.value)
            if isinstance(target, ast.Name) and factory in LOCK_FACTORIES:
                annotation = _annotation_for(lines, stmt)
                module.locks[target.id] = LockInfo(
                    name=target.id,
                    kind=factory,
                    line=stmt.lineno,
                    serializes=bool(
                        annotation and annotation[0] == "serializes"
                    ),
                )
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                name=stmt.name,
                path=path,
                line=stmt.lineno,
                bases=[_base_name(base) for base in stmt.bases],
            )
            module.classes[stmt.name] = cls
            _collect_attributes(cls, stmt, lines)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = MethodInfo(name=item.name, line=item.lineno)
                    cls.methods[item.name] = info
                    _MethodScanner(module, cls, info, lines).scan(item)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = MethodInfo(name=stmt.name, line=stmt.lineno)
            module.functions[stmt.name] = info
            _MethodScanner(module, None, info, lines).scan(stmt)
    return module
