"""The built-in lint passes over rules, adornments, and compiled SQL.

Each pass reuses machinery the testbed already has — the safety checker, the
stratifier's SCC analysis, type inference, the predicate connection graph,
theta-subsumption, the adornment pass, and the SQL rule compiler — but
*collects* findings as diagnostics instead of raising on the first problem.

Registration order matters for the first four (error-level) passes: it is
the check order of the paper's Semantic Checker, which
:mod:`repro.km.semantic` relies on to reproduce its fail-fast exception
precedence.
"""

from __future__ import annotations

from typing import Iterator

from ..datalog import safety
from ..datalog.adornment import FREE, adorn_program
from ..datalog.clauses import Clause, Program
from ..datalog.pcg import PredicateConnectionGraph
from ..datalog.stratify import has_negation
from ..datalog.subsumption import is_tautology, subsumes
from ..datalog.terms import Variable
from ..datalog.typecheck import (
    _VALID_TYPES,
    check_query_types,
    infer_types,
)
from ..dbms.sqlgen import compile_rule_body
from ..errors import (
    CodeGenerationError,
    OptimizationError,
    TypeInferenceError,
)
from . import codes
from .diagnostics import Diagnostic, Severity
from .engine import AnalysisContext, analysis_pass


@analysis_pass("definedness")
def check_definedness(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK004 — referenced predicates nobody defines.

    A predicate is defined when rules derive it, facts assert it, the
    extensional dictionary declares it, or (per config) the intensional
    dictionary lists it.  With ``allow_undefined`` the pass is silent: the
    stored-D/KB session model permits forward references.
    """
    if ctx.config.allow_undefined:
        return
    derived = ctx.program.derived_predicates
    known = ctx.known_predicates
    referenced: set[str] = set()
    for clause in ctx.program.rules:
        referenced.add(clause.head_predicate)
        referenced.update(clause.body_predicates)
    if ctx.query is not None:
        referenced.update(ctx.query.predicates)
    for predicate in sorted(referenced):
        if predicate in derived or predicate in known:
            continue
        if ctx.program.defining(predicate):
            continue  # defined by facts in the analyzed program
        yield Diagnostic(
            codes.UNDEFINED_PREDICATE,
            Severity.ERROR,
            f"no rule or base relation defines predicate {predicate!r}",
            predicate=predicate,
            hint="define it with a rule, load facts for it, or fix the name",
        )


@analysis_pass("safety")
def check_safety(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK001 — unsafe (not range-restricted) rules, all of them."""
    for violation in safety.violations(ctx.program):
        yield Diagnostic(
            codes.UNSAFE_RULE,
            Severity.ERROR,
            violation.describe(),
            predicate=violation.clause.head_predicate,
            clause=violation.clause,
            clause_index=violation.index,
            hint="add a positive body atom binding the listed variables",
        )


@analysis_pass("stratification")
def check_stratification(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK002 — negation inside recursion, with the offending cycle printed.

    Reimplements the stratifier's SCC test but reports *every* negative
    edge trapped in a cycle, each with an actual predicate cycle the user
    can follow (the stratifier itself stops at the first).
    """
    program = ctx.program
    if not has_negation(program):
        return
    derived = program.derived_predicates
    pcg = ctx.pcg()
    negative_edges: set[tuple[str, str]] = set()
    for clause in program.rules:
        for atom in clause.body:
            if atom.negated and atom.predicate in derived:
                negative_edges.add((clause.head_predicate, atom.predicate))

    component_of: dict[str, int] = {}
    for index, component in enumerate(pcg.strongly_connected_components()):
        for predicate in component:
            component_of[predicate] = index

    for head, body in sorted(negative_edges):
        if component_of.get(head) != component_of.get(body):
            continue
        cycle = _cycle_through(pcg, head, body)
        yield Diagnostic(
            codes.UNSTRATIFIABLE_NEGATION,
            Severity.ERROR,
            f"negation of {body!r} inside the recursive cycle "
            f"{' -> '.join(cycle)}; the program is not stratifiable",
            predicate=head,
            hint="break the cycle or move the negated predicate to a "
            "lower stratum",
        )


def _cycle_through(
    pcg: PredicateConnectionGraph, head: str, body: str
) -> list[str]:
    """A concrete cycle ``head -> body -> ... -> head`` witnessing the SCC.

    ``head -> body`` is a known edge; BFS finds the shortest way back from
    ``body`` to ``head``.
    """
    parents: dict[str, str] = {}
    frontier = [body]
    seen = {body}
    while frontier:
        node = frontier.pop(0)
        if node == head:
            break
        for successor in sorted(pcg.successors(node)):
            if successor not in seen:
                seen.add(successor)
                parents[successor] = node
                frontier.append(successor)
    path = [head]
    node = head
    while node != body:
        node = parents[node]
        path.append(node)
    path.append(head)
    path.reverse()  # head -> body -> ... -> head
    return path


@analysis_pass("types")
def check_types(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK003 — type conflicts, aggregated per clause.

    Clauses are folded into the inference one at a time (entry order); a
    clause whose constraints contradict the accepted prefix is reported and
    *excluded*, so one bad rule does not drown every later rule in
    follow-on conflicts.  The surviving environment is then cross-checked
    against the intensional dictionary and the query constants, exactly as
    the Semantic Checker does.
    """
    base_types: dict[str, tuple[str, ...]] = {}
    for predicate, columns in ctx.base_types.items():
        columns = tuple(columns)
        bad = [c for c in columns if c not in _VALID_TYPES]
        if bad:
            yield Diagnostic(
                codes.TYPE_CONFLICT,
                Severity.ERROR,
                f"relation {predicate!r} declares unsupported types {bad}",
                predicate=predicate,
            )
        else:
            base_types[predicate] = columns

    kept: list[Clause] = []
    for index, clause in enumerate(ctx.program):
        try:
            infer_types(
                Program([*kept, clause]), base_types, allow_undefined=True
            )
        except TypeInferenceError as error:
            yield Diagnostic(
                codes.TYPE_CONFLICT,
                Severity.ERROR,
                str(error),
                predicate=clause.head_predicate,
                clause=clause,
                clause_index=index,
                hint="make the rules defining the predicate agree on one "
                "column type",
            )
        else:
            kept.append(clause)

    try:
        environment = infer_types(
            Program(kept), base_types, allow_undefined=True
        )
    except TypeInferenceError:  # pragma: no cover - kept clauses are clean
        return

    for predicate, recorded in sorted(ctx.dictionary_types.items()):
        if predicate in environment:
            inferred = environment.of(predicate)
            if inferred != tuple(recorded):
                yield Diagnostic(
                    codes.TYPE_CONFLICT,
                    Severity.ERROR,
                    f"stored dictionary lists {predicate!r} as "
                    f"{tuple(recorded)} but the rules infer {inferred}",
                    predicate=predicate,
                )

    if ctx.query is not None:
        for goal in ctx.query.goals:
            if goal.predicate not in environment:
                continue  # undefined: the definedness pass reported it
            try:
                check_query_types([goal], environment)
            except TypeInferenceError as error:
                yield Diagnostic(
                    codes.TYPE_CONFLICT,
                    Severity.ERROR,
                    str(error),
                    predicate=goal.predicate,
                    hint="match the query constant to the column type",
                )


@analysis_pass("reachability")
def check_reachability(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK005 / DK007 — dead rules and never-referenced predicates.

    With a query, every rule whose head predicate is unreachable from the
    query goals is dead weight for this query (DK005, via PCG
    reachability).  Independently, a derived predicate no rule body and no
    query ever mentions is a root nothing consumes (DK007).
    """
    if ctx.query is not None:
        roots = set(ctx.query.predicates)
        live = roots | ctx.pcg().reachable_from(*roots)
        for index, clause in ctx.indexed_rules():
            head = clause.head_predicate
            if head not in live:
                yield Diagnostic(
                    codes.DEAD_RULE,
                    Severity.WARNING,
                    f"rule #{index} defining {head!r} is unreachable from "
                    f"the query {ctx.query}",
                    predicate=head,
                    clause=clause,
                    clause_index=index,
                    hint="remove the rule or query a predicate that "
                    "depends on it",
                )

    referenced = {
        atom.predicate
        for clause in ctx.program.rules
        for atom in clause.body
    }
    if ctx.query is not None:
        referenced.update(ctx.query.predicates)
    for predicate in sorted(ctx.program.derived_predicates):
        if predicate not in referenced:
            yield Diagnostic(
                codes.UNREFERENCED_PREDICATE,
                Severity.INFO,
                f"derived predicate {predicate!r} is never referenced by "
                "another rule"
                + ("" if ctx.query is None else " or the query"),
                predicate=predicate,
            )


@analysis_pass("redundancy")
def check_redundancy(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK006 — tautologies, duplicates, and theta-subsumed rules.

    Mirrors :func:`repro.datalog.subsumption.simplify_program`'s keep/evict
    walk, but reports instead of removing: a rule subsumed by an earlier
    kept rule is flagged (as a *duplicate* when the subsumption is mutual,
    i.e. the rules are variants), and a kept rule evicted by a later, more
    general rule is flagged at that point.
    """
    kept: list[tuple[int, Clause]] = []
    for index, clause in ctx.indexed_rules():
        if is_tautology(clause):
            yield Diagnostic(
                codes.REDUNDANT_RULE,
                Severity.WARNING,
                f"rule #{index} defining {clause.head_predicate!r} is a "
                f"tautology ({clause} repeats its head in its own body)",
                predicate=clause.head_predicate,
                clause=clause,
                clause_index=index,
                hint="delete the rule; it can never derive a new tuple",
            )
            continue
        subsumer = next(
            ((i, k) for i, k in kept if subsumes(k, clause)), None
        )
        if subsumer is not None:
            other_index, other = subsumer
            kind = (
                "a duplicate (variant) of"
                if subsumes(clause, other)
                else "subsumed by"
            )
            yield Diagnostic(
                codes.REDUNDANT_RULE,
                Severity.WARNING,
                f"rule #{index} defining {clause.head_predicate!r} is "
                f"{kind} rule #{other_index} ({other})",
                predicate=clause.head_predicate,
                clause=clause,
                clause_index=index,
                hint="delete the redundant rule; the least fixed point "
                "is unchanged",
            )
            continue
        evicted = [(i, k) for i, k in kept if subsumes(clause, k)]
        for other_index, other in evicted:
            kept.remove((other_index, other))
            yield Diagnostic(
                codes.REDUNDANT_RULE,
                Severity.WARNING,
                f"rule #{other_index} defining {other.head_predicate!r} is "
                f"subsumed by the more general rule #{index} ({clause})",
                predicate=other.head_predicate,
                clause=other,
                clause_index=other_index,
                hint="delete the redundant rule; the least fixed point "
                "is unchanged",
            )
        kept.append((index, clause))


@analysis_pass("adornment")
def check_adornment(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK008 — all-free adornments on recursive predicates.

    Adorns the program for the query with the standard left-to-right SIP
    and flags every recursive predicate that ends up called with an
    all-``f`` adornment: magic sets cannot restrict such a call, so the
    optimization degenerates to full materialization for that clique (the
    crossover the paper's Test 7 measures).
    """
    if ctx.query is None or len(ctx.query.goals) != 1:
        return
    goal = ctx.query.goals[0]
    derived = ctx.program.derived_predicates
    if goal.predicate not in derived:
        return
    try:
        adorned = adorn_program(ctx.program, ctx.query, derived)
    except OptimizationError:
        return
    pcg = ctx.pcg()
    for predicate in sorted(adorned.adornments):
        if not pcg.is_recursive(predicate):
            continue
        for adornment in sorted(adorned.adornments[predicate]):
            if adornment and set(adornment) == {FREE}:
                yield Diagnostic(
                    codes.ALL_FREE_RECURSION,
                    Severity.WARNING,
                    f"recursive predicate {predicate!r} is called with the "
                    f"all-free adornment {adornment!r}; magic sets cannot "
                    "restrict its evaluation",
                    predicate=predicate,
                    hint="bind at least one argument in the query or the "
                    "calling rule",
                )


@analysis_pass("plan")
def check_compiled_plan(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK009 / DK010 — trouble visible in the compiled SQL join structure.

    Compiles each rule body to its :class:`CompiledSelect` and inspects the
    join structure: positive FROM-list slots that no join equality connects
    to the rest form a cartesian product (DK009).  Recursive rules whose
    compiled form carries no constant parameters rescan their relations
    unrestricted every LFP iteration (DK010, informational).
    """
    pcg = ctx.pcg()
    for index, clause in ctx.indexed_rules():
        positive = [atom for atom in clause.body if not atom.negated]
        if not positive:
            continue
        try:
            compiled = compile_rule_body(clause)
        except CodeGenerationError:
            continue  # unsafe body: the safety pass reported it
        if compiled.positive_count >= 2:
            components = _join_components(positive)
            if len(components) > 1:
                described = " x ".join(
                    "{" + ", ".join(sorted(c)) + "}" for c in components
                )
                yield Diagnostic(
                    codes.CARTESIAN_PRODUCT,
                    Severity.WARNING,
                    f"rule #{index} defining {clause.head_predicate!r} "
                    f"compiles to a SELECT over {compiled.positive_count} "
                    f"relations whose join structure is disconnected "
                    f"({described}): a cartesian product",
                    predicate=clause.head_predicate,
                    clause=clause,
                    clause_index=index,
                    hint="share a variable between the disconnected body "
                    "atoms, or split the rule",
                )
        recursive = any(
            atom.predicate == clause.head_predicate
            or clause.head_predicate in pcg.reachable_from(atom.predicate)
            for atom in positive
        )
        if recursive and not compiled.parameters:
            yield Diagnostic(
                codes.CONSTANT_FREE_RECURSION,
                Severity.INFO,
                f"recursive rule #{index} defining "
                f"{clause.head_predicate!r} compiles with no constant "
                "parameters; each LFP iteration rescans the full relations",
                predicate=clause.head_predicate,
                clause=clause,
                clause_index=index,
                hint="a bound query plus magic sets restricts the "
                "iteration to relevant tuples",
            )


def _join_components(positive: list) -> list[set[str]]:
    """Connected components of the positive atoms under shared variables.

    Two FROM-list slots are connected exactly when the compiled SELECT
    holds a join equality between them, which happens exactly when the
    atoms share a variable; singleton-variable atoms are their own
    component.  Component members are predicate names (deduplicated).
    """
    parent = list(range(len(positive)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    first_slot: dict[Variable, int] = {}
    for slot, atom in enumerate(positive):
        for variable in atom.variables:
            anchor = first_slot.setdefault(variable, slot)
            parent[find(slot)] = find(anchor)

    groups: dict[int, set[str]] = {}
    for slot, atom in enumerate(positive):
        groups.setdefault(find(slot), set()).add(atom.predicate)
    return [groups[root] for root in sorted(groups)]
