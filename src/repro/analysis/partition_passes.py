"""DK100–DK105: partition-aware rule lints over a :class:`PartitionSpec`.

The cluster (:mod:`repro.cluster`) routes queries and updates with a
:class:`~repro.km.partition.PartitionSpec`: base relations hash-partitioned
by entity group, small relations broadcast everywhere, derived predicates
declared routable when their closure is entity-group-local.  These passes
check a rule base *against* that spec before any shard evaluates it:

* **DK100** — the query as written can never be pinned: no goal binds the
  routing-key argument of a routable predicate with a constant, or the
  bound keys name different entity groups.  Mirrors
  :meth:`repro.cluster.partition.Partitioner.route` exactly — DK100 fires
  iff the router would fan the query out (a property test holds the two
  implementations together).
* **DK101** — a rule body joins two *partitioned base* relations on
  different key terms.  Rows of different entity groups provably live on
  different shards, so a single-shard evaluation of the rule joins partial
  relations.  Joins between a base relation and a *routed derived*
  predicate are deliberately not flagged: declaring the route asserts the
  derived closure is group-local, which is exactly the discipline that
  makes ``parent(X, Y), ancestor(Y, Z)`` sound.
* **DK102** — a rule head is a broadcast relation: deriving it writes a
  fanned-out extent on every shard; an error when the rule is recursive
  (the write repeats per LFP iteration), a warning otherwise.
* **DK103** — a derived predicate is neither routed nor broadcast, so
  every query against it fans out.
* **DK104** — a negated goal over a non-broadcast predicate whose key term
  is neither a constant nor shared with a positive routable goal's key:
  one shard sees only its fragment of the negated relation, so ``NOT``
  succeeds spuriously for rows held elsewhere.
* **DK105** — a routed derived predicate transitively depends on a
  broadcast relation: broadcast writes reach shards and replicas at
  different versions, so pinned/replica reads can join mixed versions.

Every pass is a no-op when the context carries no ``partition`` — the
ordinary rule-base lint is unchanged.
"""

from __future__ import annotations

from typing import Iterator

from ..datalog.terms import Constant
from .codes import (
    BROADCAST_RULE_WRITE,
    CROSS_GROUP_JOIN,
    NEVER_PINNED,
    NONLOCAL_NEGATION,
    REPLICA_UNSAFE_ROUTE,
    UNROUTED_DERIVED,
)
from .diagnostics import Diagnostic, Severity
from .engine import AnalysisContext, analysis_pass


@analysis_pass("partition-pinnability")
def check_pinnability(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK100 — the query fans out to every shard however it is evaluated.

    Replays the router's pinning decision: a query is pinned when at least
    one goal binds the routing key of a routable predicate and every bound
    key agrees on the shard; broadcast-only reads are answered by any one
    shard.  Anything else fans out, and DK100 says why.
    """
    spec = ctx.partition
    if spec is None or ctx.query is None:
        return
    pins: set[int] = set()
    bound = 0
    routable = 0
    broadcast_only = True
    for goal in ctx.query.goals:
        if not spec.is_broadcast(goal.predicate):
            broadcast_only = False
        position = spec.route_key_position(goal.predicate)
        if position is None or position >= len(goal.terms):
            continue
        routable += 1
        term = goal.terms[position]
        if isinstance(term, Constant):
            bound += 1
            pins.add(spec.shard_of_key(term.value))
    if broadcast_only or len(pins) == 1:
        return
    if not routable:
        reason = "no goal mentions a routable predicate"
        hint = (
            "partition a base relation the query reads, or declare a "
            "route for a derived predicate whose closure is shard-local"
        )
    elif not bound:
        reason = "no routable goal binds its routing-key argument"
        hint = "bind the routing-key argument with a constant to pin"
    else:
        reason = f"the bound routing keys name {len(pins)} different shards"
        hint = "query one entity group at a time to pin"
    yield Diagnostic(
        NEVER_PINNED,
        Severity.WARNING,
        f"query can never be pinned to one shard: {reason}; every "
        f"evaluation fans out to all {spec.shards} shards",
        hint=hint,
    )


@analysis_pass("partition-join-locality")
def check_join_locality(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK101 — partitioned base relations joined on different key terms."""
    spec = ctx.partition
    if spec is None:
        return
    for index, clause in ctx.indexed_rules():
        keyed: list[tuple[str, object]] = []
        for atom in clause.body:
            if atom.negated or not spec.is_partitioned(atom.predicate):
                continue
            position = spec.tables[atom.predicate].key_column
            if position < len(atom.terms):
                keyed.append((atom.predicate, atom.terms[position]))
        distinct = {term for _, term in keyed}
        if len(distinct) <= 1:
            continue
        first, second = keyed[0], next(
            pair for pair in keyed if pair[1] != keyed[0][1]
        )
        yield Diagnostic(
            CROSS_GROUP_JOIN,
            Severity.WARNING,
            f"body joins partitioned relations on different key terms "
            f"({first[0]} on {first[1]}, {second[0]} on {second[1]}): "
            "matching rows can live on different shards, so the rule is "
            "only sound if the data never joins across entity groups",
            predicate=clause.head_predicate,
            clause=clause,
            clause_index=index,
            hint="join through a routed derived predicate, or broadcast "
            "one of the relations",
        )


@analysis_pass("partition-broadcast-write")
def check_broadcast_write(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK102 — a rule derives a broadcast relation (hot when recursive)."""
    spec = ctx.partition
    if spec is None:
        return
    for index, clause in ctx.indexed_rules():
        head = clause.head_predicate
        if not spec.is_broadcast(head):
            continue
        recursive = ctx.pcg().is_recursive(head)
        yield Diagnostic(
            BROADCAST_RULE_WRITE,
            Severity.ERROR if recursive else Severity.WARNING,
            f"rule derives broadcast relation {head!r}"
            + (
                " inside recursion: every LFP iteration would fan the "
                "delta out to all shards"
                if recursive
                else ": each evaluation writes a fanned-out extent"
            ),
            predicate=head,
            clause=clause,
            clause_index=index,
            hint="derive into a routed predicate instead; keep broadcast "
            "for small, write-rarely dictionary relations",
        )


@analysis_pass("partition-route-coverage")
def check_route_coverage(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK103 — derived predicates no pinned query can ever reach."""
    spec = ctx.partition
    if spec is None:
        return
    for predicate in sorted(ctx.program.derived_predicates):
        if spec.route_key_position(predicate) is not None:
            continue
        if spec.is_broadcast(predicate):
            continue
        yield Diagnostic(
            UNROUTED_DERIVED,
            Severity.WARNING,
            f"derived predicate {predicate!r} has no declared route and is "
            "not broadcast: every query against it fans out to all shards",
            predicate=predicate,
            hint=f"declare routes={{{predicate!r}: <key position>}} if its "
            "closure is entity-group-local",
        )


@analysis_pass("partition-negation-locality")
def check_negation_locality(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK104 — negation a single shard evaluates over a partial relation."""
    spec = ctx.partition
    if spec is None:
        return
    for index, clause in ctx.indexed_rules():
        positive_keys = set()
        for atom in clause.body:
            if atom.negated:
                continue
            position = spec.route_key_position(atom.predicate)
            if position is not None and position < len(atom.terms):
                positive_keys.add(atom.terms[position])
        for atom in clause.body:
            if not atom.negated or spec.is_broadcast(atom.predicate):
                continue
            position = spec.route_key_position(atom.predicate)
            aligned = False
            if position is not None and position < len(atom.terms):
                term = atom.terms[position]
                aligned = isinstance(term, Constant) or term in positive_keys
            if aligned:
                continue
            yield Diagnostic(
                NONLOCAL_NEGATION,
                Severity.ERROR,
                f"negated goal over {atom.predicate!r} is not aligned with "
                "the rule's entity group: a shard holds only its fragment "
                f"of {atom.predicate!r}, so NOT succeeds spuriously for "
                "rows stored elsewhere",
                predicate=clause.head_predicate,
                clause=clause,
                clause_index=index,
                hint="broadcast the negated relation, or bind its routing "
                "key to the same term as a positive routable goal",
            )


@analysis_pass("partition-replica-safety")
def check_replica_safety(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """DK105 — routed derived predicates mixing partitioned and broadcast."""
    spec = ctx.partition
    if spec is None:
        return
    derived = ctx.program.derived_predicates
    pcg = ctx.pcg()
    for predicate in sorted(spec.routes):
        if predicate not in derived:
            continue
        support = pcg.reachable_from(predicate)
        mixed = sorted(name for name in support if spec.is_broadcast(name))
        if not mixed:
            continue
        yield Diagnostic(
            REPLICA_UNSAFE_ROUTE,
            Severity.WARNING,
            f"routed predicate {predicate!r} depends on broadcast "
            f"relation(s) {', '.join(repr(m) for m in mixed)}: a broadcast "
            "write lands on shards and replicas at different versions, so "
            "a pinned or replica read can join mixed versions",
            predicate=predicate,
            hint="route reads of this predicate to primaries, or update "
            "the broadcast relation only during quiesce",
        )
