"""Diagnostics: the currency of the rule-base static analyzer.

The paper's Semantic Checker (section 3.2.4) is fail-fast: the first problem
raises and compilation stops.  The analyzer instead *collects* — every pass
emits :class:`Diagnostic` values and the driver folds them into one
:class:`DiagnosticReport`, so a rule base with three independent problems
needs one run, not three compile attempts, to see them all.

A diagnostic carries a stable prefixed code (``DK`` for rule-base findings,
:mod:`repro.analysis.codes`; ``CC`` for the concurrency checker,
:mod:`repro.analysis.concurrency.codes`), a severity, an optional locus
(predicate, clause index, and/or source ``path:line``), and an optional fix
hint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..datalog.clauses import Clause


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` findings would make compilation fail (the Semantic Checker
    raises for them); ``WARNING`` findings are legal but almost certainly
    unintended; ``INFO`` findings are performance or style observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank, highest severity first (``ERROR`` is 0)."""
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:
        return self.value


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    ``clause_index`` is the clause's position in the analyzed program (entry
    order, 0-based) — together with ``predicate`` it forms the locus a user
    needs to find the offending rule.  Source-level analyses (the concurrency
    checker) locate findings with ``path``/``line`` instead, reusing
    ``predicate`` for the symbol (``Class.attribute``).  ``hint`` suggests a
    fix when the pass knows one.
    """

    code: str
    severity: Severity
    message: str
    predicate: str | None = None
    clause: Clause | None = None
    clause_index: int | None = None
    hint: str | None = None
    path: str | None = None
    line: int | None = None

    @property
    def locus(self) -> str:
        """Human-readable location, e.g. ``anc, rule #2`` (empty if global)."""
        parts = []
        if self.path is not None:
            parts.append(
                self.path if self.line is None else f"{self.path}:{self.line}"
            )
        if self.predicate is not None:
            parts.append(self.predicate)
        if self.clause_index is not None:
            parts.append(f"rule #{self.clause_index}")
        return ", ".join(parts)

    @property
    def sort_key(self) -> tuple[str, str, str, str]:
        """The deterministic report order: (code, locus, message, hint)."""
        return (self.code, self.locus, self.message, self.hint or "")

    def to_json(self) -> dict[str, Any]:
        """The machine-readable form emitted by ``--format json``.

        One flat object per diagnostic; ``clause`` is rendered as text and
        absent fields are ``None``, so the schema is stable across rule-base
        and concurrency findings.
        """
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "predicate": self.predicate,
            "clause": None if self.clause is None else str(self.clause),
            "clause_index": self.clause_index,
            "path": self.path,
            "line": self.line,
            "locus": self.locus,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        locus = f" [{self.locus}]" if self.locus else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity}{locus}: {self.message}{hint}"


@dataclass(frozen=True)
class DiagnosticReport:
    """Everything the analyzer found.

    :func:`repro.analysis.analyze` (and the concurrency checker) deliver the
    diagnostics sorted by :attr:`Diagnostic.sort_key` — (code, locus,
    message) — so repeated runs and parallel CI shards produce byte-identical
    reports.
    """

    diagnostics: tuple[Diagnostic, ...] = ()
    #: Names of the passes that ran, in execution order.
    passes_run: tuple[str, ...] = field(default=(), compare=False)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """The error-severity findings, in report order."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """The warning-severity findings, in report order."""
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        """The info-severity findings, in report order."""
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        """True when any finding is error-severity."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """Findings of one severity, in report order."""
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        """Findings carrying ``code``, in report order."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> tuple[str, ...]:
        """All codes in report order (with repeats)."""
        return tuple(d.code for d in self.diagnostics)

    def code_set(self) -> frozenset[str]:
        """The distinct codes reported."""
        return frozenset(d.code for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        """Findings per severity name (always all three keys)."""
        out = {s.value: 0 for s in Severity}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity.value] += 1
        return out

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Multi-line text of the report, filtered to ``min_severity`` and up.

        Ends with a one-line summary (also the whole output when the report
        is clean).
        """
        lines = [
            str(d)
            for d in self.diagnostics
            if d.severity.rank <= min_severity.rank
        ]
        counts = self.counts()
        summary = ", ".join(
            f"{counts[s.value]} {s.value}{'s' if counts[s.value] != 1 else ''}"
            for s in Severity
        )
        lines.append(summary)
        return "\n".join(lines)
