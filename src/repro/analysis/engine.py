"""The diagnostics engine: pass registry, analysis context, and driver.

A *pass* is a function from an :class:`AnalysisContext` to an iterable of
:class:`~repro.analysis.diagnostics.Diagnostic` values, registered under a
stable name with the :func:`analysis_pass` decorator.  :func:`analyze` runs
the selected passes in registration order and returns everything they found
as one :class:`~repro.analysis.diagnostics.DiagnosticReport` — it never
raises on a bad program, only on a misconfigured analysis.

The four error-level passes (definedness, safety, stratification, types)
mirror the checks of the paper's Semantic Checker; :mod:`repro.km.semantic`
preserves its fail-fast exception precedence by walking the report in that
explicit code order (the report itself is sorted for determinism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from ..datalog.clauses import Clause, Program, Query
from ..datalog.pcg import PredicateConnectionGraph
from ..errors import TestbedError
from .codes import INTERNAL_ERROR
from .diagnostics import Diagnostic, DiagnosticReport, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dbms.catalog import ExtensionalCatalog
    from ..km.partition import PartitionSpec

PassFn = Callable[["AnalysisContext"], Iterable[Diagnostic]]

#: The error-level passes backing the Semantic Checker, in check order.
SEMANTIC_PASSES = ("definedness", "safety", "stratification", "types")

#: The partition-aware passes (DK100–DK105); no-ops without a PartitionSpec.
PARTITION_PASSES = (
    "partition-pinnability",
    "partition-join-locality",
    "partition-broadcast-write",
    "partition-route-coverage",
    "partition-negation-locality",
    "partition-replica-safety",
)

_REGISTRY: dict[str, PassFn] = {}


def analysis_pass(name: str) -> Callable[[PassFn], PassFn]:
    """Register a pass function under ``name`` (decorator).

    Raises:
        ValueError: when ``name`` is already taken.
    """

    def decorate(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"analysis pass {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    return decorate


def registered_passes() -> tuple[str, ...]:
    """Names of all registered passes, in registration order."""
    _ensure_builtin_passes()
    return tuple(_REGISTRY)


def _ensure_builtin_passes() -> None:
    # The built-in passes live in their own modules (which import this one
    # for the decorator); import lazily to avoid the cycle at module load.
    # Order matters: the semantic passes must keep registry positions 0-3.
    from . import passes as _passes  # noqa: F401
    from . import partition_passes as _partition_passes  # noqa: F401


@dataclass(frozen=True)
class AnalysisConfig:
    """What the driver should run and how strict the passes should be.

    ``passes`` selects (and orders) the passes to run; ``None`` means every
    registered pass.  ``disabled`` removes passes from that selection.
    ``allow_undefined`` tolerates predicates defined in neither the rules
    nor the dictionaries — the stored-D/KB update vetting uses this, because
    the paper's session model allows storing rules whose body predicates are
    defined by a later update.  ``dictionary_defines`` controls whether a
    predicate known only to the intensional dictionary counts as defined
    (the Semantic Checker historically says no).  ``max_diagnostics``
    truncates pathological reports.
    """

    passes: tuple[str, ...] | None = None
    disabled: frozenset[str] = frozenset()
    allow_undefined: bool = False
    dictionary_defines: bool = True
    max_diagnostics: int | None = None

    def selected(self) -> tuple[str, ...]:
        """The pass names the driver will run, in order.

        Raises:
            ValueError: when an explicitly selected pass does not exist.
        """
        available = registered_passes()
        if self.passes is None:
            names = available
        else:
            unknown = [n for n in self.passes if n not in available]
            if unknown:
                raise ValueError(
                    f"unknown analysis passes: {', '.join(sorted(unknown))}"
                )
            names = self.passes
        return tuple(n for n in names if n not in self.disabled)


@dataclass
class AnalysisContext:
    """Everything a pass may look at, with shared caches.

    ``base_types`` are the extensional dictionary's column types;
    ``dictionary_types`` the intensional dictionary's (stored derived
    predicates).  ``query`` is optional — whole-rulebase lints have none,
    and query-dependent passes skip themselves.  ``partition`` is the
    cluster's :class:`~repro.km.partition.PartitionSpec` when linting for a
    sharded deployment — the DK10x passes skip themselves without one.
    """

    program: Program
    query: Query | None
    base_types: Mapping[str, Sequence[str]]
    dictionary_types: Mapping[str, Sequence[str]]
    config: AnalysisConfig
    partition: "PartitionSpec | None" = None
    _pcg: PredicateConnectionGraph | None = field(default=None, repr=False)
    _clause_index: dict[Clause, int] | None = field(default=None, repr=False)

    def pcg(self) -> PredicateConnectionGraph:
        """The predicate connection graph of the program's rules (cached)."""
        if self._pcg is None:
            self._pcg = PredicateConnectionGraph(self.program.rules)
        return self._pcg

    def index_of(self, clause: Clause) -> int | None:
        """Position of ``clause`` in the program (entry order), if present."""
        if self._clause_index is None:
            self._clause_index = {
                c: i for i, c in enumerate(self.program)
            }
        return self._clause_index.get(clause)

    def indexed_rules(self) -> list[tuple[int, Clause]]:
        """The program's rules with their entry-order indexes."""
        return [(i, c) for i, c in enumerate(self.program) if c.is_rule]

    @property
    def known_predicates(self) -> set[str]:
        """Predicates with declared types (both dictionaries, per config)."""
        known = set(self.base_types)
        if self.config.dictionary_defines:
            known.update(self.dictionary_types)
        return known


def analyze(
    program: Program,
    query: Query | None = None,
    catalog: "ExtensionalCatalog | None" = None,
    config: AnalysisConfig | None = None,
    *,
    base_types: Mapping[str, Sequence[str]] | None = None,
    dictionary_types: Mapping[str, Sequence[str]] | None = None,
    partition: "PartitionSpec | None" = None,
) -> DiagnosticReport:
    """Run the selected analysis passes over ``program``; collect everything.

    Args:
        program: the rules (and optionally facts) to analyze.
        query: the query of interest, when there is one — reachability and
            adornment passes need it.
        catalog: extensional catalog to read base-relation types from when
            ``base_types`` is not given explicitly.
        config: pass selection and strictness (default: all passes, strict).
        base_types: explicit base-relation column types (overrides catalog).
        dictionary_types: intensional-dictionary column types for stored
            derived predicates.
        partition: the cluster partition metadata, enabling the DK10x
            partition-aware passes (skipped when ``None``).

    Returns:
        A report with every diagnostic of every pass, sorted by
        ``(code, locus, message)`` so repeated runs produce byte-identical
        output.  A pass failing internally contributes one ``DK000`` error
        instead of aborting the analysis.

    Raises:
        ValueError: when ``config`` names an unknown pass.
    """
    _ensure_builtin_passes()
    config = config or AnalysisConfig()
    if base_types is None:
        if catalog is not None:
            referenced = set(program.predicates)
            if query is not None:
                referenced.update(query.predicates)
            base_types = catalog.types_of(sorted(referenced))
        else:
            base_types = {}
    context = AnalysisContext(
        program=program,
        query=query,
        base_types=base_types,
        dictionary_types=dictionary_types or {},
        config=config,
        partition=partition,
    )
    names = config.selected()
    diagnostics: list[Diagnostic] = []
    for name in names:
        try:
            diagnostics.extend(_REGISTRY[name](context))
        except TestbedError as error:
            diagnostics.append(
                Diagnostic(
                    INTERNAL_ERROR,
                    Severity.ERROR,
                    f"analysis pass {name!r} failed: {error}",
                )
            )
        if (
            config.max_diagnostics is not None
            and len(diagnostics) >= config.max_diagnostics
        ):
            diagnostics = diagnostics[: config.max_diagnostics]
            break
    # Deterministic report order: truncation happens in pass order (it
    # bounds work), then the surviving findings sort by (code, locus,
    # message) so repeated runs and parallel CI shards agree byte-for-byte.
    diagnostics.sort(key=lambda d: d.sort_key)
    return DiagnosticReport(tuple(diagnostics), names)
