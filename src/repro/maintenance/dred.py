"""Delete maintenance: DRed (delete-and-rederive) with a cost heuristic.

Deleting EDB facts can only *remove* derived tuples, but which ones is not
local: a tuple must go only if every derivation of it is broken.  DRed
answers this in two sweeps:

1. **Over-delete** — compute the transitive consequences of the deleted
   facts (the same differential loop as insert propagation) *against the
   pre-deletion base relations*, keeping only tuples the views actually
   hold.  Every derived tuple with at least one derivation through a deleted
   fact becomes a deletion candidate.  Running this before the base rows
   disappear matters: a rule joining the deleted relation against itself
   (``p(X,Y) :- b(X,Z), b(Z,Y)``) derives candidates from *pairs* of
   deleted rows, which the post-deletion database can no longer produce.
2. **Re-derive** — remove the candidates from the views, then re-run the
   rules restricted to the candidates over the post-deletion state: any
   candidate with a surviving alternative derivation comes back.  Survivors
   then feed the ordinary insert-propagation loop, since a re-derived tuple
   can in turn support other candidates.

Over-deletion can cascade far beyond the deleted facts, so
:class:`MaintenancePolicy` first estimates whether incremental maintenance
would lose to simply recomputing the view — the paper-style knobs are the
fraction of the base relation being deleted and the derived/base size
ratio — and the session falls back to a full refresh when it says so.

All statements run under the ``maint_dred`` phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..dbms.engine import Database
from ..dbms.schema import RelationSchema, quote_identifier
from ..dbms.sqlgen import compile_rule_body, copy_sql, insert_new_tuples_sql
from ..errors import EvaluationError
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from ..runtime import naive
from .delta import propagate_inserts
from .plan import MaintenancePlan

PHASE_MAINT_DRED = "maint_dred"


@dataclass(frozen=True)
class MaintenanceDecision:
    """The cost heuristic's verdict for one delete batch."""

    use_incremental: bool
    delete_fraction: float
    derived_base_ratio: float
    reason: str


@dataclass(frozen=True)
class MaintenancePolicy:
    """When is DRed expected to beat recomputing the view from scratch?

    DRed's cost is driven by how much of the derived relation gets
    over-deleted and re-derived.  Two observable proxies bound it:

    * ``max_delete_fraction`` — deleting a large share of the base relation
      invalidates a comparable share of the derived tuples, at which point
      recomputing the (now small) view is cheaper than over-deleting and
      re-deriving most of the old one.
    * ``max_derived_base_ratio`` — a derived relation that dwarfs its base
      (dense closures) amplifies every deleted fact into a huge candidate
      set; past this ratio a single deletion can cascade through most of
      the view.
    """

    max_delete_fraction: float = 0.25
    max_derived_base_ratio: float = 64.0

    def decide(
        self, deleted_rows: int, base_rows: int, derived_rows: int
    ) -> MaintenanceDecision:
        """Choose between DRed and a full recompute for one delete batch."""
        if base_rows <= 0:
            return MaintenanceDecision(
                False, 1.0, 0.0, "base relation is empty"
            )
        fraction = deleted_rows / base_rows
        ratio = derived_rows / base_rows
        if fraction > self.max_delete_fraction:
            return MaintenanceDecision(
                False,
                fraction,
                ratio,
                f"delete fraction {fraction:.2f} exceeds "
                f"{self.max_delete_fraction:.2f}",
            )
        if ratio > self.max_derived_base_ratio:
            return MaintenanceDecision(
                False,
                fraction,
                ratio,
                f"derived/base ratio {ratio:.1f} exceeds "
                f"{self.max_derived_base_ratio:.1f}",
            )
        return MaintenanceDecision(True, fraction, ratio, "incremental")


@dataclass(frozen=True)
class DredStats:
    """Outcome of one delete-and-rederive run."""

    overdeleted: int
    rederived: int
    iterations: int

    @property
    def tuples_removed(self) -> int:
        """Net tuples removed from the materialized relations."""
        return self.overdeleted - self.rederived


class DeleteMaintenance:
    """One DRed run over a (possibly merged) maintenance plan.

    Usage is split in two because the over-delete sweep must see the base
    relations *before* the deletion is applied::

        run = DeleteMaintenance(database, plan, table_of)
        run.overdelete({predicate: staged_rows_table})
        ...delete the base rows...
        stats = run.apply_and_rederive()
    """

    def __init__(
        self,
        database: Database,
        plan: MaintenancePlan,
        table_of: Mapping[str, str],
        tracer: "Tracer | NullTracer | None" = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if plan.has_negation:
            raise EvaluationError(
                f"plan for {plan.view!r} contains negation; DRed is "
                "unsound — use a full refresh"
            )
        self.database = database
        self.plan = plan
        self.table_of = dict(table_of)
        self.compiled = [(c, compile_rule_body(c)) for c in plan.rules]
        self.candidates: dict[str, str] = {}
        self._temps: list[str] = []
        self._overdeleted = 0

    def _temp(self, prefix: str, predicate: str) -> str:
        name = self.database.fresh_temp_name(f"{prefix}_{predicate}")
        self.database.create_relation(
            RelationSchema(name, self.plan.types[predicate]), temporary=True
        )
        self._temps.append(name)
        return name

    def overdelete(self, seed_tables: Mapping[str, str]) -> int:
        """Collect deletion candidates; call *before* deleting base rows.

        ``seed_tables`` stage the rows about to be deleted (deduplicated,
        restricted to rows actually present).  Returns the candidate count.
        """
        delta = dict(seed_tables)
        iterations = 0
        with self.tracer.span(
            "dred_overdelete", category="maintenance", view=self.plan.view
        ) as span, self.database.phase(PHASE_MAINT_DRED):
            while delta:
                if iterations >= naive.MAX_ITERATIONS:
                    raise EvaluationError(
                        f"DRed over-deletion of {self.plan.view!r} did not "
                        f"converge within MAX_ITERATIONS="
                        f"{naive.MAX_ITERATIONS} iterations"
                    )
                iterations += 1
                new_delta: dict[str, str] = {}
                for clause, select in self.compiled:
                    head = clause.head_predicate
                    for index, predicate in enumerate(
                        select.positive_predicates
                    ):
                        if predicate not in delta:
                            continue
                        if head not in new_delta:
                            new_delta[head] = self._temp("mdred", head)
                        tables = [
                            delta[p] if j == index else self.table_of[p]
                            for j, p in enumerate(select.table_slots)
                        ]
                        self.database.execute(
                            insert_new_tuples_sql(
                                new_delta[head],
                                select.render(tables),
                                clause.head.arity,
                            ),
                            select.parameters,
                        )
                next_delta: dict[str, str] = {}
                for head, name in new_delta.items():
                    arity = len(self.plan.types[head])
                    columns = ", ".join(f"c{i}" for i in range(arity))
                    # Only tuples the view actually holds can be deleted...
                    self.database.execute(
                        f"DELETE FROM {quote_identifier(name)} "
                        f"WHERE ({columns}) NOT IN "
                        f"(SELECT {columns} FROM "
                        f"{quote_identifier(self.table_of[head])})"
                    )
                    # ...and tuples already collected stop the cascade.
                    if head in self.candidates:
                        self.database.execute(
                            f"DELETE FROM {quote_identifier(name)} "
                            f"WHERE ({columns}) IN "
                            f"(SELECT {columns} FROM "
                            f"{quote_identifier(self.candidates[head])})"
                        )
                    else:
                        self.candidates[head] = self._temp("mcand", head)
                    count = self.database.row_count(name)
                    if count:
                        self.database.execute(
                            copy_sql(self.candidates[head], name, arity)
                        )
                        next_delta[head] = name
                delta = next_delta
            self._overdeleted = sum(
                self.database.row_count(t) for t in self.candidates.values()
            )
            span.set("iterations", iterations)
            span.set("candidates", self._overdeleted)
        return self._overdeleted

    def apply_and_rederive(self) -> DredStats:
        """Remove the candidates, re-derive survivors, and clean up.

        Call *after* the base rows are deleted.  Re-derivation runs the full
        rules restricted to the candidate tuples (only candidates can be
        missing from the views), then propagates the survivors with the
        insert engine — a re-derived tuple can rescue further candidates.
        """
        database = self.database
        rederive_seeds: dict[str, str] = {}
        try:
            with self.tracer.span(
                "dred_rederive", category="maintenance", view=self.plan.view
            ) as span, database.phase(PHASE_MAINT_DRED):
                for head, cand in self.candidates.items():
                    arity = len(self.plan.types[head])
                    columns = ", ".join(f"c{i}" for i in range(arity))
                    database.execute(
                        f"DELETE FROM "
                        f"{quote_identifier(self.table_of[head])} "
                        f"WHERE ({columns}) IN "
                        f"(SELECT {columns} FROM {quote_identifier(cand)})"
                    )
                # Round 0: full rule bodies over the post-deletion state,
                # restricted to the candidates — exactly the tuples whose
                # alternative derivations must be checked.
                for clause, select in self.compiled:
                    head = clause.head_predicate
                    if head not in self.candidates:
                        continue
                    if head not in rederive_seeds:
                        rederive_seeds[head] = self._temp("mredo", head)
                    arity = clause.head.arity
                    columns = ", ".join(f"c{i}" for i in range(arity))
                    body = select.render(
                        [self.table_of[p] for p in select.table_slots]
                    )
                    restricted = (
                        f"SELECT {columns} FROM ({body}) "
                        f"WHERE ({columns}) IN (SELECT {columns} FROM "
                        f"{quote_identifier(self.candidates[head])})"
                    )
                    database.execute(
                        insert_new_tuples_sql(
                            rederive_seeds[head], restricted, arity
                        ),
                        select.parameters,
                    )
                survivors: dict[str, str] = {}
                rederived = 0
                for head, name in rederive_seeds.items():
                    count = database.row_count(name)
                    if count:
                        arity = len(self.plan.types[head])
                        database.execute(
                            copy_sql(self.table_of[head], name, arity)
                        )
                        rederived += count
                        survivors[head] = name
                span.set("rederived_round0", rederived)
            iterations = 0
            if survivors:
                stats = propagate_inserts(
                    database, self.plan, self.table_of, survivors, self.tracer
                )
                rederived += stats.tuples_added
                iterations = stats.iterations
            return DredStats(self._overdeleted, rederived, iterations)
        finally:
            self.cleanup()

    def cleanup(self) -> None:
        """Drop every temporary relation this run created."""
        for name in self._temps:
            self.database.drop_relation(name)
        self._temps.clear()
        self.candidates.clear()
