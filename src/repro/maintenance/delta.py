"""Insert maintenance: semi-naive delta propagation into materialized views.

New EDB facts can only *add* derived tuples (the rules are positive Horn
clauses), so insert maintenance is the semi-naive differential loop of
:mod:`repro.runtime.seminaive` started from the inserted tuples instead of
from scratch: seed a Δ-relation per updated base predicate with the
genuinely new rows, then ping-pong — each rule is re-run once per body
occurrence that has a delta, with that occurrence redirected at the delta
and every other occurrence at the full (materialized) relation.  Tuples
already present in the view are stripped from the new delta exactly as the
from-scratch loop strips already-known tuples, so the loop terminates as
soon as the update's consequences are exhausted.

All statements run under the ``maint_delta`` phase, so ``Statistics``
breaks maintenance cost out from query execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..dbms.engine import Database
from ..dbms.schema import RelationSchema, quote_identifier
from ..dbms.sqlgen import compile_rule_body, copy_sql, insert_new_tuples_sql
from ..errors import EvaluationError
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from ..runtime import naive
from .plan import MaintenancePlan

PHASE_MAINT_DELTA = "maint_delta"


@dataclass(frozen=True)
class DeltaStats:
    """Outcome of one insert-propagation run."""

    iterations: int
    tuples_added: int


def propagate_inserts(
    database: Database,
    plan: MaintenancePlan,
    table_of: Mapping[str, str],
    seed_tables: Mapping[str, str],
    tracer: "Tracer | NullTracer | None" = None,
) -> DeltaStats:
    """Propagate inserted tuples into the plan's materialized relations.

    Args:
        database: the DBMS handle.
        plan: the (possibly merged) maintenance plan; must be negation-free.
        table_of: predicate-to-table mapping covering the plan's whole
            vocabulary (base facts and materialized relations).
        seed_tables: per updated predicate, a staged relation holding the
            *genuinely new* rows (already deduplicated and stripped of rows
            the relation previously contained).  Seeds may be base or
            derived predicates — the re-derivation phase of DRed reuses
            this loop with derived seeds.

    Raises:
        EvaluationError: when the plan contains negation (the caller should
            have fallen back to a full refresh), or when propagation exceeds
            :data:`repro.runtime.naive.MAX_ITERATIONS`.
    """
    if plan.has_negation:
        raise EvaluationError(
            f"plan for {plan.view!r} contains negation; delta propagation "
            "is unsound — use a full refresh"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    compiled = [(c, compile_rule_body(c)) for c in plan.rules]
    delta: dict[str, str] = dict(seed_tables)
    created: list[str] = []
    iterations = 0
    added = 0
    with tracer.span(
        "maint_delta", category="maintenance", view=plan.view
    ) as maint_span, database.phase(PHASE_MAINT_DELTA):
        try:
            while delta:
                if iterations >= naive.MAX_ITERATIONS:
                    raise EvaluationError(
                        f"insert maintenance of {plan.view!r} did not "
                        f"converge within MAX_ITERATIONS="
                        f"{naive.MAX_ITERATIONS} iterations"
                    )
                iterations += 1
                added_before = added
                with tracer.span(
                    "iteration", category="iteration", iteration=iterations
                ) as it_span:
                    new_delta: dict[str, str] = {}
                    for clause, select in compiled:
                        head = clause.head_predicate
                        for index, predicate in enumerate(
                            select.positive_predicates
                        ):
                            if predicate not in delta:
                                continue
                            if head not in new_delta:
                                name = database.fresh_temp_name(f"mdelta_{head}")
                                database.create_relation(
                                    RelationSchema(name, plan.types[head]),
                                    temporary=True,
                                )
                                created.append(name)
                                new_delta[head] = name
                            tables = [
                                delta[p] if j == index else table_of[p]
                                for j, p in enumerate(select.table_slots)
                            ]
                            database.execute(
                                insert_new_tuples_sql(
                                    new_delta[head],
                                    select.render(tables),
                                    clause.head.arity,
                                ),
                                select.parameters,
                            )
                    # Strip tuples the views already hold, fold the survivors
                    # in; the surviving delta drives the next iteration.
                    next_delta: dict[str, str] = {}
                    for head, name in new_delta.items():
                        arity = len(plan.types[head])
                        columns = ", ".join(f"c{i}" for i in range(arity))
                        database.execute(
                            f"DELETE FROM {quote_identifier(name)} "
                            f"WHERE ({columns}) IN "
                            f"(SELECT {columns} FROM "
                            f"{quote_identifier(table_of[head])})"
                        )
                        count = database.row_count(name)
                        if count:
                            database.execute(copy_sql(table_of[head], name, arity))
                            added += count
                            next_delta[head] = name
                    delta = next_delta
                    it_span.set("delta_tuples", added - added_before)
        finally:
            for name in created:
                database.drop_relation(name)
        maint_span.set("iterations", iterations)
        maint_span.set("tuples_added", added)
    return DeltaStats(iterations, added)
