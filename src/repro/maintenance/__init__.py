"""Incremental maintenance of materialized derived predicates.

An extension beyond the paper (which only treats rule-base updates,
section 4.3): derived predicates can be *materialized* as persistent DBMS
relations and kept correct under EDB fact inserts and deletes without full
recomputation — delta propagation for inserts, DRed (delete-and-rederive)
for deletes, with a cost heuristic falling back to a full refresh.  All of
it is off by default; nothing changes until ``Testbed.materialize`` is
called.
"""

from .delta import PHASE_MAINT_DELTA, DeltaStats, propagate_inserts
from .dred import (
    PHASE_MAINT_DRED,
    DeleteMaintenance,
    DredStats,
    MaintenanceDecision,
    MaintenancePolicy,
)
from .plan import MaintenancePlan, MaintenanceResult, build_plan, merge_plans
from .refresh import PHASE_MAINT_REFRESH, full_refresh
from .registry import (
    MaterializedViewRegistry,
    ViewInfo,
    view_table_name,
)

__all__ = [
    "DeleteMaintenance",
    "DeltaStats",
    "DredStats",
    "MaintenanceDecision",
    "MaintenancePlan",
    "MaintenancePolicy",
    "MaintenanceResult",
    "MaterializedViewRegistry",
    "PHASE_MAINT_DELTA",
    "PHASE_MAINT_DRED",
    "PHASE_MAINT_REFRESH",
    "ViewInfo",
    "build_plan",
    "full_refresh",
    "merge_plans",
    "propagate_inserts",
    "view_table_name",
]
