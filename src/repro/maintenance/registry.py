"""The materialization registry: view metadata in the data dictionary.

Materialized views are derived predicates whose tuples are kept in
persistent DBMS relations (named ``mv_<predicate>``) instead of being
recomputed per query.  The registry persists, alongside the intensional
dictionary (``ipredicates``), everything the maintenance engines need to
find and update those relations across sessions:

* ``mviews``       — one row per materialized relation: the view predicates
  the user asked for (``isview = 1``) and the derived *support* predicates
  their rules depend on (``isview = 0``), with a freshness flag and a
  monotonically increasing maintenance epoch;
* ``mviewcolumns`` — positional column types, mirroring ``ecolumns``;
* ``mviewdeps``    — per view, the derived predicates of its support set
  (``depkind = 'derived'``, including the view itself) and the base
  relations it reads (``depkind = 'base'``).

Support relations are shared: two views over the same recursive predicate
use one ``mv_`` table, and dropping a view only drops relations no other
view still needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..dbms.engine import Database
from ..dbms.schema import RelationSchema
from ..errors import CatalogError

MVIEWS = "mviews"
MVIEWCOLUMNS = "mviewcolumns"
MVIEWDEPS = "mviewdeps"
VIEW_TABLE_PREFIX = "mv_"

DEP_DERIVED = "derived"
DEP_BASE = "base"


def view_table_name(predicate: str) -> str:
    """Physical table name holding the materialized tuples of ``predicate``."""
    return f"{VIEW_TABLE_PREFIX}{predicate}"


@dataclass(frozen=True)
class ViewInfo:
    """One registry row, as shown by the REPL's ``:views`` command."""

    predicate: str
    arity: int
    is_view: bool
    fresh: bool
    epoch: int


class MaterializedViewRegistry:
    """Manages the materialized-view dictionary and the ``mv_`` relations."""

    def __init__(self, database: Database):
        self.database = database
        self._ensure_dictionary()

    def _ensure_dictionary(self) -> None:
        if self.database.table_exists(MVIEWS):
            return
        self.database.execute(
            f"CREATE TABLE {MVIEWS} ("
            "predname TEXT PRIMARY KEY, arity INTEGER NOT NULL, "
            "isview INTEGER NOT NULL, fresh INTEGER NOT NULL, "
            "epoch INTEGER NOT NULL)"
        )
        self.database.execute(
            f"CREATE TABLE {MVIEWCOLUMNS} ("
            "predname TEXT NOT NULL, colnumber INTEGER NOT NULL, "
            "coltype TEXT NOT NULL, PRIMARY KEY (predname, colnumber))"
        )
        self.database.execute(
            f"CREATE TABLE {MVIEWDEPS} ("
            "viewpred TEXT NOT NULL, depname TEXT NOT NULL, "
            "depkind TEXT NOT NULL, PRIMARY KEY (viewpred, depname, depkind))"
        )
        self.database.create_index("idx_mviewdeps_dep", MVIEWDEPS, ["depname"])
        self.database.commit()

    # -- registration -------------------------------------------------------

    def register_view(
        self,
        view: str,
        derived_types: Mapping[str, tuple[str, ...]],
        base_deps: Iterable[str],
    ) -> None:
        """Register ``view`` with its derived support set and base reads.

        Creates (or reuses) the ``mv_`` relation of every support predicate.
        Re-registering replaces the dependency rows — how ``refresh`` picks
        up rule-base changes that widened or narrowed the support set.  All
        touched rows start stale; the caller marks them fresh after the
        initial refresh populates the relations.
        """
        if view not in derived_types:
            raise CatalogError(
                f"view {view!r} is missing from its own support set"
            )
        for predicate, types in derived_types.items():
            self._register_relation(
                predicate, tuple(types), is_view=(predicate == view)
            )
        self.database.execute(
            f"DELETE FROM {MVIEWDEPS} WHERE viewpred = ?", (view,)
        )
        rows = [(view, dep, DEP_DERIVED) for dep in sorted(derived_types)]
        rows += [(view, dep, DEP_BASE) for dep in sorted(set(base_deps))]
        self.database.executemany(
            f"INSERT INTO {MVIEWDEPS} VALUES (?, ?, ?)", rows
        )
        self.database.commit()

    def _register_relation(
        self, predicate: str, types: tuple[str, ...], is_view: bool
    ) -> None:
        existing = self.database.execute(
            f"SELECT isview FROM {MVIEWS} WHERE predname = ?", (predicate,)
        )
        if existing and self.types_of(predicate) != types:
            # The rule base changed the predicate's inferred schema; the old
            # tuples are meaningless, so rebuild the relation.
            self.database.drop_relation(view_table_name(predicate))
            self.database.execute(
                f"DELETE FROM {MVIEWCOLUMNS} WHERE predname = ?", (predicate,)
            )
            self.database.execute(
                f"DELETE FROM {MVIEWS} WHERE predname = ?", (predicate,)
            )
            existing = []
        if existing:
            was_view = bool(existing[0][0])
            self.database.execute(
                f"UPDATE {MVIEWS} SET isview = ?, fresh = 0 "
                "WHERE predname = ?",
                (int(was_view or is_view), predicate),
            )
            return
        schema = RelationSchema(view_table_name(predicate), types)
        if not self.database.table_exists(schema.name):
            self.database.create_relation(schema)
            for position, column in enumerate(schema.columns):
                self.database.create_index(
                    f"idx_{schema.name}_{position}", schema.name, [column]
                )
        self.database.execute(
            f"INSERT INTO {MVIEWS} VALUES (?, ?, ?, 0, 0)",
            (predicate, schema.arity, int(is_view)),
        )
        self.database.executemany(
            f"INSERT INTO {MVIEWCOLUMNS} VALUES (?, ?, ?)",
            [(predicate, i, t) for i, t in enumerate(types)],
        )

    def unregister_view(self, view: str) -> None:
        """Drop a view, keeping support relations other views still need.

        Raises:
            CatalogError: when ``view`` is not a registered view.
        """
        if not self.is_view(view):
            raise CatalogError(f"{view!r} is not a materialized view")
        support = self.support_of(view)
        self.database.execute(
            f"DELETE FROM {MVIEWDEPS} WHERE viewpred = ?", (view,)
        )
        self.database.execute(
            f"UPDATE {MVIEWS} SET isview = 0 WHERE predname = ?", (view,)
        )
        for predicate in support:
            still_needed = self.database.execute(
                f"SELECT 1 FROM {MVIEWDEPS} WHERE depname = ? "
                f"AND depkind = '{DEP_DERIVED}'",
                (predicate,),
            )
            if still_needed:
                continue
            self.database.drop_relation(view_table_name(predicate))
            self.database.execute(
                f"DELETE FROM {MVIEWS} WHERE predname = ?", (predicate,)
            )
            self.database.execute(
                f"DELETE FROM {MVIEWCOLUMNS} WHERE predname = ?", (predicate,)
            )
        self.database.commit()

    # -- lookups ------------------------------------------------------------

    def has_views(self) -> bool:
        """Whether any view is registered (the ``query()`` fast-path gate)."""
        return bool(
            self.database.execute(f"SELECT 1 FROM {MVIEWS} WHERE isview = 1")
        )

    def is_view(self, predicate: str) -> bool:
        """Whether ``predicate`` was explicitly materialized as a view."""
        rows = self.database.execute(
            f"SELECT 1 FROM {MVIEWS} WHERE predname = ? AND isview = 1",
            (predicate,),
        )
        return bool(rows)

    def is_registered(self, predicate: str) -> bool:
        """Whether ``predicate`` has a materialized relation (view or support)."""
        rows = self.database.execute(
            f"SELECT 1 FROM {MVIEWS} WHERE predname = ?", (predicate,)
        )
        return bool(rows)

    def is_fresh(self, predicate: str) -> bool:
        """Whether ``predicate``'s materialized relation is current."""
        rows = self.database.execute(
            f"SELECT fresh FROM {MVIEWS} WHERE predname = ?", (predicate,)
        )
        return bool(rows) and bool(rows[0][0])

    def views(self) -> list[ViewInfo]:
        """Registry rows of the explicit views, sorted by predicate."""
        return self._infos("isview = 1")

    def registered(self) -> list[ViewInfo]:
        """Every registry row (views and support relations)."""
        return self._infos("1 = 1")

    def _infos(self, condition: str) -> list[ViewInfo]:
        rows = self.database.execute(
            f"SELECT predname, arity, isview, fresh, epoch FROM {MVIEWS} "
            f"WHERE {condition} ORDER BY predname"
        )
        return [
            ViewInfo(name, arity, bool(isview), bool(fresh), epoch)
            for name, arity, isview, fresh, epoch in rows
        ]

    def types_of(self, predicate: str) -> tuple[str, ...]:
        """Column types of a registered materialized relation."""
        rows = self.database.execute(
            f"SELECT coltype FROM {MVIEWCOLUMNS} WHERE predname = ? "
            "ORDER BY colnumber",
            (predicate,),
        )
        if not rows:
            raise CatalogError(
                f"{predicate!r} has no materialized relation"
            )
        return tuple(t for (t,) in rows)

    def support_of(self, view: str) -> list[str]:
        """Derived support predicates of ``view`` (including itself)."""
        rows = self.database.execute(
            f"SELECT depname FROM {MVIEWDEPS} WHERE viewpred = ? "
            f"AND depkind = '{DEP_DERIVED}' ORDER BY depname",
            (view,),
        )
        return [name for (name,) in rows]

    def base_deps_of(self, view: str) -> list[str]:
        """Base relations ``view``'s rules read."""
        rows = self.database.execute(
            f"SELECT depname FROM {MVIEWDEPS} WHERE viewpred = ? "
            f"AND depkind = '{DEP_BASE}' ORDER BY depname",
            (view,),
        )
        return [name for (name,) in rows]

    def fresh_views_on_base(self, predicate: str) -> list[str]:
        """Fresh views whose rules read base relation ``predicate``.

        These are the views EDB updates must maintain; stale views are
        skipped (they will be recomputed wholesale on ``refresh``).
        """
        rows = self.database.execute(
            f"SELECT DISTINCT d.viewpred FROM {MVIEWDEPS} AS d, {MVIEWS} AS v "
            f"WHERE d.depname = ? AND d.depkind = '{DEP_BASE}' "
            "AND v.predname = d.viewpred AND v.isview = 1 AND v.fresh = 1 "
            "ORDER BY d.viewpred",
            (predicate,),
        )
        return [name for (name,) in rows]

    def views_supported_by(self, predicates: Iterable[str]) -> list[str]:
        """Views whose derived support set intersects ``predicates``.

        Used to invalidate views when rules defining those predicates are
        added or removed.
        """
        wanted = sorted(set(predicates))
        if not wanted:
            return []
        placeholders = ", ".join("?" for __ in wanted)
        rows = self.database.execute(
            f"SELECT DISTINCT d.viewpred FROM {MVIEWDEPS} AS d, {MVIEWS} AS v "
            f"WHERE d.depkind = '{DEP_DERIVED}' "
            f"AND d.depname IN ({placeholders}) "
            "AND v.predname = d.viewpred AND v.isview = 1 "
            "ORDER BY d.viewpred",
            wanted,
        )
        return [name for (name,) in rows]

    def tuple_count(self, predicate: str) -> int:
        """Current size of a registered materialized relation."""
        self.types_of(predicate)  # raises CatalogError when missing
        return self.database.row_count(view_table_name(predicate))

    # -- freshness and epochs ------------------------------------------------

    def mark_group_fresh(self, view: str) -> None:
        """Mark ``view`` and its whole support set fresh."""
        self._set_group_fresh(view, 1)

    def mark_stale(self, views: Iterable[str]) -> None:
        """Mark each view and its support set stale."""
        for view in set(views):
            self._set_group_fresh(view, 0)

    def _set_group_fresh(self, view: str, fresh: int) -> None:
        self.database.execute(
            f"UPDATE {MVIEWS} SET fresh = ? WHERE predname IN "
            f"(SELECT depname FROM {MVIEWDEPS} WHERE viewpred = ? "
            f"AND depkind = '{DEP_DERIVED}')",
            (fresh, view),
        )
        self.database.commit()

    def bump_epoch(self, views: Sequence[str]) -> None:
        """Advance the maintenance epoch of each view's support group."""
        for view in sorted(set(views)):
            self.database.execute(
                f"UPDATE {MVIEWS} SET epoch = epoch + 1 WHERE predname IN "
                f"(SELECT depname FROM {MVIEWDEPS} WHERE viewpred = ? "
                f"AND depkind = '{DEP_DERIVED}')",
                (view,),
            )
        self.database.commit()
