"""Full refresh: recompute a materialized view from scratch.

The fallback the incremental engines measure themselves against, and the
correct path whenever incremental maintenance is unsound (rules with
negation) or expected to lose (the DRed cost heuristic).  A refresh clears
the plan's materialized relations and replays the plan's evaluation order
with the ordinary run-time library — semi-naive for cliques, relational
algebra for non-recursive nodes — pointed at the persistent ``mv_`` tables
instead of scratch ``d_`` tables.

All statements run under the ``maint_refresh`` phase.
"""

from __future__ import annotations

from typing import Mapping

from ..datalog.pcg import Clique
from ..dbms.engine import Database
from ..dbms.schema import quote_identifier
from ..errors import EvaluationError
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from ..runtime.context import EvaluationContext, FastPathConfig
from ..runtime.relalg import evaluate_nonrecursive
from ..runtime.seminaive import evaluate_clique_seminaive
from .plan import MaintenancePlan

PHASE_MAINT_REFRESH = "maint_refresh"


def full_refresh(
    database: Database,
    plan: MaintenancePlan,
    table_of: Mapping[str, str],
    fastpath: FastPathConfig | None = None,
    tracer: "Tracer | NullTracer | None" = None,
) -> int:
    """Recompute every materialized relation of ``plan`` from scratch.

    Pre-seeding the evaluation context with the ``mv_`` tables makes the
    evaluators' ``materialise()`` calls no-ops and keeps the persistent
    relations out of the context's cleanup.  Returns the recomputed tuple
    count across the plan's derived relations.
    """
    if not plan.order:
        raise EvaluationError(
            f"plan for {plan.view!r} has no evaluation order; merged plans "
            "cannot be refreshed as a unit"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span(
        "maint_refresh", category="maintenance", view=plan.view
    ) as span, database.phase(PHASE_MAINT_REFRESH):
        for predicate in plan.derived:
            database.execute(
                f"DELETE FROM {quote_identifier(table_of[predicate])}"
            )
        context = EvaluationContext(
            database, table_of, plan.types, fastpath=fastpath, tracer=tracer
        )
        for node in plan.order:
            if isinstance(node, Clique):
                evaluate_clique_seminaive(context, node)
            else:
                evaluate_nonrecursive(context, node.predicate, node.rules)
        recomputed = sum(
            database.row_count(table_of[p]) for p in plan.derived
        )
        span.set("tuples", recomputed)
        return recomputed
