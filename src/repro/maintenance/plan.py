"""Maintenance plans: the compiled rule set behind a materialized view.

A plan is extracted by compiling the all-free query ``?- v(X0, .., Xn).``
through the ordinary :class:`repro.km.compiler.QueryCompiler` pipeline — the
same relevant-rule extraction, dictionary reads, and semantic checks a user
query would get — and keeping what the maintenance engines need: the
relevant rules, the derived support set, the base relations read, the column
types, and the evaluation order (for full refreshes).

When one EDB update touches several views at once their plans are *merged*
and maintained jointly; updating each view in isolation would be wrong, not
just slow — the first view's pass would fold shared support tuples in, the
second view's delta would strip them as already-known, and derivations
feeding the second view's private predicates would be lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..datalog.clauses import Clause
from ..datalog.evalgraph import EvaluationNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (km imports us)
    from ..km.compiler import CompilationResult


@dataclass(frozen=True)
class MaintenancePlan:
    """Everything the maintenance engines need to keep a view correct.

    Attributes:
        view: the materialized predicate (or a ``+``-joined label for a
            merged plan covering several views).
        rules: the relevant rules, deduplicated, in extraction order.
        derived: the derived support set, sorted (always contains the view).
        base: the base relations the rules read, sorted.
        types: column types of every predicate in ``derived`` + ``base``.
        order: the evaluation order list (full-refresh path only; empty for
            merged plans, which are never refreshed as a unit).
        has_negation: any rule body contains a negated atom — delta
            propagation and DRed are unsound then, so maintenance falls
            back to a full refresh.
    """

    view: str
    rules: tuple[Clause, ...]
    derived: tuple[str, ...]
    base: tuple[str, ...]
    types: Mapping[str, tuple[str, ...]]
    order: tuple[EvaluationNode, ...] = ()
    has_negation: bool = False

    def table_of(
        self, base_table: "callable", view_table: "callable"
    ) -> dict[str, str]:
        """Predicate-to-table mapping over the plan's whole vocabulary."""
        mapping = {p: base_table(p) for p in self.base}
        mapping.update({p: view_table(p) for p in self.derived})
        return mapping


def build_plan(view: str, compilation: "CompilationResult") -> MaintenancePlan:
    """Derive a maintenance plan from the all-free query's compilation."""
    rules = tuple(compilation.relevant_rules.rules)
    derived = tuple(sorted(compilation.relevant_rules.derived_predicates | {view}))
    base = tuple(sorted(compilation.program.base_predicates))
    has_negation = any(
        atom.negated for clause in rules for atom in clause.body
    )
    return MaintenancePlan(
        view=view,
        rules=rules,
        derived=derived,
        base=base,
        types=dict(compilation.program.types),
        order=tuple(compilation.program.order),
        has_negation=has_negation,
    )


def merge_plans(plans: Sequence[MaintenancePlan]) -> MaintenancePlan:
    """Union several plans so one EDB update maintains all views jointly."""
    if len(plans) == 1:
        return plans[0]
    rules: list[Clause] = []
    seen: set[Clause] = set()
    for plan in plans:
        for clause in plan.rules:
            if clause not in seen:
                seen.add(clause)
                rules.append(clause)
    types: dict[str, tuple[str, ...]] = {}
    for plan in plans:
        types.update(plan.types)
    return MaintenancePlan(
        view="+".join(sorted({p.view for p in plans})),
        rules=tuple(rules),
        derived=tuple(sorted({d for p in plans for d in p.derived})),
        base=tuple(sorted({b for p in plans for b in p.base})),
        types=types,
        order=(),
        has_negation=any(p.has_negation for p in plans),
    )


@dataclass(frozen=True)
class MaintenanceResult:
    """One maintenance event, as recorded in ``Testbed.maintenance_log``.

    Attributes:
        views: the views the event maintained.
        trigger: what caused it (``insert`` / ``delete`` / ``materialize`` /
            ``refresh``).
        strategy: how it was handled (``delta`` / ``dred`` / ``refresh``).
        fell_back: an incremental path was requested but the engine chose a
            full refresh instead (negation, or the cost heuristic).
        reason: why it fell back (``None`` otherwise).
        seconds: wall time of the maintenance work (excludes the base-table
            write itself).
        base_rows_changed: rows inserted into / deleted from the base
            relation.
        tuples_added: tuples added across the materialized relations.
        tuples_removed: tuples removed across the materialized relations
            (DRed: net of over-delete minus re-derive).
        iterations: delta-propagation iterations performed.
    """

    views: tuple[str, ...]
    trigger: str
    strategy: str
    fell_back: bool = False
    reason: str | None = None
    seconds: float = 0.0
    base_rows_changed: int = 0
    tuples_added: int = 0
    tuples_removed: int = 0
    iterations: int = 0
    decision: "object | None" = field(default=None, compare=False)

    @property
    def timings(self) -> dict[str, float]:
        """Phase -> seconds, the common result-object timing contract.

        Maintenance is a single phase named after the strategy that ran
        (``delta`` / ``dred`` / ``refresh``).
        """
        return {self.strategy: self.seconds}

    @property
    def total_seconds(self) -> float:
        """Wall time of the maintenance work (same contract as query results)."""
        return self.seconds
