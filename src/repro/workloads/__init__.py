"""Synthetic workloads: the paper's D/KB characterisation (section 5.2).

Base relations as directed graphs (lists, full binary trees, DAGs, cyclic
graphs), synthetic rule bases parameterised by the paper's R_s / R_rs /
P_s / P_rs counts, and the canonical ancestor / same-generation query
families with exact selectivity computation.
"""

from .queries import (
    ANCESTOR_RULES,
    ANCESTOR_RULES_RIGHT,
    SAME_GENERATION_RULES,
    SelectivityPoint,
    ancestor_query,
    expected_ancestor_answers,
    load_parent_relation,
    make_ancestor_testbed,
    selectivity_of,
)
from .relations import (
    GeneratedRelation,
    first_node_at_level,
    full_binary_trees,
    iter_descendants,
    lists,
    random_cyclic_graph,
    random_dag,
    subtree_size,
    tree_node,
)
from .rulegen import (
    RuleModule,
    SyntheticRuleBase,
    make_module,
    make_predicate_pool,
    make_rule_base,
)

__all__ = [
    "ANCESTOR_RULES",
    "ANCESTOR_RULES_RIGHT",
    "GeneratedRelation",
    "RuleModule",
    "SAME_GENERATION_RULES",
    "SelectivityPoint",
    "SyntheticRuleBase",
    "ancestor_query",
    "expected_ancestor_answers",
    "first_node_at_level",
    "full_binary_trees",
    "iter_descendants",
    "lists",
    "load_parent_relation",
    "make_ancestor_testbed",
    "make_module",
    "make_predicate_pool",
    "make_rule_base",
    "random_cyclic_graph",
    "random_dag",
    "selectivity_of",
    "subtree_size",
    "tree_node",
]
