"""Synthetic base relations characterised as directed graphs (paper §5.2).

A binary relation is a directed graph: domain elements are nodes, tuples are
edges.  The paper's experiments use four relation types — lists, full binary
trees, directed acyclic graphs, and directed cyclic graphs — parameterised as
in its Table 2.  The tuple-count formulas it states are asserted by tests:

* ``n`` lists of length ``l``: ``n * (l - 1)`` tuples;
* ``n`` full binary trees of depth ``d``: ``n * (2**d - 2)`` tuples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..errors import WorkloadError

Edge = tuple[str, str]


@dataclass(frozen=True)
class GeneratedRelation:
    """A generated binary relation plus its graph-level description."""

    kind: str
    edges: tuple[Edge, ...]
    parameters: dict

    @property
    def tuple_count(self) -> int:
        """Number of tuples (edges)."""
        return len(self.edges)

    @property
    def nodes(self) -> set[str]:
        """All domain elements."""
        out: set[str] = set()
        for source, target in self.edges:
            out.add(source)
            out.add(target)
        return out


def lists(count: int, length: int, prefix: str = "l") -> GeneratedRelation:
    """``count`` disjoint lists, each of ``length`` nodes.

    Tuple count is ``count * (length - 1)`` (paper Table 2).

    Raises:
        WorkloadError: for non-positive parameters or length < 2.
    """
    if count <= 0 or length < 2:
        raise WorkloadError(
            f"lists requires count >= 1 and length >= 2, got {count}, {length}"
        )
    edges: list[Edge] = []
    for index in range(count):
        names = [f"{prefix}{index}_{j}" for j in range(length)]
        edges.extend(zip(names, names[1:]))
    return GeneratedRelation(
        "list", tuple(edges), {"count": count, "length": length}
    )


def tree_node(prefix: str, index: int) -> str:
    """Name of heap-indexed tree node ``index`` (root is 1)."""
    return f"{prefix}{index}"


def full_binary_trees(
    count: int, depth: int, prefix: str = "t"
) -> GeneratedRelation:
    """``count`` full binary trees of ``depth`` levels.

    A tree of depth ``d`` has ``2**d - 1`` nodes and ``2**d - 2`` edges, so
    the tuple count is ``count * (2**d - 2)`` (paper Table 2).  Nodes are
    heap-indexed: node ``i``'s children are ``2i`` and ``2i+1``; use
    :func:`tree_node` / :func:`subtree_size` to pick query roots with a known
    number of descendants.

    Raises:
        WorkloadError: for non-positive counts or depth < 2.
    """
    if count <= 0 or depth < 2:
        raise WorkloadError(
            f"trees require count >= 1 and depth >= 2, got {count}, {depth}"
        )
    edges: list[Edge] = []
    for tree in range(count):
        tree_prefix = f"{prefix}{tree}_" if count > 1 else prefix
        for parent in range(1, 2 ** (depth - 1)):
            edges.append(
                (tree_node(tree_prefix, parent), tree_node(tree_prefix, 2 * parent))
            )
            edges.append(
                (
                    tree_node(tree_prefix, parent),
                    tree_node(tree_prefix, 2 * parent + 1),
                )
            )
    return GeneratedRelation(
        "full_binary_tree", tuple(edges), {"count": count, "depth": depth}
    )


def subtree_size(depth: int, node_level: int) -> int:
    """Descendant count of a node at ``node_level`` in a depth-``depth`` tree.

    Level 1 is the root.  The subtree below a level-``k`` node has
    ``2**(depth - k + 1) - 1`` nodes, hence that minus one descendants.
    """
    if not 1 <= node_level <= depth:
        raise WorkloadError(
            f"node level must be within 1..{depth}, got {node_level}"
        )
    return 2 ** (depth - node_level + 1) - 2


def first_node_at_level(level: int) -> int:
    """Heap index of the left-most node at ``level`` (root level is 1)."""
    return 2 ** (level - 1)


def random_dag(
    tuple_count: int,
    path_length: int,
    fan_out: int = 2,
    seed: int = 0,
    prefix: str = "g",
) -> GeneratedRelation:
    """A layered random DAG (paper Table 2's acyclic graph).

    Nodes are arranged in ``path_length`` layers; every edge goes from layer
    ``i`` to layer ``i+1``, so the longest path visits ``path_length`` nodes.
    Average fan-out is controlled by the layer width
    ``tuple_count / ((path_length - 1) * fan_out)``.

    Raises:
        WorkloadError: for parameters that cannot produce the requested
            tuple count.
    """
    if path_length < 2 or tuple_count < path_length - 1 or fan_out < 1:
        raise WorkloadError(
            "random_dag requires path_length >= 2, fan_out >= 1, and "
            f"tuple_count >= path_length - 1; got {tuple_count}, "
            f"{path_length}, {fan_out}"
        )
    rng = random.Random(seed)
    per_layer = max(1, round(tuple_count / ((path_length - 1) * fan_out)))
    layers = [
        [f"{prefix}{level}_{i}" for i in range(per_layer)]
        for level in range(path_length)
    ]
    edges: set[Edge] = set()
    # Guarantee connectivity layer to layer, then fill to the tuple budget.
    for level in range(path_length - 1):
        for node in layers[level]:
            edges.add((node, rng.choice(layers[level + 1])))
    attempts = 0
    max_possible = (path_length - 1) * per_layer * per_layer
    target = min(tuple_count, max_possible)
    while len(edges) < target and attempts < 50 * tuple_count:
        attempts += 1
        level = rng.randrange(path_length - 1)
        edges.add(
            (rng.choice(layers[level]), rng.choice(layers[level + 1]))
        )
    return GeneratedRelation(
        "dag",
        tuple(sorted(edges)),
        {
            "tuple_count": tuple_count,
            "path_length": path_length,
            "fan_out": fan_out,
            "seed": seed,
        },
    )


def random_cyclic_graph(
    tuple_count: int,
    path_length: int,
    cycle_count: int,
    cycle_length: int = 3,
    fan_out: int = 2,
    seed: int = 0,
    prefix: str = "c",
) -> GeneratedRelation:
    """A directed cyclic graph: a layered DAG plus back edges forming cycles.

    ``cycle_count`` back edges are added, each from a layer-``i`` node to a
    node ``cycle_length - 1`` layers earlier, closing cycles of roughly
    ``cycle_length`` nodes (paper Table 2's cyclic parameters).

    Raises:
        WorkloadError: when the cycle length exceeds the path length.
    """
    if cycle_length < 2 or cycle_length > path_length:
        raise WorkloadError(
            f"cycle_length must be within 2..path_length, got {cycle_length}"
        )
    base = random_dag(
        max(tuple_count - cycle_count, path_length - 1),
        path_length,
        fan_out,
        seed,
        prefix,
    )
    rng = random.Random(seed + 1)
    by_layer: dict[int, list[str]] = {}
    for node in base.nodes:
        layer = int(node[len(prefix):].split("_")[0])
        by_layer.setdefault(layer, []).append(node)
    for nodes in by_layer.values():
        nodes.sort()
    edges = set(base.edges)
    added = 0
    attempts = 0
    while added < cycle_count and attempts < 100 * max(cycle_count, 1):
        attempts += 1
        high = rng.randrange(cycle_length - 1, path_length)
        low = high - (cycle_length - 1)
        edge = (rng.choice(by_layer[high]), rng.choice(by_layer[low]))
        if edge not in edges:
            edges.add(edge)
            added += 1
    return GeneratedRelation(
        "cyclic",
        tuple(sorted(edges)),
        {
            "tuple_count": tuple_count,
            "path_length": path_length,
            "cycle_count": cycle_count,
            "cycle_length": cycle_length,
            "fan_out": fan_out,
            "seed": seed,
        },
    )


def iter_descendants(relation: GeneratedRelation, root: str) -> Iterator[str]:
    """All nodes reachable from ``root`` (the true answer of ``ancestor``)."""
    successors: dict[str, list[str]] = {}
    for source, target in relation.edges:
        successors.setdefault(source, []).append(target)
    seen: set[str] = set()
    frontier = list(successors.get(root, ()))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        yield node
        frontier.extend(successors.get(node, ()))
