"""Canonical query families for the execution experiments.

All of the paper's execution tests (Tests 4-7) use the ``ancestor`` query
over tree-structured ``parent`` data::

    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).

This module builds that program (and the classic ``same_generation``, used
as an additional example/benchmark), loads generated relations into a
testbed, and computes query selectivities ``D_rel / D`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..km.session import Testbed
from .relations import GeneratedRelation, iter_descendants

ANCESTOR_RULES = """
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
"""

# Right-linear variant: recursing through the second body position.
ANCESTOR_RULES_RIGHT = """
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- ancestor(X, Z), parent(Z, Y).
"""

SAME_GENERATION_RULES = """
same_generation(X, Y) :- flat(X, Y).
same_generation(X, Y) :- up(X, U), same_generation(U, V), down(V, Y).
"""


def ancestor_query(root: str) -> str:
    """The bound ancestor query for a given root constant."""
    return f"?- ancestor('{root}', Y)."


def load_parent_relation(
    testbed: Testbed, relation: GeneratedRelation, predicate: str = "parent"
) -> int:
    """Create and populate the ``parent`` base relation from a generated graph."""
    if not testbed.catalog.has_relation(predicate):
        testbed.define_base_relation(predicate, ("TEXT", "TEXT"))
    return testbed.load_facts(predicate, relation.edges)


def make_ancestor_testbed(
    relation: GeneratedRelation, right_linear: bool = False
) -> Testbed:
    """A fresh testbed with the ancestor rules and ``relation`` as ``parent``."""
    testbed = Testbed()
    testbed.define(ANCESTOR_RULES_RIGHT if right_linear else ANCESTOR_RULES)
    load_parent_relation(testbed, relation)
    return testbed


@dataclass(frozen=True)
class SelectivityPoint:
    """One query root with its exact relevant-fact statistics."""

    root: str
    relevant_facts: int  # the paper's D_rel: facts reachable from the root
    total_facts: int  # the paper's D

    @property
    def selectivity(self) -> float:
        """The paper's ``D_rel / D``."""
        return self.relevant_facts / self.total_facts if self.total_facts else 0.0


def selectivity_of(relation: GeneratedRelation, root: str) -> SelectivityPoint:
    """Exact selectivity of the ancestor query rooted at ``root``.

    ``D_rel`` counts the edges within the subgraph reachable from the root —
    the facts the magic-set computation would touch.
    """
    reachable = set(iter_descendants(relation, root))
    reachable.add(root)
    relevant = sum(
        1 for source, __ in relation.edges if source in reachable
    )
    return SelectivityPoint(root, relevant, relation.tuple_count)


def expected_ancestor_answers(relation: GeneratedRelation, root: str) -> set[tuple]:
    """Ground truth for the bound ancestor query (single-column rows)."""
    return {(node,) for node in iter_descendants(relation, root)}
