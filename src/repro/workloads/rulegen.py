"""Synthetic rule bases for the compilation and update experiments.

Tests 1-3, 8, and 9 vary the total number of stored rules (``R_s``), the
rules relevant to a query (``R_rs``), the stored derived predicates
(``P_s``), and the predicates relevant to the query (``P_rs``).  The paper
does not publish its rule sets, only those counts, so this generator builds
rule bases as a collection of independent *modules*: each module is a chain
of derived predicates over its own base relation, and a query against a
module's root predicate is relevant to exactly that module's rules.

Module shape (``chain_length`` predicates, ``rules_per_predicate`` bodies)::

    p_m_0(X, Y) :- p_m_1(X, Z), base_m(Z, Y).     (variant 0)
    p_m_0(X, Y) :- base_m(X, Z), p_m_1(Z, Y).     (variant 1)
    ...
    p_m_last(X, Y) :- base_m(X, Y).

so ``R_rs = (chain_length - 1) * rules_per_predicate + 1`` and
``P_rs = chain_length`` for a query on ``p_m_0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.clauses import Clause, Program
from ..datalog.parser import parse_clause
from ..errors import WorkloadError


@dataclass(frozen=True)
class RuleModule:
    """One independent module of a synthetic rule base."""

    name: str
    rules: tuple[Clause, ...]
    root_predicate: str
    base_predicate: str
    predicates: tuple[str, ...]

    @property
    def rule_count(self) -> int:
        """Rules in the module."""
        return len(self.rules)


def make_module(
    name: str,
    chain_length: int,
    rules_per_predicate: int = 1,
    recursive: bool = False,
) -> RuleModule:
    """Build one module.

    Args:
        name: module identifier used to prefix all predicate names.
        chain_length: derived predicates in the chain (``P_rs`` per query).
        rules_per_predicate: alternative bodies per non-terminal predicate.
        recursive: make the terminal predicate self-recursive (an ancestor-
            style pair of rules), so the module's PCG has a cycle — matching
            D/KBs whose stored rules contain recursion.  Adds one rule to
            the module.

    Raises:
        WorkloadError: for non-positive parameters.
    """
    if chain_length < 1 or rules_per_predicate < 1:
        raise WorkloadError(
            "module requires chain_length >= 1 and rules_per_predicate >= 1"
        )
    base = f"base_{name}"
    predicates = [f"p_{name}_{i}" for i in range(chain_length)]
    rules: list[Clause] = []
    for index in range(chain_length - 1):
        head = predicates[index]
        next_predicate = predicates[index + 1]
        for variant in range(rules_per_predicate):
            if variant % 2 == 0:
                text = f"{head}(X, Y) :- {next_predicate}(X, Z{variant}), {base}(Z{variant}, Y)."
            else:
                text = f"{head}(X, Y) :- {base}(X, Z{variant}), {next_predicate}(Z{variant}, Y)."
            rules.append(parse_clause(text))
    terminal = predicates[-1]
    rules.append(parse_clause(f"{terminal}(X, Y) :- {base}(X, Y)."))
    if recursive:
        rules.append(
            parse_clause(f"{terminal}(X, Y) :- {base}(X, Z), {terminal}(Z, Y).")
        )
    return RuleModule(name, tuple(rules), predicates[0], base, tuple(predicates))


@dataclass(frozen=True)
class SyntheticRuleBase:
    """A full rule base: one query module plus filler modules."""

    program: Program
    query_module: RuleModule
    filler_modules: tuple[RuleModule, ...]

    @property
    def total_rules(self) -> int:
        """The paper's ``R_s``."""
        return len(self.program.rules)

    @property
    def relevant_rules(self) -> int:
        """The paper's ``R_rs`` for a query on the query module's root."""
        return self.query_module.rule_count

    @property
    def total_predicates(self) -> int:
        """The paper's ``P_s``."""
        return len(self.program.derived_predicates)

    @property
    def relevant_predicates(self) -> int:
        """The paper's ``P_rs`` for a query on the query module's root."""
        return len(self.query_module.predicates)

    @property
    def base_predicates(self) -> list[str]:
        """All base relations the rule base references."""
        names = [self.query_module.base_predicate]
        names.extend(m.base_predicate for m in self.filler_modules)
        return names

    def query_text(self, constant: str = "a") -> str:
        """An ancestor-style query bound on the query module's root."""
        return f"?- {self.query_module.root_predicate}('{constant}', Y)."


def make_rule_base(
    total_rules: int,
    relevant_rules: int,
    relevant_predicates: int | None = None,
    filler_chain_length: int = 5,
) -> SyntheticRuleBase:
    """A rule base with exact ``R_s`` and ``R_rs``.

    Args:
        total_rules: total stored rules ``R_s``.
        relevant_rules: rules relevant to the canonical query ``R_rs``.
        relevant_predicates: derived predicates in the query module ``P_rs``
            (default: one per relevant rule, i.e. a pure chain).
        filler_chain_length: chain length of the filler modules.

    Raises:
        WorkloadError: when the counts are inconsistent (e.g. ``R_rs``
            exceeding ``R_s`` or incompatible with ``P_rs``).
    """
    if relevant_rules < 1 or total_rules < relevant_rules:
        raise WorkloadError(
            f"need 1 <= relevant_rules <= total_rules, got "
            f"{relevant_rules}, {total_rules}"
        )
    if relevant_predicates is None:
        relevant_predicates = relevant_rules
    if relevant_predicates < 1:
        raise WorkloadError("relevant_predicates must be >= 1")
    if relevant_predicates == 1:
        if relevant_rules != 1:
            raise WorkloadError(
                "a single-predicate module has exactly one rule"
            )
        rules_per_predicate = 1
    else:
        extra = relevant_rules - 1
        if extra % (relevant_predicates - 1):
            raise WorkloadError(
                f"cannot spread {relevant_rules} rules over "
                f"{relevant_predicates} chained predicates evenly"
            )
        rules_per_predicate = extra // (relevant_predicates - 1)
    query_module = make_module("q", relevant_predicates, rules_per_predicate)
    if query_module.rule_count != relevant_rules:
        raise WorkloadError(
            f"module construction yielded {query_module.rule_count} rules, "
            f"wanted {relevant_rules}"
        )

    fillers: list[RuleModule] = []
    remaining = total_rules - relevant_rules
    index = 0
    while remaining > 0:
        length = min(filler_chain_length, remaining)
        fillers.append(make_module(f"f{index}", length))
        remaining -= length
        index += 1

    program = Program(query_module.rules)
    for module in fillers:
        program.extend(module.rules)
    return SyntheticRuleBase(program, query_module, tuple(fillers))


def make_predicate_pool(
    total_predicates: int, relevant_predicates: int
) -> SyntheticRuleBase:
    """A rule base sized by predicate counts (Test 2 varies ``P_s``/``P_rs``).

    One rule per predicate, so ``R_s = P_s`` and ``R_rs = P_rs``.
    """
    return make_rule_base(
        total_predicates, relevant_predicates, relevant_predicates
    )
