"""A Mapping facade over per-phase timing dataclasses.

``CompilationTimings`` and ``UpdateTimings`` each expose an ``as_dict()``
with one entry per phase plus a ``"total"``.  Mixing this class in turns
them into read-only mappings over the *component* entries (iteration skips
``"total"`` so ``sum(t.values())`` never double-counts) and gives every
result object the common ``total_seconds`` accessor.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator

__all__ = ["TimingsMapping"]


class TimingsMapping(Mapping[str, float]):
    """Read-only mapping over a timing dataclass's phase components."""

    def as_dict(self) -> dict[str, float]:  # pragma: no cover - overridden
        raise NotImplementedError

    def components(self) -> dict[str, float]:
        """Phase -> seconds, excluding the aggregate ``total`` entry."""
        return {key: value for key, value in self.as_dict().items() if key != "total"}

    def __getitem__(self, key: str) -> float:
        # Consistent with iteration: only the components are mapping keys;
        # the aggregate stays on ``total`` / ``total_seconds``.
        return self.components()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self.components())

    def __len__(self) -> int:
        return len(self.components())

    @property
    def total_seconds(self) -> float:
        return float(self.as_dict()["total"])
