"""EXPLAIN QUERY PLAN capture for compiled SELECTs.

Every *distinct* statement text that reads data (the compiled SELECTs and
the INSERT ... SELECT forms the code generator emits) is explained once,
through ``Database.observe`` — the uncounted raw-connection path — so plan
capture never perturbs the statement stream that Statistics and the
benchmarks measure.  Each captured plan remembers the span that first
executed the statement, answering "which phase picked this access path".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["CapturedPlan", "PlanCapture"]

# Statement kinds that embed a SELECT worth explaining.
_EXPLAINABLE_KINDS = frozenset({"SELECT", "INSERT", "DELETE", "UPDATE"})


@dataclass(frozen=True)
class CapturedPlan:
    """One EXPLAIN QUERY PLAN snapshot, attributed to its first executor."""

    sql: str
    span: str
    detail: tuple[str, ...]

    def render(self) -> str:
        plan = "\n".join(f"  {line}" for line in self.detail)
        return f"-- span: {self.span}\n{self.sql}\n{plan}"


class PlanCapture:
    """Collects one plan per distinct SQL text, up to ``limit`` plans."""

    def __init__(self, limit: int = 256) -> None:
        self.limit = limit
        self.plans: dict[str, CapturedPlan] = {}
        self._failed: set[str] = set()

    def __len__(self) -> int:
        return len(self.plans)

    def wants(self, kind: str, sql: str) -> bool:
        """True when ``sql`` is a new, explainable, within-budget statement."""
        if kind not in _EXPLAINABLE_KINDS:
            return False
        if sql in self.plans or sql in self._failed:
            return False
        if len(self.plans) >= self.limit:
            return False
        return "SELECT" in sql.upper()

    def capture(
        self, database: Any, sql: str, parameters: Sequence[Any], span: str
    ) -> None:
        """Explain ``sql`` via the database's uncounted ``observe`` path.

        Failures (e.g. a scratch table already dropped by the time we look)
        are remembered and never retried; plan capture must not raise into
        the execution path.
        """
        try:
            rows = database.observe(f"EXPLAIN QUERY PLAN {sql}", tuple(parameters))
        except Exception:
            self._failed.add(sql)
            return
        # sqlite EQP rows are (id, parent, notused, detail).
        detail = tuple(str(row[-1]) for row in rows)
        self.plans[sql] = CapturedPlan(sql=sql, span=span, detail=detail)

    def render(self) -> str:
        if not self.plans:
            return "(no plans captured)"
        return "\n\n".join(plan.render() for plan in self.plans.values())
