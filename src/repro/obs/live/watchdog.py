"""The SLO watchdog: sentinel↔diagnostic monitoring with reversible actions.

The MicroSentinel-style loop: in **sentinel** mode the watchdog cheaply
evaluates a few EWMA/threshold rules over the rolling time-series store
once per window; when a rule breaches it enters **diagnostic** mode for
that rule — applying its escalation actions (turn tracing on, flip a
policy knob, tighten admission) — and when the signal recovers it reverts
them, newest first, restoring the steady-state configuration.

Design rules the tests pin down:

* **Hysteresis, no flapping.**  A rule breaches only after
  ``breach_windows`` *consecutive* bad windows and recovers only after
  ``recover_windows`` consecutive good ones, and the comparison runs over
  an EWMA of the statistic, not the raw last window.
* **Reversible by construction.**  An action is an (apply, revert) pair;
  the watchdog never applies twice without reverting in between, and
  reverts in reverse application order.
* **Every transition is a structured event** (a plain dict on a bounded
  ring, mirrored to the ``repro.obs.live`` logger), so "what did the
  watchdog do to my server" is answerable after the fact.

The watchdog itself knows nothing about servers: actions are callables
wired in by the serving layer (:mod:`repro.server.service`), which keeps
this module dependency-free and the state machine testable with synthetic
windows.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from .timeseries import TimeSeriesStore, WindowAggregate, ewma

__all__ = ["CallbackAction", "SloRule", "SloWatchdog", "WatchdogEvent"]

logger = logging.getLogger("repro.obs.live")

#: Rule comparison directions: breach when the smoothed statistic is
#: above (``gt``) or below (``lt``) the threshold.
_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "gt": lambda value, threshold: value > threshold,
    "lt": lambda value, threshold: value < threshold,
}


@dataclass(frozen=True)
class SloRule:
    """One service-level objective over a window statistic.

    Attributes:
        name: the rule's identity in events and logs.
        stat: a :meth:`WindowAggregate.stat` name (``"p95_ms"``,
            ``"cache_hit_rate"``, ...).
        threshold: the objective's boundary value.
        direction: ``"gt"`` breaches when the smoothed statistic exceeds
            the threshold (latency-style); ``"lt"`` when it falls below
            (hit-rate/throughput-style).
        breach_windows: consecutive bad windows before the rule trips.
        recover_windows: consecutive good windows before it recovers.
        alpha: EWMA weight of the newest window (1.0 = no smoothing).
        min_requests: windows with fewer finished requests are skipped
            entirely — an idle window is no evidence of health *or*
            sickness (and its p95 of 0.0 would otherwise "recover" a
            latency rule spuriously).
    """

    name: str
    stat: str
    threshold: float
    direction: str = "gt"
    breach_windows: int = 2
    recover_windows: int = 2
    alpha: float = 0.5
    min_requests: int = 1

    def __post_init__(self) -> None:
        if self.direction not in _COMPARATORS:
            raise ValueError(
                f"direction must be 'gt' or 'lt', got {self.direction!r}"
            )
        if self.breach_windows < 1 or self.recover_windows < 1:
            raise ValueError("breach_windows and recover_windows must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")

    def violated(self, value: float) -> bool:
        return _COMPARATORS[self.direction](value, self.threshold)


class CallbackAction:
    """A named, reversible escalation: an (apply, revert) callable pair.

    ``apply`` may return a human-readable detail string (recorded in the
    event); ``revert`` undoes it.  The watchdog guarantees apply/revert
    alternation, so closures may keep "previous value" state.
    """

    def __init__(
        self,
        name: str,
        apply: Callable[[], Optional[str]],
        revert: Callable[[], None],
    ) -> None:
        self.name = name
        self._apply = apply
        self._revert = revert

    def apply(self) -> Optional[str]:
        return self._apply()

    def revert(self) -> None:
        self._revert()


@dataclass(frozen=True)
class WatchdogEvent:
    """One structured watchdog transition (JSON-friendly via to_dict)."""

    kind: str  # "breach" | "recover" | "action" | "revert" | "action_error"
    rule: str
    stat: str
    value: float
    threshold: float
    at: float
    window_start: Optional[float] = None
    detail: str = ""
    actions: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "rule": self.rule,
            "stat": self.stat,
            "value": self.value,
            "threshold": self.threshold,
            "at": self.at,
            "window_start": self.window_start,
            "detail": self.detail,
            "actions": list(self.actions),
        }


class _RuleState:
    """Per-rule bookkeeping: hysteresis counters + applied actions."""

    __slots__ = ("breached", "bad_streak", "good_streak", "smoothed", "applied")

    def __init__(self) -> None:
        self.breached = False
        self.bad_streak = 0
        self.good_streak = 0
        self.smoothed: Optional[float] = None
        self.applied = False


class SloWatchdog:
    """Evaluates SLO rules over a store and runs their escalations.

    Args:
        store: the rolling window store being watched.
        rules: ``(rule, actions)`` pairs; a rule's actions are applied on
            breach and reverted on recovery.
        clock: timestamp source for events (defaults to the store's).
        max_events: bound on the retained event ring.

    Use :meth:`tick` directly for deterministic control (tests, benches
    with fake clocks) or :meth:`start` for a background thread ticking
    once per store window.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        rules: Sequence[tuple[SloRule, Sequence[CallbackAction]]],
        clock: Optional[Callable[[], float]] = None,
        max_events: int = 256,
    ) -> None:
        names = [rule.name for rule, _ in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.store = store
        self.rules: list[tuple[SloRule, list[CallbackAction]]] = [
            (rule, list(actions)) for rule, actions in rules
        ]
        self.clock = clock if clock is not None else store.clock
        # Reentrant: tick() holds it across the evaluation sweep while
        # _evaluate()/_transition() take it again for their own accesses.
        self._lock = threading.RLock()
        self._states: dict[str, _RuleState] = {  # guarded-by: _lock
            rule.name: _RuleState() for rule, _ in self.rules
        }
        self._events: deque[WatchdogEvent] = deque(maxlen=max_events)  # guarded-by: _lock
        self._last_seen_start = float("-inf")  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- introspection -----------------------------------------------------

    def events(self) -> list[WatchdogEvent]:
        """Every retained transition, oldest first."""
        with self._lock:
            return list(self._events)

    def breached_rules(self) -> list[str]:
        """Names of the rules currently in the breached state."""
        with self._lock:
            return [
                name for name, state in self._states.items() if state.breached
            ]

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly state for the ``stats`` op and bench reports."""
        with self._lock:
            return {
                "rules": {
                    rule.name: {
                        "stat": rule.stat,
                        "threshold": rule.threshold,
                        "direction": rule.direction,
                        "breached": self._states[rule.name].breached,
                        "smoothed": self._states[rule.name].smoothed,
                    }
                    for rule, _ in self.rules
                },
                "events": [event.to_dict() for event in self._events],
            }

    # -- the evaluation step ----------------------------------------------

    def tick(self) -> list[WatchdogEvent]:
        """Evaluate every rule against windows sealed since the last tick.

        Idempotent between window boundaries: a tick that sees no newly
        sealed window does nothing, so over-ticking cannot double-count
        hysteresis streaks.  Returns the events this tick produced.
        """
        windows = self.store.closed_windows()
        produced: list[WatchdogEvent] = []
        with self._lock:
            # Window starts are strictly increasing, so "newer than the
            # last one I evaluated" stays correct even when the bounded
            # ring evicted entries while we slept.
            fresh = [w for w in windows if w.start > self._last_seen_start]
            if windows:
                self._last_seen_start = windows[-1].start
            for window in fresh:
                for rule, actions in self.rules:
                    produced.extend(self._evaluate(rule, actions, window))
            for event in produced:
                self._events.append(event)
        for event in produced:
            logger.info(
                "watchdog %s rule=%s %s=%.4g threshold=%.4g %s",
                event.kind,
                event.rule,
                event.stat,
                event.value,
                event.threshold,
                event.detail,
            )
        return produced

    def _evaluate(
        self,
        rule: SloRule,
        actions: list[CallbackAction],
        window: WindowAggregate,
    ) -> list[WatchdogEvent]:
        """Advance one rule's state machine by one window."""
        with self._lock:
            state = self._states[rule.name]
            return self._evaluate_locked(rule, actions, window, state)

    def _evaluate_locked(
        self,
        rule: SloRule,
        actions: list[CallbackAction],
        window: WindowAggregate,
        state: _RuleState,
    ) -> list[WatchdogEvent]:
        if window.ok_requests < rule.min_requests:
            return []
        raw = window.stat(rule.stat)
        state.smoothed = (
            raw
            if state.smoothed is None
            else ewma([state.smoothed, raw], rule.alpha)
        )
        value = state.smoothed
        events: list[WatchdogEvent] = []
        if rule.violated(value):
            state.bad_streak += 1
            state.good_streak = 0
            if not state.breached and state.bad_streak >= rule.breach_windows:
                state.breached = True
                events.append(
                    self._transition(
                        "breach", rule, actions, value, window, apply=True
                    )
                )
        else:
            state.good_streak += 1
            state.bad_streak = 0
            if state.breached and state.good_streak >= rule.recover_windows:
                state.breached = False
                events.append(
                    self._transition(
                        "recover", rule, actions, value, window, apply=False
                    )
                )
        return events

    def _transition(
        self,
        kind: str,
        rule: SloRule,
        actions: list[CallbackAction],
        value: float,
        window: WindowAggregate,
        apply: bool,
    ) -> WatchdogEvent:
        with self._lock:
            state = self._states[rule.name]
        details: list[str] = []
        ran: list[str] = []
        if apply and not state.applied:
            state.applied = True
            for action in actions:
                try:
                    detail = action.apply()
                except Exception as error:  # pragma: no cover - defensive
                    details.append(f"{action.name} failed: {error}")
                else:
                    ran.append(action.name)
                    if detail:
                        details.append(detail)
        elif not apply and state.applied:
            state.applied = False
            for action in reversed(actions):
                try:
                    action.revert()
                except Exception as error:  # pragma: no cover - defensive
                    details.append(f"revert {action.name} failed: {error}")
                else:
                    ran.append(action.name)
        return WatchdogEvent(
            kind=kind,
            rule=rule.name,
            stat=rule.stat,
            value=value,
            threshold=rule.threshold,
            at=self.clock(),
            window_start=window.start,
            detail="; ".join(details),
            actions=tuple(ran),
        )

    # -- background loop ---------------------------------------------------

    def start(self) -> "SloWatchdog":
        """Tick from a background thread once per store window width."""
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="dkb-slo-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        period = self.store.window_seconds
        while not self._stop.wait(period):
            try:
                self.tick()
            except Exception:  # pragma: no cover - keep the loop alive
                logger.exception("watchdog tick failed")

    def close(self) -> None:
        """Stop the loop and revert anything still escalated."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.restore()

    def restore(self) -> None:
        """Force-revert every applied escalation (shutdown safety net)."""
        produced: list[WatchdogEvent] = []
        with self._lock:
            for rule, actions in self.rules:
                state = self._states[rule.name]
                if not state.applied:
                    continue
                state.applied = False
                state.breached = False
                state.bad_streak = state.good_streak = 0
                ran: list[str] = []
                for action in reversed(actions):
                    try:
                        action.revert()
                    except Exception:  # pragma: no cover - defensive
                        logger.exception("revert %s failed", action.name)
                    else:
                        ran.append(action.name)
                produced.append(
                    WatchdogEvent(
                        kind="revert",
                        rule=rule.name,
                        stat=rule.stat,
                        value=state.smoothed or 0.0,
                        threshold=rule.threshold,
                        at=self.clock(),
                        detail="restored on close",
                        actions=tuple(ran),
                    )
                )
            for event in produced:
                self._events.append(event)

    def __enter__(self) -> "SloWatchdog":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
