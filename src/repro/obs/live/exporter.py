"""A Prometheus text-exposition ``/metrics`` endpoint over MetricsRegistry.

The registry's dotted instrument names (``server.request_seconds``) map to
Prometheus family names (``server_request_seconds``); counters get the
conventional ``_total`` suffix; histograms expand to the
``_bucket{le=...}`` / ``_sum`` / ``_count`` triple with cumulative bucket
counts.  Every family is emitted with one ``# HELP`` and one ``# TYPE``
line even when several labeled sources contribute samples, and label
values are escaped per the exposition-format rules (backslash, quote,
newline).

The exporter itself is a tiny ``ThreadingHTTPServer`` on a **side port**:
it shares nothing with the serving hot path but the registry objects it
reads, so serving cost with the exporter disabled is literally zero — the
server never constructs one — and with it enabled is one snapshot walk
per scrape, not per request.

``collectors`` close the "metrics that live elsewhere" gap: a collector
is called at scrape time and returns extra samples (for example per-shard
replica lag computed by the cluster router), so sources that are not
registries still show up without bespoke plumbing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..metrics import MetricsRegistry

__all__ = [
    "MetricSample",
    "MetricsExporter",
    "escape_label_value",
    "prometheus_name",
    "render_metrics",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prometheus_name(name: str) -> str:
    """A registry instrument name as a Prometheus family name.

    Dots (the registry's namespacing convention) and any other character
    outside ``[a-zA-Z0-9_:]`` become underscores; a leading digit gets an
    underscore prefix.
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus-friendly number: integral floats render without ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


@dataclass(frozen=True)
class MetricSample:
    """One exported sample: a family plus this sample's labels and value.

    ``kind`` is the family's TYPE (``counter`` / ``gauge``); collectors
    emit these directly, registries are expanded into them.
    """

    family: str
    value: float
    labels: Mapping[str, str] = field(default_factory=dict)
    kind: str = "gauge"
    help: str = ""


def _registry_samples(
    labels: Mapping[str, str], registry: MetricsRegistry
) -> Iterable[tuple[str, str, str, str, Mapping[str, str], float]]:
    """Flatten one registry into (family, kind, help, suffix, labels, value).

    ``suffix`` distinguishes the histogram sub-series (``_bucket`` etc.);
    plain counters/gauges use the empty suffix.
    """
    snapshot_labels = dict(labels)
    for name, counter in sorted(registry.counters.items()):
        family = prometheus_name(name) + "_total"
        yield family, "counter", f"repro counter {name}", "", snapshot_labels, counter.value
    for name, gauge in sorted(registry.gauges.items()):
        family = prometheus_name(name)
        yield family, "gauge", f"repro gauge {name}", "", snapshot_labels, gauge.value
    for name, histogram in sorted(registry.histograms.items()):
        family = prometheus_name(name)
        help_text = f"repro histogram {name}"
        cumulative = 0
        for index, bound in enumerate(histogram.bounds):
            cumulative += histogram.bucket_counts[index]
            bucket_labels = dict(snapshot_labels)
            bucket_labels["le"] = _format_value(bound)
            yield family, "histogram", help_text, "_bucket", bucket_labels, float(cumulative)
        inf_labels = dict(snapshot_labels)
        inf_labels["le"] = "+Inf"
        yield family, "histogram", help_text, "_bucket", inf_labels, float(histogram.count)
        yield family, "histogram", help_text, "_sum", snapshot_labels, histogram.total
        yield family, "histogram", help_text, "_count", snapshot_labels, float(histogram.count)


def render_metrics(
    sources: Sequence[tuple[Mapping[str, str], MetricsRegistry]],
    collectors: Sequence[Callable[[], Sequence[MetricSample]]] = (),
    help_overrides: Optional[Mapping[str, str]] = None,
) -> str:
    """Render every source and collector as one exposition-format page.

    Samples are grouped by family so ``# HELP`` / ``# TYPE`` appear exactly
    once per family even when several labeled sources contribute, which is
    what a conforming parser requires.
    """
    overrides = help_overrides or {}
    # family -> (kind, help, [(suffix, labels, value), ...]) in first-seen
    # family order (stable output, stable diffs).
    families: dict[str, tuple[str, str, list[tuple[str, Mapping[str, str], float]]]] = {}

    def add(
        family: str, kind: str, help_text: str, suffix: str,
        labels: Mapping[str, str], value: float,
    ) -> None:
        entry = families.get(family)
        if entry is None:
            entry = (kind, overrides.get(family, help_text), [])
            families[family] = entry
        entry[2].append((suffix, labels, value))

    for labels, registry in sources:
        for family, kind, help_text, suffix, sample_labels, value in _registry_samples(
            labels, registry
        ):
            add(family, kind, help_text, suffix, sample_labels, value)
    for collector in collectors:
        for sample in collector():
            family = prometheus_name(sample.family)
            if sample.kind == "counter" and not family.endswith("_total"):
                family += "_total"
            add(
                family,
                sample.kind,
                sample.help or f"repro {sample.kind} {sample.family}",
                "",
                sample.labels,
                sample.value,
            )

    lines: list[str] = []
    for family, (kind, help_text, samples) in families.items():
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")
        for suffix, labels, value in samples:
            lines.append(
                f"{family}{suffix}{_labels_text(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics -> the rendered page; anything else -> 404."""

    server: "_ExporterHttpServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics lives here")
            return
        try:
            body = self.server.exporter.render().encode("utf-8")
        except Exception as error:  # pragma: no cover - defensive
            self.send_error(500, f"{type(error).__name__}: {error}")
            return
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are periodic; keep them off stderr."""


class _ExporterHttpServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True
    exporter: "MetricsExporter"


class MetricsExporter:
    """Serves one or more labeled registries on an HTTP side port.

    Args:
        host: bind address.
        port: bind port (``0`` = ephemeral; see :attr:`address`).
        help_overrides: family name -> HELP text replacements.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        help_overrides: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.help_overrides = dict(help_overrides or {})
        self._lock = threading.Lock()
        self._sources: list[tuple[dict[str, str], MetricsRegistry]] = []  # guarded-by: _lock
        self._collectors: list[Callable[[], Sequence[MetricSample]]] = []  # guarded-by: _lock
        self._refreshers: list[Callable[[], None]] = []  # guarded-by: _lock
        self._http = _ExporterHttpServer((host, port), _MetricsHandler)
        self._http.exporter = self
        self._thread: Optional[threading.Thread] = None

    # -- composition -------------------------------------------------------

    def add_source(
        self, registry: MetricsRegistry, labels: Optional[Mapping[str, str]] = None
    ) -> "MetricsExporter":
        """Export ``registry``'s instruments, stamped with ``labels``."""
        with self._lock:
            self._sources.append((dict(labels or {}), registry))
        return self

    def add_collector(
        self, collector: Callable[[], Sequence[MetricSample]]
    ) -> "MetricsExporter":
        """Call ``collector`` at scrape time for extra samples."""
        with self._lock:
            self._collectors.append(collector)
        return self

    def add_refresher(self, refresher: Callable[[], None]) -> "MetricsExporter":
        """Run ``refresher`` before each scrape (to update gauges)."""
        with self._lock:
            self._refreshers.append(refresher)
        return self

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """One exposition-format page over every source and collector."""
        with self._lock:
            sources = list(self._sources)
            collectors = list(self._collectors)
            refreshers = list(self._refreshers)
        for refresher in refreshers:
            refresher()
        return render_metrics(
            sources, collectors, help_overrides=self.help_overrides
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    def start(self) -> "MetricsExporter":
        """Serve scrapes from a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("exporter already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="dkb-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
