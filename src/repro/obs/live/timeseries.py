"""A rolling in-memory time-series store of fixed-width windows.

The offline observability layer (PR 4) answers "what happened during that
run"; this store answers "what is happening *right now*" — the signal the
SLO watchdog and the ``/metrics`` exporter read.  The design is the
classic fixed-width tumbling window:

* every per-request span lands in the currently *open* window (a latency
  histogram plus request/error/shed/cache counters and the D/KB version
  range witnessed);
* when the clock crosses a window boundary the open window is sealed and
  pushed onto a **bounded ring buffer** (``collections.deque(maxlen=...)``)
  of closed windows — memory is a hard constant, never proportional to
  uptime or traffic;
* quantiles (p50/p95/p99) come from the histogram buckets
  (:meth:`repro.obs.metrics.Histogram.quantile`), so a window costs a few
  hundred bytes regardless of how many requests it absorbed.

The clock is injectable (``clock=time.monotonic`` by default) which is
what makes the watchdog's breach→recover state machine deterministic to
test: tests hand in a fake clock and advance it window by window.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional, Sequence

from ..metrics import Histogram

__all__ = ["WindowAggregate", "TimeSeriesStore", "DEFAULT_LATENCY_BUCKETS"]

# Upper bounds (seconds) sized for served request latencies: 1ms..30s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class WindowAggregate:
    """Everything one fixed-width window absorbed, with derived statistics.

    The named statistics the watchdog rules reference (``stat()``):

    * ``throughput`` — successful requests per second over the window width;
    * ``p50_ms`` / ``p95_ms`` / ``p99_ms`` — request latency quantiles in
      milliseconds, bucket-estimated;
    * ``mean_ms`` — mean request latency in milliseconds;
    * ``cache_hit_rate`` — cached fraction of successful requests;
    * ``error_rate`` — errored fraction of all finished requests;
    * ``shed_rate`` — shed (SERVER_BUSY / admission timeout) fraction of
      all arrivals (finished + shed);
    * ``version_advance`` — how many D/KB versions committed during the
      window (0 on a read-only window).
    """

    __slots__ = (
        "start",
        "width",
        "requests",
        "errors",
        "shed",
        "cache_hits",
        "latency",
        "first_version",
        "last_version",
    )

    def __init__(self, start: float, width: float) -> None:
        self.start = start
        self.width = width
        self.requests = 0
        self.errors = 0
        self.shed = 0
        self.cache_hits = 0
        self.latency = Histogram("latency_seconds", DEFAULT_LATENCY_BUCKETS)
        self.first_version: Optional[int] = None
        self.last_version: Optional[int] = None

    # -- recording (store-internal; callers go through TimeSeriesStore) ----

    def record(
        self, seconds: float, cached: bool, error: bool, shed: bool
    ) -> None:
        if shed:
            self.shed += 1
            return
        self.requests += 1
        if error:
            self.errors += 1
            return
        self.latency.observe(seconds)
        if cached:
            self.cache_hits += 1

    def record_version(self, version: int) -> None:
        if self.first_version is None:
            self.first_version = version
        self.last_version = version

    # -- derived statistics ------------------------------------------------

    @property
    def ok_requests(self) -> int:
        """Requests that finished without a protocol-level error."""
        return self.requests - self.errors

    @property
    def throughput(self) -> float:
        return self.ok_requests / self.width if self.width > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.ok_requests if self.ok_requests else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        arrivals = self.requests + self.shed
        return self.shed / arrivals if arrivals else 0.0

    @property
    def version_advance(self) -> int:
        if self.first_version is None or self.last_version is None:
            return 0
        return max(0, self.last_version - self.first_version)

    def stat(self, name: str) -> float:
        """One named statistic, for rule declarations ("p95_ms", ...)."""
        if name == "throughput":
            return self.throughput
        if name == "mean_ms":
            return self.latency.mean * 1000.0
        if name == "p50_ms":
            return self.latency.quantile(0.50) * 1000.0
        if name == "p95_ms":
            return self.latency.quantile(0.95) * 1000.0
        if name == "p99_ms":
            return self.latency.quantile(0.99) * 1000.0
        if name == "cache_hit_rate":
            return self.cache_hit_rate
        if name == "error_rate":
            return self.error_rate
        if name == "shed_rate":
            return self.shed_rate
        if name == "version_advance":
            return float(self.version_advance)
        raise KeyError(f"unknown window statistic {name!r}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form for bench reports and the stats op."""
        return {
            "start": self.start,
            "width": self.width,
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "cache_hits": self.cache_hits,
            "throughput_rps": self.throughput,
            "cache_hit_rate": self.cache_hit_rate,
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
            "version_advance": self.version_advance,
            "latency_ms": {
                "mean": self.latency.mean * 1000.0,
                "p50": self.latency.quantile(0.50) * 1000.0,
                "p95": self.latency.quantile(0.95) * 1000.0,
                "p99": self.latency.quantile(0.99) * 1000.0,
            },
        }


class TimeSeriesStore:
    """Tumbling fixed-width windows over per-request observations.

    Thread-safe: the serving threads call :meth:`record_request` /
    :meth:`record_version` concurrently while the watchdog (or the
    exporter) reads :meth:`closed_windows`.

    Args:
        window_seconds: the width of each window.
        capacity: closed windows kept (the ring buffer bound).
        clock: monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        window_seconds: float = 5.0,
        capacity: int = 120,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.window_seconds = window_seconds
        self.capacity = capacity
        self.clock = clock
        # Reentrant: the public methods hold it across their roll+record
        # step while _roll() takes it again for its own accesses.
        self._lock = threading.RLock()
        self._epoch = clock()  # not-shared: fixed at construction
        self._open = WindowAggregate(0.0, window_seconds)  # guarded-by: _lock
        self._closed: deque[WindowAggregate] = deque(  # guarded-by: _lock
            maxlen=capacity
        )
        self._last_version: Optional[int] = None  # guarded-by: _lock

    # -- window rolling ----------------------------------------------------

    def _offset(self) -> float:
        return self.clock() - self._epoch

    def _roll(self) -> None:
        """Seal every window boundary the clock has crossed."""
        with self._lock:
            now = self._offset()
            while now >= self._open.start + self.window_seconds:
                sealed = self._open
                self._open = WindowAggregate(
                    sealed.start + self.window_seconds, self.window_seconds
                )
                # A version witnessed in an earlier window still bounds
                # this one from below: carry the last value forward so an
                # idle window reports advance 0, not "no version
                # information".
                if sealed.last_version is not None:
                    self._last_version = sealed.last_version
                if self._last_version is not None:
                    self._open.record_version(self._last_version)
                self._closed.append(sealed)
                # Cap gap filling: when the store slept for longer than
                # the whole ring, fast-forward instead of minting
                # capacity*N empty windows one by one.
                behind = now - self._open.start
                if behind >= self.window_seconds * (self.capacity + 1):
                    skipped = (
                        int(behind // self.window_seconds) - self.capacity
                    )
                    self._open.start += skipped * self.window_seconds

    # -- recording ---------------------------------------------------------

    def record_request(
        self,
        seconds: float,
        cached: bool = False,
        error: bool = False,
        shed: bool = False,
    ) -> None:
        """Account one finished (or shed) request to the open window."""
        with self._lock:
            self._roll()
            self._open.record(seconds, cached, error, shed)

    def record_version(self, version: int) -> None:
        """Witness a D/KB version (from any reply that carried one)."""
        with self._lock:
            self._roll()
            self._open.record_version(version)

    # -- reading -----------------------------------------------------------

    def closed_windows(self, count: Optional[int] = None) -> list[WindowAggregate]:
        """The most recent sealed windows, oldest first."""
        with self._lock:
            self._roll()
            windows = list(self._closed)
        return windows if count is None else windows[-count:]

    def latest(self) -> Optional[WindowAggregate]:
        """The most recently sealed window, if any."""
        windows = self.closed_windows(1)
        return windows[0] if windows else None

    def open_window(self) -> WindowAggregate:
        """The currently filling window (live view, not yet sealed)."""
        with self._lock:
            self._roll()
            return self._open

    def snapshot(self, count: int = 12) -> list[dict[str, Any]]:
        """JSON-friendly view of the last ``count`` sealed windows."""
        return [window.to_dict() for window in self.closed_windows(count)]

    def series(self, name: str, count: Optional[int] = None) -> list[float]:
        """One named statistic across recent sealed windows, oldest first."""
        return [w.stat(name) for w in self.closed_windows(count)]


def ewma(values: Sequence[float], alpha: float) -> float:
    """Exponentially weighted moving average of ``values`` (oldest first).

    ``alpha`` is the weight of the newest observation; ``alpha=1`` is "just
    the last value".  Returns 0.0 for an empty sequence.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if not values:
        return 0.0
    smoothed = values[0]
    for value in values[1:]:
        smoothed = alpha * value + (1.0 - alpha) * smoothed
    return smoothed
