"""Live observability: /metrics exporter, rolling windows, SLO watchdog.

The offline obs layer (:mod:`repro.obs`) exports artifacts after a run;
this package observes a *serving* system while it runs:

* :mod:`repro.obs.live.exporter` — a Prometheus text-exposition
  ``/metrics`` HTTP endpoint over one or more labeled
  :class:`~repro.obs.metrics.MetricsRegistry` instances;
* :mod:`repro.obs.live.timeseries` — a rolling in-memory store of
  fixed-width windows (latency quantiles, throughput, cache hit rate,
  shed rate, D/KB version advance) on bounded ring buffers;
* :mod:`repro.obs.live.watchdog` — an SLO monitor evaluating
  EWMA/threshold rules over the store and running reversible escalation
  actions on breach.

Like the rest of :mod:`repro.obs`, nothing here imports from
:mod:`repro.dbms`, :mod:`repro.km`, or :mod:`repro.runtime` — the serving
layers wire themselves in through callbacks.
"""

from .exporter import (
    MetricSample,
    MetricsExporter,
    escape_label_value,
    prometheus_name,
    render_metrics,
)
from .timeseries import (
    DEFAULT_LATENCY_BUCKETS,
    TimeSeriesStore,
    WindowAggregate,
    ewma,
)
from .watchdog import CallbackAction, SloRule, SloWatchdog, WatchdogEvent

__all__ = [
    "CallbackAction",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricSample",
    "MetricsExporter",
    "SloRule",
    "SloWatchdog",
    "TimeSeriesStore",
    "WatchdogEvent",
    "WindowAggregate",
    "escape_label_value",
    "ewma",
    "prometheus_name",
    "render_metrics",
]
