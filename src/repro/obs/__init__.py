"""Structured observability: span tracing, metrics, and plan capture.

This package is the testbed's measurement layer (ISSUE 4).  It is imported
by the DBMS engine for its record types, so it must stay dependency-free
within the repo: nothing here imports from :mod:`repro.dbms`,
:mod:`repro.km`, or :mod:`repro.runtime`.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .plans import CapturedPlan, PlanCapture
from .trace import NULL_TRACER, NullTracer, Span, StatementRecord, Tracer
from .export import chrome_trace_events, render_span_tree, write_chrome_trace
from .timings import TimingsMapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CapturedPlan",
    "PlanCapture",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "StatementRecord",
    "Tracer",
    "chrome_trace_events",
    "render_span_tree",
    "write_chrome_trace",
    "TimingsMapping",
]
