"""``python -m repro trace`` — trace one query and write a Chrome trace.

Runs a query against a (possibly file-loaded) testbed session with tracing
enabled, prints the span tree, the metric snapshot, and any captured query
plans to stdout, and writes a ``chrome://tracing`` / Perfetto-loadable JSON
file.

The heavyweight imports (the whole Knowledge Manager) happen inside
:func:`main` so that :mod:`repro.obs` itself stays importable by the lower
layers without cycles.
"""

from __future__ import annotations

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one query with structured tracing and export a "
        "Chrome trace_event JSON file.",
    )
    parser.add_argument("query", help="the query, e.g. '?- anc(a, X).'")
    parser.add_argument(
        "--db",
        default=":memory:",
        help="SQLite database path for the stored D/KB (default: in-memory)",
    )
    parser.add_argument(
        "--load",
        metavar="FILE",
        action="append",
        default=[],
        help="read clauses from FILE before running the query",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default="trace.json",
        help="Chrome trace output path (default: trace.json)",
    )
    parser.add_argument(
        "--strategy",
        default="seminaive",
        help="LFP strategy: naive, seminaive, or lfp_operator",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="apply the generalized magic sets optimization",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    from ..km.config import TestbedConfig
    from ..km.session import Testbed
    from ..runtime.program import LfpStrategy
    from .export import render_span_tree, write_chrome_trace

    arguments = build_parser().parse_args(argv)
    try:
        strategy = LfpStrategy(arguments.strategy.lower())
    except ValueError:
        names = ", ".join(s.value for s in LfpStrategy)
        print(f"unknown strategy {arguments.strategy!r} (one of: {names})")
        return 2
    with Testbed(TestbedConfig(path=arguments.db, trace=True)) as testbed:
        for path in arguments.load:
            with open(path) as handle:
                testbed.define(handle.read())
        result = testbed.query(
            arguments.query, optimize=arguments.optimize, strategy=strategy
        )
        tracer = testbed.tracer
        assert tracer is not None
        print(f"{len(result.rows)} answers in {result.total_seconds * 1000:.2f} ms")
        print()
        print(render_span_tree(tracer))
        print()
        print(tracer.metrics.render())
        if tracer.plans is not None and tracer.plans.plans:
            print()
            print(tracer.plans.render())
        written = write_chrome_trace(
            arguments.out,
            tracer,
            metadata={"query": arguments.query, "strategy": strategy.value},
        )
        print(f"\nwrote {written}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
