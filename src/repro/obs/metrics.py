"""A small metrics registry: counters, gauges, histograms.

The registry is deliberately tiny — named instruments with a ``snapshot()``
that returns plain dict/float structures (JSON-friendly, assert-friendly)
and a ``render()`` for the REPL ``:stats`` command.  The interesting
testbed metrics (statement-cache hit rate, tuples per LFP iteration, rows
scanned) are all derivable from the instruments the tracer feeds.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_SECONDS_BUCKETS"]

# Upper bounds (seconds) sized for SQLite statement latencies.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Cumulative bucket histogram with count and sum."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds: tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_SECONDS_BUCKETS
        )
        # One count per bound plus the overflow bucket.
        self.bucket_counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Estimate the ``fraction`` (0..1) quantile from the buckets.

        Standard cumulative-bucket estimation (the Prometheus
        ``histogram_quantile`` rule): find the first bucket whose
        cumulative count reaches ``fraction * count``, then interpolate
        linearly between the bucket's lower and upper bound assuming the
        observations inside it are uniform.  The overflow bucket has no
        upper bound, so a quantile landing there reports the largest
        finite bound — a deliberate underestimate rather than a guess.

        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[index]
            if not in_bucket:
                cumulative += in_bucket
                continue
            if cumulative + in_bucket >= target:
                lower = self.bounds[index - 1] if index else 0.0
                position = max(0.0, target - cumulative) / in_bucket
                return lower + (bound - lower) * min(1.0, position)
            cumulative += in_bucket
        # Landed in the overflow bucket.
        return self.bounds[-1] if self.bounds else 0.0


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, bounds)
        return instrument

    def snapshot(self) -> dict[str, object]:
        """JSON-friendly view of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "mean": h.mean,
                    "buckets": dict(zip([*map(str, h.bounds), "+inf"], h.bucket_counts)),
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Plain-text snapshot for the REPL ``:stats`` command."""
        lines: list[str] = []
        if self.counters:
            lines.append("counters:")
            for name, counter in sorted(self.counters.items()):
                value = counter.value
                text = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"  {name} = {text}")
            hits = self.counters.get("dbms.statement_cache.hits")
            misses = self.counters.get("dbms.statement_cache.misses")
            if hits is not None or misses is not None:
                attempts = (hits.value if hits else 0) + (misses.value if misses else 0)
                if attempts:
                    rate = (hits.value if hits else 0) / attempts
                    lines.append(f"  dbms.statement_cache.hit_rate = {rate:.1%}")
        if self.gauges:
            lines.append("gauges:")
            for name, gauge in sorted(self.gauges.items()):
                lines.append(f"  {name} = {gauge.value:g}")
        if self.histograms:
            lines.append("histograms:")
            for name, histogram in sorted(self.histograms.items()):
                # Only second-valued histograms get a unit; others (e.g.
                # lfp.delta_tuples) are plain numbers.
                unit = "s" if name.endswith("seconds") else ""
                lines.append(
                    f"  {name}: count={histogram.count} "
                    f"sum={histogram.total:.6f}{unit} mean={histogram.mean:.6f}{unit}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
