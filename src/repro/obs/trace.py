"""Hierarchical span tracing for the testbed (the ``TraceContext``).

The paper is a measurement apparatus: every figure in Section 5 is a
breakdown of where compilation and LFP-evaluation time goes.  This module
provides the event spine for that breakdown — a tree of :class:`Span`
objects (query -> compile phases -> clique -> iteration) plus a flat stream
of :class:`StatementRecord` events, one per DBMS statement, attributed to
the innermost open span.

Design constraints:

* **Zero cost when disabled.**  The default tracer is :data:`NULL_TRACER`,
  whose ``span(...)`` returns one shared re-usable null context manager and
  whose ``on_statement`` hook is never installed on the
  :class:`~repro.dbms.engine.Database` at all.  Instrumented code guards
  any extra work (e.g. delta-cardinality probes) behind ``tracer.enabled``.
* **No observer effect.**  The tracer itself must never issue counted
  statements; anything it wants to read from SQLite (EXPLAIN plans, delta
  counts) goes through ``Database.observe`` which bypasses both the
  statement cache and :class:`~repro.dbms.engine.Statistics`.
* **Statistics stays a sink.**  ``Database`` feeds the same per-statement
  event to ``Statistics.record`` and (when installed) to
  ``Tracer.on_statement``; the two observers share one stream and cannot
  disagree about what ran.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .metrics import MetricsRegistry
from .plans import PlanCapture

__all__ = [
    "Span",
    "StatementRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


@dataclass(frozen=True)
class StatementRecord:
    """One DBMS statement as seen by the event stream.

    Field names ``phase`` / ``kind`` / ``seconds`` deliberately match
    :class:`repro.dbms.engine.StatementEvent` so consumers written against
    the Statistics trace (e.g. :func:`repro.runtime.parallel_sim.
    simulate_parallel_lfp`) accept either record type unchanged.
    """

    phase: str
    sql: str
    kind: str
    seconds: float
    rows_fetched: int = 0
    rows_changed: int = 0
    cache_hit: Optional[bool] = None
    parameters: tuple = ()


@dataclass
class Span:
    """A node in the trace tree: a named interval with attributes.

    ``statements`` / ``statement_seconds`` count only statements attributed
    *directly* to this span (not to descendants), so summing them over the
    whole tree equals the total statement count of the traced region.
    """

    name: str
    category: str = ""
    start: float = 0.0
    end: Optional[float] = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    statements: int = 0
    statement_seconds: float = 0.0

    @property
    def duration(self) -> float:
        """Wall-clock seconds; measured up to *now* while the span is open."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, end - self.start)

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) an attribute on the span."""
        self.attributes[key] = value

    def iter_spans(self) -> Iterator["Span"]:
        """Depth-first pre-order walk of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.iter_spans()


class _NullSpan:
    """Inert span handed out by the disabled tracer; every call is a no-op."""

    __slots__ = ()
    name = ""
    category = ""
    attributes: dict[str, Any] = {}
    children: list[Span] = []
    statements = 0
    statement_seconds = 0.0
    duration = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def iter_spans(self) -> Iterator[Span]:
        return iter(())


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Shared, re-entrant, re-usable context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: satisfies the Tracer interface at zero cost.

    Instrumented code always holds *some* tracer (``tracer or NULL_TRACER``)
    so hot loops contain no ``if tracer is not None`` branching beyond the
    single ``tracer.enabled`` guard for optional extra work.
    """

    enabled = False
    metrics: Optional[MetricsRegistry] = None
    plans: Optional[PlanCapture] = None

    def span(self, name: str, category: str = "", **attributes: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def on_statement(self, record: StatementRecord, database: Any = None) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of spans plus per-statement events and metrics.

    One tracer instance can span many queries (e.g. a REPL session with
    ``:trace on``); each top-level operation opens a new root span.
    Statements executed while no span is open are attributed to a synthetic
    ``(ambient)`` root so that *every* statement belongs to exactly one span.
    """

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        capture_plans: bool = True,
        keep_statements: bool = True,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.plans: Optional[PlanCapture] = PlanCapture() if capture_plans else None
        self.keep_statements = keep_statements
        self.epoch = time.perf_counter()
        self.roots: list[Span] = []
        self.statements: list[StatementRecord] = []
        self._stack: list[Span] = []
        self._ambient: Optional[Span] = None

    # ------------------------------------------------------------------ spans

    @contextmanager
    def span(self, name: str, category: str = "", **attributes: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a new root)."""
        node = Span(
            name=name,
            category=category,
            start=time.perf_counter(),
            attributes=dict(attributes),
        )
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.end = time.perf_counter()
            self._stack.pop()

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def last_root(self) -> Optional[Span]:
        return self.roots[-1] if self.roots else None

    def span_path(self) -> str:
        """Human-readable path of the open span stack, e.g. ``query/compile``."""
        return "/".join(span.name for span in self._stack)

    def _ambient_span(self) -> Span:
        if self._ambient is None:
            self._ambient = Span(name="(ambient)", category="ambient", start=self.epoch)
            self.roots.append(self._ambient)
        self._ambient.end = time.perf_counter()
        return self._ambient

    # ------------------------------------------------------------ event sink

    def on_statement(self, record: StatementRecord, database: Any = None) -> None:
        """Sink for the Database event stream: attribute, count, capture."""
        span = self._stack[-1] if self._stack else self._ambient_span()
        span.statements += 1
        span.statement_seconds += record.seconds
        if self.keep_statements:
            self.statements.append(record)

        metrics = self.metrics
        metrics.counter("dbms.statements").inc()
        metrics.counter(f"dbms.statements.{record.kind.lower()}").inc()
        metrics.counter("dbms.rows_fetched").inc(record.rows_fetched)
        metrics.counter("dbms.rows_changed").inc(record.rows_changed)
        metrics.histogram("dbms.statement_seconds").observe(record.seconds)
        if record.cache_hit is True:
            metrics.counter("dbms.statement_cache.hits").inc()
        elif record.cache_hit is False:
            metrics.counter("dbms.statement_cache.misses").inc()

        if (
            self.plans is not None
            and database is not None
            and self.plans.wants(record.kind, record.sql)
        ):
            self.plans.capture(
                database, record.sql, record.parameters, self.span_path() or span.name
            )

    # --------------------------------------------------------------- utility

    def clear(self) -> None:
        """Drop collected spans/statements; metrics and plans are kept."""
        self.roots = []
        self.statements = []
        self._stack = []
        self._ambient = None
