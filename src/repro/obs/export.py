"""Trace exporters: Chrome ``trace_event`` JSON and a plain-text span tree.

The Chrome format is the *JSON Array / complete-event* flavour: one object
per span with ``ph: "X"``, ``ts``/``dur`` in microseconds relative to the
tracer's epoch.  The output loads in ``chrome://tracing`` / Perfetto and —
because spans are emitted in depth-first pre-order and children are nested
strictly inside their parents — the ``ts`` sequence is non-decreasing and
every child interval lies within its parent's interval.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Optional, Sequence

from .trace import Span, Tracer

__all__ = ["chrome_trace_events", "write_chrome_trace", "render_span_tree"]


def _span_event(span: Span, epoch: float, pid: int, tid: int) -> dict[str, Any]:
    end = span.end if span.end is not None else span.start
    args: dict[str, Any] = dict(span.attributes)
    if span.statements:
        args["statements"] = span.statements
        args["statement_seconds"] = round(span.statement_seconds, 9)
    return {
        "name": span.name,
        "cat": span.category or "span",
        "ph": "X",
        "ts": max(0.0, (span.start - epoch) * 1e6),
        "dur": max(0.0, (end - span.start) * 1e6),
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def chrome_trace_events(
    roots: Sequence[Span], epoch: Optional[float] = None, pid: int = 1, tid: int = 1
) -> list[dict[str, Any]]:
    """Flatten a span forest to Chrome complete events (DFS pre-order)."""
    if not roots:
        return []
    if epoch is None:
        epoch = min(root.start for root in roots)
    events: list[dict[str, Any]] = []
    for root in roots:
        for span in root.iter_spans():
            events.append(_span_event(span, epoch, pid, tid))
    return events


def write_chrome_trace(
    path: str,
    source: "Tracer | Sequence[Span]",
    metadata: Optional[dict[str, Any]] = None,
) -> str:
    """Write a Chrome-trace JSON file for a tracer (or bare span forest)."""
    if isinstance(source, Tracer):
        roots: Sequence[Span] = source.roots
        epoch: Optional[float] = source.epoch
    else:
        roots = source
        epoch = None
    payload: dict[str, Any] = {
        "traceEvents": chrome_trace_events(roots, epoch),
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["metadata"] = metadata
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def _format_attributes(span: Span) -> str:
    parts = [f"{key}={value}" for key, value in span.attributes.items()]
    if span.statements:
        parts.append(f"stmts={span.statements}")
    return f"  [{', '.join(parts)}]" if parts else ""


def _render_into(span: Span, depth: int, lines: list[str]) -> None:
    duration_ms = span.duration * 1e3
    lines.append(f"{'  ' * depth}{span.name}  {duration_ms:.3f}ms{_format_attributes(span)}")
    for child in span.children:
        _render_into(child, depth + 1, lines)


def render_span_tree(source: "Tracer | Span | Iterable[Span]") -> str:
    """Indented plain-text rendering of a span forest (REPL ``:trace``)."""
    if isinstance(source, Tracer):
        roots: Iterable[Span] = source.roots
    elif isinstance(source, Span):
        roots = [source]
    else:
        roots = source
    lines: list[str] = []
    for root in roots:
        _render_into(root, 0, lines)
    return "\n".join(lines) if lines else "(no spans recorded)"
