"""repro — a reproduction of the Honeywell D/KBMS testbed (SIGMOD 1988).

A two-layer data/knowledge base management system: the Knowledge Manager
compiles pure, function-free Horn clause queries into embedded-SQL query
programs, which the DBMS layer (SQLite) executes bottom-up with naive or
semi-naive least-fixed-point evaluation, optionally restricted by the
generalized magic sets optimization.

Quick start::

    from repro import Testbed

    tb = Testbed()
    tb.define('''
        parent(john, mary).
        parent(mary, sue).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
    ''')
    result = tb.query("?- ancestor(john, X).")
    print(result.rows)          # [('mary',), ('sue',)]

See :mod:`repro.km` for the Knowledge Manager, :mod:`repro.runtime` for the
evaluation strategies, :mod:`repro.workloads` for the paper's synthetic
workload generators, :mod:`repro.bench` for the experiment harness that
regenerates every figure and table of the paper's evaluation, and
:mod:`repro.server` for the concurrent multi-session query server
(``python -m repro serve``).
"""

from .datalog import (
    Atom,
    Clause,
    Constant,
    Program,
    Query,
    Variable,
    fact,
    parse_clause,
    parse_program,
    parse_query,
)
from .errors import (
    CatalogError,
    CodeGenerationError,
    EvaluationError,
    OptimizationError,
    ParseError,
    SafetyError,
    SemanticError,
    TestbedError,
    TypeInferenceError,
    UndefinedPredicateError,
    UpdateError,
    WorkloadError,
)
from .dbms.engine import ConnectionOptions
from .km import QueryResult, Testbed, TestbedConfig
from .maintenance import MaintenancePolicy, MaintenanceResult
from .obs import (
    MetricsRegistry,
    Span,
    Tracer,
    render_span_tree,
    write_chrome_trace,
)
from .runtime import FastPathConfig, LfpStrategy

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "CatalogError",
    "Clause",
    "CodeGenerationError",
    "ConnectionOptions",
    "Constant",
    "EvaluationError",
    "FastPathConfig",
    "LfpStrategy",
    "MaintenancePolicy",
    "MaintenanceResult",
    "MetricsRegistry",
    "OptimizationError",
    "ParseError",
    "Program",
    "Query",
    "QueryResult",
    "SafetyError",
    "SemanticError",
    "Span",
    "Testbed",
    "TestbedConfig",
    "TestbedError",
    "Tracer",
    "TypeInferenceError",
    "UndefinedPredicateError",
    "UpdateError",
    "Variable",
    "WorkloadError",
    "fact",
    "parse_clause",
    "parse_program",
    "parse_query",
    "render_span_tree",
    "write_chrome_trace",
]
