"""Experiment runners: one function per test of the paper's section 5.3.

Each runner builds its workload, performs the measurement, and returns plain
dataclass rows that :mod:`repro.bench.reporting` renders in the shape of the
paper's figures and tables.  Wall-clock numbers will differ from 1988
hardware by orders of magnitude; the *shapes* — what is flat, what grows,
which strategy wins, where the crossover sits — are the reproduction targets
and are asserted by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dbms.engine import PhaseStats
from ..km.config import TestbedConfig
from ..km.session import Testbed
from ..runtime.context import (
    PHASE_RHS_EVAL,
    PHASE_TEMP_TABLES,
    PHASE_TERMINATION,
)
from ..runtime.program import LfpStrategy
from ..workloads.queries import (
    ancestor_query,
    make_ancestor_testbed,
    selectivity_of,
)
from ..workloads.relations import (
    full_binary_trees,
    first_node_at_level,
    tree_node,
)
from ..workloads.rulegen import make_rule_base
from .timing import timed

# ---------------------------------------------------------------------------
# Test 1 (Figures 7 and 8): relevant-rule extraction time
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExtractPoint:
    """One (R_s, R_rs) measurement of the extraction step."""

    total_rules: int  # R_s
    relevant_rules: int  # R_rs
    seconds: float
    statements: int
    rules_extracted: int


def _testbed_with_rule_base(
    total_rules: int, relevant_rules: int, compiled: bool = True
) -> tuple[Testbed, object]:
    rule_base = make_rule_base(total_rules, relevant_rules)
    testbed = Testbed(TestbedConfig(compiled_rule_storage=compiled))
    for base in rule_base.base_predicates:
        testbed.define_base_relation(base, ("TEXT", "TEXT"))
    testbed.workspace.add_clauses(rule_base.program.rules)
    testbed.update_stored_dkb()
    return testbed, rule_base


def run_extract_experiment(
    total_rules_values: tuple[int, ...] = (60, 120, 240, 480),
    relevant_rules_values: tuple[int, ...] = (1, 7, 20),
    repetitions: int = 5,
) -> list[ExtractPoint]:
    """Test 1: t_extract as a function of R_s and R_rs."""
    points: list[ExtractPoint] = []
    for relevant_rules in relevant_rules_values:
        for total_rules in total_rules_values:
            testbed, rule_base = _testbed_with_rule_base(
                total_rules, relevant_rules
            )
            root = rule_base.query_module.root_predicate
            run = timed(
                lambda: testbed.stored.extract_relevant_rules([root]),
                repetitions,
            )
            testbed.database.statistics.reset()
            extracted = testbed.stored.extract_relevant_rules([root])
            statements = testbed.database.statistics.total.statements
            points.append(
                ExtractPoint(
                    total_rules,
                    relevant_rules,
                    run.seconds,
                    statements,
                    len(extracted.rules),
                )
            )
            testbed.close()
    return points


# ---------------------------------------------------------------------------
# Test 2 (Figures 9 and 10): data-dictionary read time
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DictReadPoint:
    """One (P_s, P_rs) measurement of the dictionary read."""

    total_predicates: int  # P_s
    relevant_predicates: int  # P_rs
    seconds: float
    statements: int


def run_dictionary_experiment(
    total_predicate_values: tuple[int, ...] = (50, 100, 200, 400),
    relevant_predicate_values: tuple[int, ...] = (1, 4, 10),
    repetitions: int = 5,
) -> list[DictReadPoint]:
    """Test 2: t_readdict as a function of P_s and P_rs."""
    points: list[DictReadPoint] = []
    for relevant in relevant_predicate_values:
        for total in total_predicate_values:
            testbed, rule_base = _testbed_with_rule_base(total, relevant)
            wanted = list(rule_base.query_module.predicates)
            run = timed(
                lambda: testbed.stored.derived_types_of(wanted), repetitions
            )
            testbed.database.statistics.reset()
            testbed.stored.derived_types_of(wanted)
            statements = testbed.database.statistics.total.statements
            points.append(
                DictReadPoint(total, relevant, run.seconds, statements)
            )
            testbed.close()
    return points


# ---------------------------------------------------------------------------
# Test 3 (Table 4): compilation-time breakdown
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileBreakdownRow:
    """Component times for one query's compilation."""

    relevant_rules: int  # R_rs
    total_rules: int  # R_s
    components: dict[str, float] = field(hash=False)

    @property
    def total(self) -> float:
        """Total compilation time."""
        return sum(self.components.values())

    def percentage(self, component: str) -> float:
        """Percentage contribution of one component."""
        total = self.total
        return 100.0 * self.components[component] / total if total else 0.0


def run_compile_breakdown(
    relevant_rules_values: tuple[int, ...] = (1, 7, 20),
    total_rules: int = 189,
    repetitions: int = 5,
) -> list[CompileBreakdownRow]:
    """Test 3: where compilation time goes, as R_rs grows."""
    rows: list[CompileBreakdownRow] = []
    for relevant_rules in relevant_rules_values:
        testbed, rule_base = _testbed_with_rule_base(total_rules, relevant_rules)
        query = rule_base.query_text()
        samples: list[dict[str, float]] = []
        for __ in range(repetitions):
            result = testbed.compile_query(query)
            samples.append(result.timings.as_dict())
        # Median per component, dropping the redundant total.
        components = {
            name: sorted(sample[name] for sample in samples)[repetitions // 2]
            for name in samples[0]
            if name != "total"
        }
        rows.append(CompileBreakdownRow(relevant_rules, total_rules, components))
        testbed.close()
    return rows


# ---------------------------------------------------------------------------
# Tests 4, 5, 7 (Figures 11-14): execution time over tree workloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionPoint:
    """One ancestor-query execution measurement."""

    label: str
    selectivity: float  # the paper's D_rel / D
    relevant_facts: int  # D_rel
    total_facts: int  # D
    seconds: float
    iterations: int
    answers: int
    strategy: str
    optimized: bool
    node_seconds: dict[str, float] = field(default_factory=dict, hash=False)


def _run_ancestor(
    testbed: Testbed,
    relation,
    root: str,
    strategy: LfpStrategy,
    optimized: bool,
    repetitions: int,
    label: str,
) -> ExecutionPoint:
    compiled = testbed.compile_query(
        ancestor_query(root), optimize=optimized, strategy=strategy
    )
    run = timed(
        lambda: compiled.program.execute(testbed.database, testbed.catalog),
        repetitions,
    )
    execution = run.value
    point = selectivity_of(relation, root)
    return ExecutionPoint(
        label,
        point.selectivity,
        point.relevant_facts,
        point.total_facts,
        run.seconds,
        execution.total_iterations,
        len(execution.rows),
        strategy.value,
        optimized,
        dict(execution.node_seconds),
    )


def run_relevant_fraction_experiment(
    depth: int = 9,
    growing_depths: tuple[int, ...] = (6, 7, 8, 9),
    fixed_subtree_depth: int = 5,
    repetitions: int = 3,
) -> tuple[list[ExecutionPoint], list[ExecutionPoint]]:
    """Test 4 (Figure 11): t_e vs the relevant-fact fraction D_rel/D.

    Returns two series: (a) fixed D, varying D_rel via subtree roots at each
    level of one tree; (b) fixed D_rel (same-depth subtree), growing D via
    progressively deeper trees.
    """
    # Series (a): fixed relation, roots at levels 1..depth-1.
    relation = full_binary_trees(1, depth)
    testbed = make_ancestor_testbed(relation)
    fixed_d: list[ExecutionPoint] = []
    for level in range(1, depth):
        root = tree_node("t", first_node_at_level(level))
        fixed_d.append(
            _run_ancestor(
                testbed,
                relation,
                root,
                LfpStrategy.SEMINAIVE,
                False,
                repetitions,
                f"level-{level}",
            )
        )
    testbed.close()

    # Series (b): same subtree shape, relation grows.
    fixed_rel: list[ExecutionPoint] = []
    for tree_depth in growing_depths:
        relation = full_binary_trees(1, tree_depth)
        testbed = make_ancestor_testbed(relation)
        level = tree_depth - fixed_subtree_depth + 1
        root = tree_node("t", first_node_at_level(level))
        fixed_rel.append(
            _run_ancestor(
                testbed,
                relation,
                root,
                LfpStrategy.SEMINAIVE,
                False,
                repetitions,
                f"depth-{tree_depth}",
            )
        )
        testbed.close()
    return fixed_d, fixed_rel


def run_naive_vs_seminaive(
    depth: int = 9, repetitions: int = 3
) -> list[ExecutionPoint]:
    """Test 5 (Figure 12): naive vs semi-naive over subtree roots."""
    relation = full_binary_trees(1, depth)
    testbed = make_ancestor_testbed(relation)
    points: list[ExecutionPoint] = []
    for level in range(1, depth):
        root = tree_node("t", first_node_at_level(level))
        for strategy in (LfpStrategy.NAIVE, LfpStrategy.SEMINAIVE):
            points.append(
                _run_ancestor(
                    testbed,
                    relation,
                    root,
                    strategy,
                    False,
                    repetitions,
                    f"level-{level}",
                )
            )
    testbed.close()
    return points


# ---------------------------------------------------------------------------
# Test 6 (Table 5): LFP phase breakdown
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LfpBreakdownRow:
    """Phase statistics of one LFP evaluation strategy."""

    strategy: str
    phases: dict[str, PhaseStats] = field(hash=False)
    total_seconds: float = 0.0

    def phase_seconds(self, name: str) -> float:
        """Wall seconds attributed to one phase."""
        stats = self.phases.get(name)
        return stats.seconds if stats else 0.0

    def phase_percentage(self, name: str) -> float:
        """Percentage of total LFP time in one phase."""
        if not self.total_seconds:
            return 0.0
        return 100.0 * self.phase_seconds(name) / self.total_seconds


LFP_PHASES = (PHASE_TEMP_TABLES, PHASE_RHS_EVAL, PHASE_TERMINATION)


def run_lfp_breakdown(
    depth: int = 9, root_level: int = 1
) -> list[LfpBreakdownRow]:
    """Test 6 (Table 5): where naive and semi-naive evaluation spend time."""
    relation = full_binary_trees(1, depth)
    rows: list[LfpBreakdownRow] = []
    for strategy in (LfpStrategy.NAIVE, LfpStrategy.SEMINAIVE):
        testbed = make_ancestor_testbed(relation)
        root = tree_node("t", first_node_at_level(root_level))
        compiled = testbed.compile_query(ancestor_query(root), strategy=strategy)
        testbed.database.statistics.reset()
        timed(
            lambda: compiled.program.execute(testbed.database, testbed.catalog), 1
        )
        phases = testbed.database.statistics.phases()
        lfp_seconds = sum(
            phases[name].seconds for name in LFP_PHASES if name in phases
        )
        rows.append(LfpBreakdownRow(strategy.value, phases, lfp_seconds))
        testbed.close()
    return rows


# ---------------------------------------------------------------------------
# Test 7 (Figures 13 and 14): the magic-sets selectivity crossover
# ---------------------------------------------------------------------------


def run_magic_crossover(
    depth: int = 9,
    strategies: tuple[LfpStrategy, ...] = (
        LfpStrategy.SEMINAIVE,
        LfpStrategy.NAIVE,
    ),
    repetitions: int = 3,
) -> list[ExecutionPoint]:
    """Test 7 (Figure 13): t_e with and without magic sets vs selectivity."""
    relation = full_binary_trees(1, depth)
    points: list[ExecutionPoint] = []
    for strategy in strategies:
        testbed = make_ancestor_testbed(relation)
        for level in range(1, depth):
            root = tree_node("t", first_node_at_level(level))
            for optimized in (False, True):
                points.append(
                    _run_ancestor(
                        testbed,
                        relation,
                        root,
                        strategy,
                        optimized,
                        repetitions,
                        f"level-{level}",
                    )
                )
        testbed.close()
    return points


def find_crossover(points: list[ExecutionPoint], strategy: str) -> float | None:
    """Lowest selectivity at which optimization stops paying for ``strategy``.

    Compares the optimized and unoptimized runs point-by-point (they share
    labels) and returns the selectivity of the first point, in increasing
    selectivity order, where the optimized run is slower; ``None`` when
    optimization wins everywhere.
    """
    plain = {
        p.label: p for p in points if p.strategy == strategy and not p.optimized
    }
    optimized = [
        p for p in points if p.strategy == strategy and p.optimized
    ]
    for point in sorted(optimized, key=lambda p: p.selectivity):
        baseline = plain.get(point.label)
        if baseline is not None and point.seconds > baseline.seconds:
            return point.selectivity
    return None


def run_low_selectivity_blowup(
    depth: int = 13, repetitions: int = 1
) -> tuple[ExecutionPoint, ExecutionPoint]:
    """Test 7's second part: a very low selectivity query on a large relation.

    Returns (unoptimized, optimized) points; the paper reports orders of
    magnitude between them.
    """
    relation = full_binary_trees(1, depth)
    testbed = make_ancestor_testbed(relation)
    # Near-leaf subtree: tiny D_rel against a big D.
    root = tree_node("t", first_node_at_level(depth - 2))
    plain = _run_ancestor(
        testbed, relation, root, LfpStrategy.SEMINAIVE, False, repetitions, "plain"
    )
    optimized = _run_ancestor(
        testbed, relation, root, LfpStrategy.SEMINAIVE, True, repetitions, "magic"
    )
    testbed.close()
    return plain, optimized


# ---------------------------------------------------------------------------
# Tests 8 and 9 (Figure 15, Table 8): stored-D/KB update times
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UpdatePoint:
    """One stored-D/KB update measurement."""

    stored_rules: int  # R_s before the update
    workspace_rules: int  # R_w
    compiled_storage: bool
    seconds: float
    components: dict[str, float] = field(hash=False, default_factory=dict)

    def percentage(self, component: str) -> float:
        """Percentage contribution of one update component."""
        return 100.0 * self.components[component] / self.seconds if self.seconds else 0.0


def run_update_experiment(
    stored_rules_values: tuple[int, ...] = (9, 45, 90, 135, 189),
    workspace_rules: int = 1,
    repetitions: int = 3,
) -> list[UpdatePoint]:
    """Test 8 (Figure 15): t_u vs R_s, with and without compiled storage."""
    points: list[UpdatePoint] = []
    for compiled in (True, False):
        for stored_rules in stored_rules_values:
            samples: list[UpdatePoint] = []
            for __ in range(repetitions):
                samples.append(
                    _measure_update(stored_rules, workspace_rules, compiled)
                )
            samples.sort(key=lambda p: p.seconds)
            points.append(samples[len(samples) // 2])
    return points


def _measure_update(
    stored_rules: int, workspace_rules: int, compiled: bool
) -> UpdatePoint:
    chain = min(20, stored_rules)
    testbed, rule_base = _testbed_with_rule_base(
        stored_rules, chain, compiled=compiled
    )
    # A fresh module of R_w rules whose terminal rule references a stored
    # predicate: the update must then extract the stored rules relevant to
    # the workspace rules, as the paper's update algorithm prescribes.
    new_module = make_rule_base(workspace_rules, workspace_rules)
    hook = rule_base.query_module.root_predicate
    for base in new_module.base_predicates:
        testbed.define_base_relation(f"w_{base}", ("TEXT", "TEXT"))
    for clause in new_module.program.rules:
        text = str(clause).replace("base_", "w_base_").replace("p_", "wp_")
        terminal = f"wp_q_{workspace_rules - 1}(X, Y) :- w_base_q(X, Y)."
        if text == terminal:
            text = f"wp_q_{workspace_rules - 1}(X, Y) :- {hook}(X, Y)."
        testbed.workspace.define(text)
    result = testbed.update_stored_dkb()
    timings = result.timings
    point = UpdatePoint(
        stored_rules,
        workspace_rules,
        compiled,
        timings.total,
        {
            "extract": timings.extract,
            "closure": timings.closure,
            "typecheck": timings.typecheck,
            "store": timings.store,
        },
    )
    testbed.close()
    return point


def run_update_breakdown(
    configurations: tuple[tuple[int, int], ...] = ((36, 189), (1, 189)),
    repetitions: int = 3,
) -> list[UpdatePoint]:
    """Test 9 (Table 8): update-time breakdown for (R_w, R_s) configurations."""
    points: list[UpdatePoint] = []
    for workspace_rules, stored_rules in configurations:
        samples = [
            _measure_update(stored_rules, workspace_rules, compiled=True)
            for __ in range(repetitions)
        ]
        samples.sort(key=lambda p: p.seconds)
        points.append(samples[len(samples) // 2])
    return points


# ---------------------------------------------------------------------------
# Ablation (paper conclusions 6-8): LFP operator and TC operator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationPoint:
    """One strategy's time on the shared ancestor workload."""

    strategy: str
    seconds: float
    answers: int


def run_lfp_operator_ablation(
    depth: int = 10, repetitions: int = 3
) -> list[AblationPoint]:
    """Compare application-program LFP against the in-DBMS operators."""
    relation = full_binary_trees(1, depth)
    root = tree_node("t", 1)
    points: list[AblationPoint] = []
    for strategy in (
        LfpStrategy.NAIVE,
        LfpStrategy.SEMINAIVE,
        LfpStrategy.LFP_OPERATOR,
    ):
        testbed = make_ancestor_testbed(relation)
        compiled = testbed.compile_query(ancestor_query(root), strategy=strategy)
        run = timed(
            lambda: compiled.program.execute(testbed.database, testbed.catalog),
            repetitions,
        )
        points.append(
            AblationPoint(strategy.value, run.seconds, len(run.value.rows))
        )
        testbed.close()

    # The specialised TC operator (recursive CTE) on the same relation.
    from ..runtime.transitive_closure import transitive_closure_sql
    from ..workloads.queries import make_ancestor_testbed as make_tb

    testbed = make_tb(relation)

    def run_tc() -> int:
        return transitive_closure_sql(
            testbed.database, "e_parent", "tc_out", tree_node("t", 1)
        )

    run = timed(run_tc, repetitions)
    points.append(AblationPoint("tc_operator", run.seconds, int(run.value)))
    testbed.close()
    return points
