"""The adaptive-serving benchmark: inject an SLO breach, watch the watchdog.

One closed loop over a live server with the SLO watchdog enabled:

1. **steady** — bound ancestor queries, warm result cache: latency far
   under the p95 objective;
2. **degraded** — injected degradation: every query is an *unbound* deep
   recursion (the full ancestor closure) with the result cache bypassed,
   and a write lands each window so nothing warms up — windowed p95 jumps
   past the objective;
3. **recovery** — back to the steady mix; the signal decays below the
   objective and the watchdog reverts its escalations.

The run measures the two numbers that make "adaptive" a claim instead of
a vibe: **detection time** (degradation start → breach event, in seconds
and in windows) and **recovery time** (steady traffic resuming → recover
event).  The watchdog is driven by explicit ticks between load bursts, so
the measurements are about the state machine, not scheduler jitter.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..server.loadgen import QuerySpec, run_loadgen
from ..server.service import DkbServer, ServerConfig, WatchdogConfig
from .reporting import _table
from .server import _seed_dkb, ancestor_query_mix


@dataclass(frozen=True)
class AdaptivePhaseReport:
    """One phase of the loop: its traffic and the watchdog's view of it."""

    name: str
    requests: int
    errors: int
    busy: int
    p95_ms: float
    windows: int


@dataclass
class AdaptiveLoopResult:
    """Everything one adaptive-loop run produced."""

    window_seconds: float
    p95_threshold_ms: float
    phases: list[AdaptivePhaseReport] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    #: seconds from the start of the degraded phase to the breach event
    #: (None = the watchdog never detected the degradation).
    detection_seconds: Optional[float] = None
    #: sealed windows it took to detect (ceil of detection / width).
    detection_windows: Optional[int] = None
    #: escalations the breach applied (policy switches etc.).
    breach_actions: list[str] = field(default_factory=list)
    #: seconds from the start of the recovery phase to the recover event.
    recovery_seconds: Optional[float] = None
    recovery_windows: Optional[int] = None
    #: True when every escalation was reverted by the end of the run.
    restored: bool = False

    @property
    def detected(self) -> bool:
        return self.detection_seconds is not None

    @property
    def recovered(self) -> bool:
        return self.recovery_seconds is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "p95_threshold_ms": self.p95_threshold_ms,
            "phases": [
                {
                    "name": phase.name,
                    "requests": phase.requests,
                    "errors": phase.errors,
                    "busy": phase.busy,
                    "p95_ms": phase.p95_ms,
                    "windows": phase.windows,
                }
                for phase in self.phases
            ],
            "detection_seconds": self.detection_seconds,
            "detection_windows": self.detection_windows,
            "breach_actions": list(self.breach_actions),
            "recovery_seconds": self.recovery_seconds,
            "recovery_windows": self.recovery_windows,
            "restored": self.restored,
            "events": [dict(event) for event in self.events],
        }


def _drive_phase(
    server: DkbServer,
    queries: Sequence[QuerySpec],
    windows: int,
    window_seconds: float,
    clients: int,
    think_time: float,
    dirty: bool,
) -> AdaptivePhaseReport:
    """Drive one phase window-by-window, ticking the watchdog in between.

    ``dirty`` injects one write per window (an insert/delete pair through
    the pool's writer), bumping the D/KB version so the result cache never
    warms during the degraded phase.
    """
    host, port = server.address
    requests = errors = busy = 0
    p95 = 0.0
    for index in range(windows):
        if dirty:
            marker = f"zz_degrade_{index}"
            server.pool.load_facts("parent", [(marker, "zz_leaf")])
            server.pool.delete_facts("parent", [(marker, "zz_leaf")])
        report = run_loadgen(
            host,
            port,
            queries,
            clients=clients,
            duration=window_seconds,
            think_time=think_time,
            reconnect_every=100,
            use_processes=False,
        )
        requests += report.requests
        errors += report.errors
        busy += report.busy
        p95 = max(p95, report.latency_ms["p95"])
        assert server.watchdog is not None
        server.watchdog.tick()
    return AdaptivePhaseReport(
        name="",
        requests=requests,
        errors=errors,
        busy=busy,
        p95_ms=p95,
        windows=windows,
    )


def _first_event(
    server: DkbServer, kind: str, rule: str, since: float
) -> Optional[Any]:
    assert server.watchdog is not None
    for event in server.watchdog.events():
        if event.kind == kind and event.rule == rule and event.at >= since:
            return event
    return None


def run_adaptive_loop(
    depth: int = 7,
    window_seconds: float = 0.5,
    clients: int = 4,
    steady_windows: int = 3,
    degraded_windows: int = 8,
    recovery_windows: int = 12,
    p95_threshold_ms: float = 25.0,
    think_time: float = 0.002,
    path: Optional[str] = None,
) -> AdaptiveLoopResult:
    """Run the steady → degraded → recovery loop against a live server.

    The watchdog runs with ``auto_start=False`` and is ticked explicitly
    after every window-sized load burst, so detection/recovery times
    reflect the rule hysteresis, not background-thread scheduling.
    """
    result = AdaptiveLoopResult(
        window_seconds=window_seconds, p95_threshold_ms=p95_threshold_ms
    )
    with tempfile.TemporaryDirectory(prefix="repro_adapt_") as scratch:
        dkb_path = path or os.path.join(scratch, "dkb.sqlite")
        _seed_dkb(dkb_path, depth)
        steady_mix: list[QuerySpec] = list(ancestor_query_mix(depth))
        # The injected degradation: the full unbound closure, recomputed
        # naively (the paper's slowest strategy), never cached — each
        # request pays the whole recursion, so windowed p95 jumps well
        # past the objective instead of hovering near it.
        degraded_mix: list[QuerySpec] = [
            {"q": "?- ancestor(X, Y).", "use_cache": False, "strategy": "naive"}
        ]
        config = ServerConfig(
            path=dkb_path,
            readers=max(4, clients),
            session_timeout=60.0,
            watchdog=WatchdogConfig(
                window_seconds=window_seconds,
                p95_ms=p95_threshold_ms,
                breach_windows=2,
                recover_windows=2,
                alpha=0.7,
                min_requests=1,
                auto_start=False,
            ),
        )
        with DkbServer(config) as server:
            assert server.watchdog is not None

            assert server.timeseries is not None

            def phase(
                name: str, mix: Sequence[QuerySpec], windows: int, dirty: bool
            ) -> "tuple[float, float]":
                """Returns (wall-clock start, store offset of the first
                window this phase's traffic lands in)."""
                started = time.monotonic()
                first_window = server.timeseries.open_window().start
                report = _drive_phase(
                    server, mix, windows, window_seconds,
                    clients, think_time, dirty,
                )
                result.phases.append(
                    AdaptivePhaseReport(
                        name=name,
                        requests=report.requests,
                        errors=report.errors,
                        busy=report.busy,
                        p95_ms=report.p95_ms,
                        windows=windows,
                    )
                )
                return started, first_window

            def windows_until(event: Any, first_window: float) -> int:
                """Sealed windows from a phase's first window to the one
                the event fired on, inclusive."""
                if event.window_start is None:
                    return 0
                return (
                    int(
                        round(
                            (event.window_start - first_window)
                            / window_seconds
                        )
                    )
                    + 1
                )

            phase("steady", steady_mix, steady_windows, dirty=False)
            degraded_start, degraded_window = phase(
                "degraded", degraded_mix, degraded_windows, dirty=True
            )
            breach = _first_event(
                server, "breach", "p95_latency", degraded_start
            )
            if breach is not None:
                result.detection_seconds = breach.at - degraded_start
                result.detection_windows = windows_until(
                    breach, degraded_window
                )
                result.breach_actions = list(breach.actions)
            recovery_start, recovery_window = phase(
                "recovery", steady_mix, recovery_windows, dirty=False
            )
            recover = _first_event(
                server, "recover", "p95_latency", recovery_start
            )
            if recover is not None:
                result.recovery_seconds = recover.at - recovery_start
                result.recovery_windows = windows_until(
                    recover, recovery_window
                )
            result.restored = (
                not server.watchdog.breached_rules()
                and not server.policy.overrides()
            )
            result.events = [
                event.to_dict() for event in server.watchdog.events()
            ]
    return result


def format_adaptive_loop(result: AdaptiveLoopResult) -> str:
    """Text tables of the adaptive-loop run."""
    phases = _table(
        ["phase", "windows", "requests", "max p95 ms", "errors", "busy"],
        [
            (
                phase.name,
                phase.windows,
                phase.requests,
                f"{phase.p95_ms:.1f}",
                phase.errors,
                phase.busy,
            )
            for phase in result.phases
        ],
    )
    outcome = _table(
        ["measure", "value"],
        [
            ("p95 objective (ms)", f"{result.p95_threshold_ms:.1f}"),
            ("window width (s)", f"{result.window_seconds:.2f}"),
            (
                "detection",
                f"{result.detection_seconds:.2f}s "
                f"(~{result.detection_windows} windows)"
                if result.detected
                else "NOT DETECTED",
            ),
            (
                "breach actions",
                ", ".join(result.breach_actions) or "-",
            ),
            (
                "recovery",
                f"{result.recovery_seconds:.2f}s "
                f"(~{result.recovery_windows} windows)"
                if result.recovered
                else "NOT RECOVERED",
            ),
            ("steady state restored", "yes" if result.restored else "NO"),
        ],
    )
    return phases + "\n\n" + outcome
