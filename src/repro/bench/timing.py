"""Timing utilities for the experiment harness.

Experiments report the median of several repetitions to damp scheduler
noise; logical counters (SQL statements, rows) from the DBMS statistics are
taken from the final repetition — they are deterministic.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class TimedRun:
    """Median wall time over repetitions, with the last return value."""

    seconds: float
    repetitions: int
    value: object

    @property
    def milliseconds(self) -> float:
        """Median time in milliseconds."""
        return self.seconds * 1000.0


def timed(function: Callable[[], T], repetitions: int = 3) -> TimedRun:
    """Run ``function`` ``repetitions`` times; report the median wall time."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    samples: list[float] = []
    value: object = None
    for __ in range(repetitions):
        started = time.perf_counter()
        value = function()
        samples.append(time.perf_counter() - started)
    return TimedRun(statistics.median(samples), repetitions, value)


def fraction(part: float, whole: float) -> float:
    """``part / whole`` guarded against an empty denominator."""
    return part / whole if whole else 0.0


def percentage(part: float, whole: float) -> float:
    """Percentage contribution, 0-100."""
    return 100.0 * fraction(part, whole)
