"""Incremental view maintenance vs full recompute (extension experiment).

The paper only re-derives views from scratch: section 4.3 measures rule-base
updates, and every query recomputes the derived relation it needs.  The
maintenance subsystem (:mod:`repro.maintenance`) instead keeps a
materialized ``ancestor`` correct under EDB fact updates by delta
propagation and DRed.  This experiment quantifies when that wins: on the
fig-12 tree workload, batches of new ``parent`` edges are applied to two
identical testbeds — one maintaining the view incrementally, the other
recomputing it from scratch — and the wall-clock per batch is compared
across batch sizes, looking for the crossover where recomputation catches
up.

Both testbeds receive exactly the same edge batches, and the experiment
asserts their materialized relations stay identical — a mismatch means a
maintenance bug, not a timing artifact.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from ..km.session import Testbed
from ..workloads.queries import ANCESTOR_RULES, load_parent_relation
from ..workloads.relations import full_binary_trees, tree_node

DEFAULT_BATCH_SIZES = (1, 4, 16, 64, 256)


@dataclass(frozen=True)
class MaintenancePoint:
    """One batch size: incremental maintenance vs full recompute."""

    batch_size: int
    incremental_seconds: float
    recompute_seconds: float
    incremental_tuples: int
    view_rows: int
    base_rows: int

    @property
    def speedup(self) -> float:
        """How much faster incremental maintenance is than recomputing."""
        if not self.incremental_seconds:
            return float("inf")
        return self.recompute_seconds / self.incremental_seconds


def _make_testbed(depth: int) -> Testbed:
    relation = full_binary_trees(1, depth)
    testbed = Testbed()
    testbed.define(ANCESTOR_RULES)
    load_parent_relation(testbed, relation)
    testbed.materialize("ancestor")
    return testbed


def _fresh_batch(
    depth: int, size: int, stamp: str
) -> list[tuple[str, str]]:
    """``size`` new child edges hung off existing tree nodes.

    Child names are unique per ``stamp`` so every application inserts
    genuinely new facts; parents cycle through the whole tree, so batches
    touch shallow and deep nodes alike.
    """
    node_count = 2**depth - 1
    return [
        (tree_node("t", (i % node_count) + 1), f"x_{stamp}_{i}")
        for i in range(size)
    ]


def run_maintenance_ab(
    depth: int = 9,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    repetitions: int = 3,
) -> list[MaintenancePoint]:
    """Time insert maintenance against full recompute per batch size.

    Each repetition builds a fresh batch of new edges and applies it to
    both testbeds: the incremental one through ``load_facts`` (delta
    propagation), the recompute one through a raw base-table insert
    followed by ``refresh``.  Per batch size the median over repetitions is
    reported.  The two views are compared after every batch.
    """
    incremental = _make_testbed(depth)
    recompute = _make_testbed(depth)
    points: list[MaintenancePoint] = []
    try:
        for size in batch_sizes:
            inc_samples: list[float] = []
            full_samples: list[float] = []
            tuples_added = 0
            for repetition in range(repetitions):
                batch = _fresh_batch(depth, size, f"{size}_{repetition}")

                started = time.perf_counter()
                incremental.load_facts("parent", batch)
                inc_samples.append(time.perf_counter() - started)
                tuples_added = incremental.maintenance_log[-1].tuples_added

                started = time.perf_counter()
                recompute.catalog.insert_facts("parent", batch)
                recompute.refresh("ancestor")
                full_samples.append(time.perf_counter() - started)

                left = set(incremental.database.fetch_all("mv_ancestor"))
                right = set(recompute.database.fetch_all("mv_ancestor"))
                if left != right:
                    raise AssertionError(
                        f"maintained view diverged at batch size {size}: "
                        f"{len(left)} vs {len(right)} rows"
                    )
            points.append(
                MaintenancePoint(
                    batch_size=size,
                    incremental_seconds=statistics.median(inc_samples),
                    recompute_seconds=statistics.median(full_samples),
                    incremental_tuples=tuples_added,
                    view_rows=incremental.views.tuple_count("ancestor"),
                    base_rows=incremental.catalog.fact_count("parent"),
                )
            )
    finally:
        incremental.close()
        recompute.close()
    return points
