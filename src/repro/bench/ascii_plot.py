"""Minimal ASCII scatter/line plots for the figure benchmarks.

The paper presents its results as figures; the benchmark suite prints
tables *and* — via this module — terminal-friendly plots of the same
series, so the shapes (flat curves, crossovers, knees) are visible at a
glance in the bench output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

Point = tuple[float, float]

MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[Point]],
    width: int = 64,
    height: int = 14,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named point series on one shared-axis character grid.

    Args:
        series: name -> [(x, y), ...]; each series gets its own marker.
        width/height: plot area size in characters.
        title, x_label, y_label: annotations.

    Returns:
        The plot as a multi-line string (empty-series input included — an
        axis box is still drawn).
    """
    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if points:
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x_low, x_high = min(xs), max(xs)
        y_low, y_high = min(ys), max(ys)
    else:
        x_low = y_low = 0.0
        x_high = y_high = 1.0
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for __ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][column] = marker

    legend: list[str] = []
    for index, (name, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            place(x, y, marker)

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top = {y_high:.4g}, bottom = {y_low:.4g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_low:.4g} .. {x_high:.4g}    " + "   ".join(legend)
    )
    return "\n".join(lines)


def plot_execution_points(points, title: str) -> str:
    """Plot a list of :class:`~repro.bench.experiments.ExecutionPoint`.

    Series are split by (strategy, optimized); x = selectivity, y = ms.
    """
    series: dict[str, list[Point]] = {}
    for point in points:
        mode = "magic" if point.optimized else "plain"
        name = f"{point.strategy}/{mode}"
        series.setdefault(name, []).append(
            (point.selectivity, point.seconds * 1000.0)
        )
    for pts in series.values():
        pts.sort()
    return ascii_plot(
        series, title=title, x_label="D_rel/D", y_label="t_e ms"
    )
