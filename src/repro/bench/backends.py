"""Backend and strategy A/B runners for the pluggable-DBMS layer.

Two experiments over the fig-12 ancestor mix (query roots at each level of
a full binary tree):

* **CTE vs loop** — the same clique evaluated by the semi-naive iteration
  loop and by the one-statement recursive-CTE strategy
  (:mod:`repro.runtime.lfp_cte`), answers asserted identical.  This is the
  paper's "LFP operator inside the DBMS" argument taken to its modern
  conclusion: the whole fixpoint as one ``WITH RECURSIVE`` statement.
* **Engine vs engine** — the same workload and strategy on every backend
  whose driver is importable (:func:`repro.dbms.backends.available_backends`),
  answers asserted identical across engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dbms.backends import available_backends
from ..km.config import TestbedConfig
from ..km.session import Testbed
from ..runtime.program import LfpStrategy
from ..workloads.queries import (
    ANCESTOR_RULES,
    ancestor_query,
    load_parent_relation,
    selectivity_of,
)
from ..workloads.relations import (
    first_node_at_level,
    full_binary_trees,
    tree_node,
)
from .timing import timed


@dataclass(frozen=True)
class CtePoint:
    """One selectivity level measured with the loop and with the CTE."""

    label: str
    selectivity: float
    relevant_facts: int
    total_facts: int
    loop_seconds: float
    cte_seconds: float
    answers: int
    loop_iterations: int
    # "lfp_cte" when the CTE run actually took the one-statement path;
    # "fallback: <reason>" would mean the workload stopped qualifying.
    cte_strategy: str

    @property
    def speedup(self) -> float:
        """Iteration-loop over recursive-CTE wall time."""
        return self.loop_seconds / self.cte_seconds if self.cte_seconds else 0.0


@dataclass(frozen=True)
class EnginePoint:
    """One (backend, selectivity level) execution measurement."""

    backend: str
    label: str
    selectivity: float
    seconds: float
    answers: int
    strategy: str


def run_cte_ab(
    depth: int = 9,
    levels: "tuple[int, ...] | None" = None,
    repetitions: int = 3,
    backend: str = "sqlite",
) -> list[CtePoint]:
    """A/B the recursive-CTE strategy against the semi-naive loop.

    For each query-root level of the full binary tree, executes the compiled
    ancestor program under ``LfpStrategy.SEMINAIVE`` and under
    ``LfpStrategy.LFP_CTE`` on the same testbed, asserting identical answer
    sets.  The per-point ``cte_strategy`` records whether the CTE run really
    compiled to one statement (the ancestor clique is linear and
    negation-free, so it always should).
    """
    if levels is None:
        levels = tuple(range(1, depth))
    relation = full_binary_trees(1, depth)
    testbed = Testbed(TestbedConfig(backend=backend))
    testbed.define(ANCESTOR_RULES)
    load_parent_relation(testbed, relation)

    points: list[CtePoint] = []
    for level in levels:
        root = tree_node("t", first_node_at_level(level))
        sample = selectivity_of(relation, root)
        runs: dict[LfpStrategy, object] = {}
        seconds: dict[LfpStrategy, float] = {}
        for strategy in (LfpStrategy.SEMINAIVE, LfpStrategy.LFP_CTE):
            compiled = testbed.compile_query(
                ancestor_query(root), strategy=strategy
            )
            run = timed(
                lambda: compiled.program.execute(
                    testbed.database, testbed.catalog
                ),
                repetitions,
            )
            runs[strategy] = run.value
            seconds[strategy] = run.seconds
        loop_exec = runs[LfpStrategy.SEMINAIVE]
        cte_exec = runs[LfpStrategy.LFP_CTE]
        if set(loop_exec.rows) != set(cte_exec.rows):
            raise AssertionError(
                f"recursive-CTE strategy changed the answers at level {level}"
            )
        chosen = next(iter(cte_exec.strategy_by_clique.values()), "lfp_cte")
        points.append(
            CtePoint(
                f"level-{level}",
                sample.selectivity,
                sample.relevant_facts,
                sample.total_facts,
                seconds[LfpStrategy.SEMINAIVE],
                seconds[LfpStrategy.LFP_CTE],
                len(cte_exec.rows),
                loop_exec.total_iterations,
                chosen,
            )
        )
    testbed.close()
    return points


def run_engine_ab(
    depth: int = 9,
    levels: "tuple[int, ...] | None" = None,
    repetitions: int = 3,
    strategy: "LfpStrategy | None" = None,
    backends: "tuple[str, ...] | None" = None,
) -> list[EnginePoint]:
    """The fig-12 ancestor mix on every importable backend.

    Runs the same workload (same tree, same query roots, same strategy) on
    each backend and asserts every engine computes the same answer set per
    level.  ``backends`` defaults to whatever is importable, so the runner
    degrades to a single-engine sweep when the optional DuckDB package is
    absent.
    """
    strategy = strategy or LfpStrategy.SEMINAIVE
    if levels is None:
        levels = tuple(range(1, depth))
    if backends is None:
        backends = available_backends()
    relation = full_binary_trees(1, depth)

    points: list[EnginePoint] = []
    answers_by_level: dict[int, set] = {}
    for name in backends:
        testbed = Testbed(TestbedConfig(backend=name))
        testbed.define(ANCESTOR_RULES)
        load_parent_relation(testbed, relation)
        for level in levels:
            root = tree_node("t", first_node_at_level(level))
            sample = selectivity_of(relation, root)
            compiled = testbed.compile_query(
                ancestor_query(root), strategy=strategy
            )
            run = timed(
                lambda: compiled.program.execute(
                    testbed.database, testbed.catalog
                ),
                repetitions,
            )
            rows = set(run.value.rows)
            expected = answers_by_level.setdefault(level, rows)
            if rows != expected:
                raise AssertionError(
                    f"backend {name!r} disagrees on the answers at "
                    f"level {level}"
                )
            points.append(
                EnginePoint(
                    name,
                    f"level-{level}",
                    sample.selectivity,
                    run.seconds,
                    len(rows),
                    strategy.value,
                )
            )
        testbed.close()
    return points
