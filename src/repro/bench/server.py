"""Benchmark runners for the concurrent query server.

Two experiments, both over the fig-12 workload (bound ``ancestor`` queries
on full binary trees):

* **Throughput scaling** — boot the server at increasing reader-session
  counts and drive it with a fixed closed-loop client population.  On the
  interactive workload (clients *think* between requests) throughput
  scales with sessions until the think time is fully overlapped — the
  multi-session win the server exists for, and one no single-session
  testbed run can show.
* **Cache A/B** — the same bound query served cold (compile + evaluate)
  versus warm (versioned result-cache hit) on one session, measuring the
  server-side seconds of each.
"""

from __future__ import annotations

import os
import statistics
import tempfile
from dataclasses import dataclass
from typing import Optional, Sequence

from ..server.cache import VersionedResultCache
from ..server.loadgen import LoadgenReport, run_loadgen
from ..server.pool import SessionPool
from ..server.service import DkbServer, ServerConfig
from ..workloads.queries import ANCESTOR_RULES
from ..workloads.relations import full_binary_trees, tree_node
from .reporting import _table


@dataclass(frozen=True)
class ServerScalingPoint:
    """One (reader sessions, client population) throughput measurement."""

    readers: int
    clients: int
    requests: int
    errors: int
    busy: int
    throughput_rps: float
    cache_hit_fraction: float
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @classmethod
    def from_report(
        cls, readers: int, report: LoadgenReport
    ) -> "ServerScalingPoint":
        return cls(
            readers=readers,
            clients=report.clients,
            requests=report.requests,
            errors=report.errors,
            busy=report.busy,
            throughput_rps=report.throughput,
            cache_hit_fraction=report.cache_hit_fraction,
            p50_ms=report.latency_ms["p50"],
            p95_ms=report.latency_ms["p95"],
            p99_ms=report.latency_ms["p99"],
        )


@dataclass(frozen=True)
class CacheAbPoint:
    """Cold-vs-warm timing for one served query."""

    query: str
    cold_seconds: float
    warm_seconds: float
    hits: int
    misses: int

    @property
    def speedup(self) -> float:
        """How many times faster the warm (cached) read is."""
        return (
            self.cold_seconds / self.warm_seconds
            if self.warm_seconds > 0
            else float("inf")
        )


def _seed_dkb(path: str, depth: int) -> None:
    """Create the ancestor D/KB over one full binary tree of ``depth``."""
    relation = full_binary_trees(1, depth)
    with SessionPool(path, readers=1) as pool:
        pool.define(ANCESTOR_RULES)
        pool.load_facts("parent", relation.edges)


def ancestor_query_mix(depth: int, roots: int = 5) -> list[str]:
    """Bound ancestor queries over the first ``roots`` heap-indexed nodes."""
    limit = max(1, min(roots, 2 ** (depth - 1) - 1))
    return [
        f"?- ancestor('{tree_node('t', index)}', Y)."
        for index in range(1, limit + 1)
    ]


def run_server_scaling(
    depth: int = 7,
    reader_counts: Sequence[int] = (1, 8),
    clients: int = 8,
    duration: float = 4.0,
    think_time: float = 0.02,
    roots: int = 5,
    cache_size: int = 256,
    path: Optional[str] = None,
) -> list[ServerScalingPoint]:
    """Throughput at each reader-session count, same client population.

    Each measurement boots a fresh server over the same seeded D/KB file
    and drives it with ``clients`` closed-loop clients for ``duration``
    seconds.
    """
    points: list[ServerScalingPoint] = []
    with tempfile.TemporaryDirectory(prefix="repro_srv_") as scratch:
        dkb_path = path or os.path.join(scratch, "dkb.sqlite")
        _seed_dkb(dkb_path, depth)
        queries = ancestor_query_mix(depth, roots)
        for readers in reader_counts:
            config = ServerConfig(
                path=dkb_path,
                readers=readers,
                cache_size=cache_size,
                session_timeout=duration + 30.0,
            )
            with DkbServer(config) as server:
                host, port = server.address
                report = run_loadgen(
                    host,
                    port,
                    queries,
                    clients=clients,
                    duration=duration,
                    think_time=think_time,
                )
            points.append(ServerScalingPoint.from_report(readers, report))
    return points


def run_cache_ab(
    depth: int = 8,
    repeats: int = 5,
    path: Optional[str] = None,
) -> CacheAbPoint:
    """Median cold (compile + evaluate) vs warm (cache hit) service time.

    Every repeat invalidates the cache by bumping the D/KB version with a
    one-row insert/delete pair, so each cold sample really recomputes.
    """
    with tempfile.TemporaryDirectory(prefix="repro_srv_") as scratch:
        dkb_path = path or os.path.join(scratch, "dkb.sqlite")
        _seed_dkb(dkb_path, depth)
        query = ancestor_query_mix(depth, 1)[0]
        cache = VersionedResultCache(64)
        cold: list[float] = []
        warm: list[float] = []
        with SessionPool(dkb_path, readers=1, cache=cache) as pool:
            for _ in range(repeats):
                first = pool.query(query)
                second = pool.query(query)
                assert not first.cached and second.cached
                cold.append(first.seconds)
                warm.append(second.seconds)
                # Invalidate: any committed write bumps the version.
                pool.load_facts("parent", [("zz_inval", "zz_leaf")])
                pool.delete_facts("parent", [("zz_inval", "zz_leaf")])
            return CacheAbPoint(
                query=query,
                cold_seconds=statistics.median(cold),
                warm_seconds=statistics.median(warm),
                hits=cache.hits,
                misses=cache.misses,
            )


def format_server_scaling(points: Sequence[ServerScalingPoint]) -> str:
    """Text table of the throughput-scaling experiment."""
    baseline = points[0].throughput_rps if points else 0.0
    return _table(
        [
            "readers", "clients", "requests", "rps", "vs 1", "hit%",
            "p50 ms", "p95 ms", "errors", "busy",
        ],
        [
            (
                p.readers,
                p.clients,
                p.requests,
                f"{p.throughput_rps:.1f}",
                f"{p.throughput_rps / baseline:.2f}x" if baseline else "-",
                f"{p.cache_hit_fraction * 100:.0f}",
                f"{p.p50_ms:.1f}",
                f"{p.p95_ms:.1f}",
                p.errors,
                p.busy,
            )
            for p in points
        ],
    )


def format_cache_ab(point: CacheAbPoint) -> str:
    """Text table of the cache A/B experiment."""
    return _table(
        ["mode", "seconds", "speedup"],
        [
            ("cold (compile+evaluate)", f"{point.cold_seconds:.6f}", "1.00x"),
            ("warm (cache hit)", f"{point.warm_seconds:.6f}",
             f"{point.speedup:.1f}x"),
        ],
    )
