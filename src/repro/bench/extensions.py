"""Experiment runners for the extension features.

These cover the parts of the paper that its testbed left unimplemented and
this reproduction built out: the adaptive optimization policy (conclusion 4),
query precompilation (conclusion 3), and the alternative rule rewriting /
special-operator strategies of section 2.5 (supplementary magic sets and the
counting method).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..km.config import TestbedConfig
from ..km.session import Testbed
from ..runtime.counting import evaluate_counting, recognize_counting_form
from ..datalog.parser import parse_program
from ..workloads.queries import ancestor_query, make_ancestor_testbed
from ..workloads.relations import (
    first_node_at_level,
    full_binary_trees,
    tree_node,
)
from ..workloads.rulegen import make_rule_base
from .timing import timed

# ---------------------------------------------------------------------------
# Adaptive policy: does "auto" track the lower envelope of plain vs magic?
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptivePoint:
    """One selectivity level measured under all three optimization modes."""

    label: str
    selectivity: float
    plain_seconds: float
    magic_seconds: float
    auto_seconds: float
    auto_used_magic: bool

    @property
    def envelope_seconds(self) -> float:
        """The per-point best of the two static plans."""
        return min(self.plain_seconds, self.magic_seconds)


def run_adaptive_policy(
    depth: int = 9, repetitions: int = 3
) -> list[AdaptivePoint]:
    """Sweep selectivity; measure plain, magic, and auto at each level."""
    relation = full_binary_trees(1, depth)
    testbed = make_ancestor_testbed(relation)
    from ..workloads.queries import selectivity_of

    points: list[AdaptivePoint] = []
    for level in range(1, depth):
        root = tree_node("t", first_node_at_level(level))
        query = ancestor_query(root)
        seconds: dict[str, float] = {}
        used_magic = False
        for mode in ("plain", "magic", "auto"):
            optimize = {"plain": False, "magic": True, "auto": "auto"}[mode]
            compiled = testbed.compile_query(query, optimize=optimize)
            run = timed(
                lambda: compiled.program.execute(
                    testbed.database, testbed.catalog
                ),
                repetitions,
            )
            seconds[mode] = run.seconds
            if mode == "auto":
                used_magic = compiled.optimized
        points.append(
            AdaptivePoint(
                f"level-{level}",
                selectivity_of(relation, root).selectivity,
                seconds["plain"],
                seconds["magic"],
                seconds["auto"],
                used_magic,
            )
        )
    testbed.close()
    return points


def format_adaptive(points: list[AdaptivePoint]) -> str:
    """Render the adaptive-policy sweep."""
    lines = [
        "Adaptive optimization policy vs static plans",
        f"{'point':<10} {'D_rel/D':>8} {'plain ms':>9} {'magic ms':>9} "
        f"{'auto ms':>9} {'auto chose':>10}",
    ]
    for point in sorted(points, key=lambda p: p.selectivity):
        lines.append(
            f"{point.label:<10} {point.selectivity:>8.3f} "
            f"{point.plain_seconds * 1000:>9.2f} "
            f"{point.magic_seconds * 1000:>9.2f} "
            f"{point.auto_seconds * 1000:>9.2f} "
            f"{'magic' if point.auto_used_magic else 'plain':>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Query precompilation: repeated-query amortisation and invalidation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrecompilePoint:
    """Latency of one query under compile-every-time vs precompiled."""

    relevant_rules: int
    compile_seconds: float
    execute_seconds: float
    cached_total_seconds: float

    @property
    def uncached_total_seconds(self) -> float:
        """Compile + execute, the non-precompiled path."""
        return self.compile_seconds + self.execute_seconds

    @property
    def speedup(self) -> float:
        """Repeated-query speedup from precompilation."""
        if not self.cached_total_seconds:
            return float("inf")
        return self.uncached_total_seconds / self.cached_total_seconds


def run_precompilation(
    relevant_rules_values: tuple[int, ...] = (5, 10, 20),
    total_rules: int = 120,
    repetitions: int = 5,
) -> list[PrecompilePoint]:
    """Measure repeated-query latency with and without precompilation."""
    points: list[PrecompilePoint] = []
    for relevant in relevant_rules_values:
        rule_base = make_rule_base(total_rules, relevant)
        testbed = Testbed()
        for base in rule_base.base_predicates:
            testbed.define_base_relation(base, ("TEXT", "TEXT"))
        testbed.workspace.add_clauses(rule_base.program.rules)
        testbed.update_stored_dkb()
        testbed.load_facts(
            rule_base.query_module.base_predicate, [("a", "b"), ("b", "c")]
        )
        query = rule_base.query_text()

        compile_run = timed(lambda: testbed.compile_query(query), repetitions)
        uncached = timed(lambda: testbed.query(query), repetitions)
        testbed.query(query, precompile=True)  # warm the cache
        cached = timed(
            lambda: testbed.query(query, precompile=True), repetitions
        )
        points.append(
            PrecompilePoint(
                relevant,
                compile_run.seconds,
                uncached.seconds - compile_run.seconds,
                cached.seconds,
            )
        )
        testbed.close()
    return points


def format_precompilation(points: list[PrecompilePoint]) -> str:
    """Render the precompilation experiment."""
    lines = [
        "Query precompilation (paper conclusion 3)",
        f"{'R_rs':>5} {'compile ms':>11} {'execute ms':>11} "
        f"{'cached ms':>10} {'speedup':>8}",
    ]
    for point in points:
        lines.append(
            f"{point.relevant_rules:>5} "
            f"{point.compile_seconds * 1000:>11.2f} "
            f"{point.execute_seconds * 1000:>11.2f} "
            f"{point.cached_total_seconds * 1000:>10.2f} "
            f"{point.speedup:>7.1f}x"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rewriting methods: magic vs supplementary vs counting on same-generation
# ---------------------------------------------------------------------------

SG_RULES = (
    "sg(X, Y) :- flat(X, Y)."
    "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."
)


@dataclass(frozen=True)
class RewritePoint:
    """One strategy's time and answer count on the shared sg workload."""

    method: str
    seconds: float
    answers: int


def _layered_genealogy(generations: int, width: int):
    """up/down/flat fact lists for a layered same-generation workload.

    ``width`` disjoint ancestral lines meet only through ``flat`` at the top
    generation, so a query bound to one person is highly selective: the
    relevant portion is that person's line plus the single flat hop — while
    the full ``sg`` relation spans every pair of lines at every generation.
    """
    up, down, flat = [], [], []
    for generation in range(1, generations):
        for index in range(width):
            child = f"g{generation}_{index}"
            parent = f"g{generation - 1}_{index}"
            up.append((child, parent))
            down.append((parent, child))
    for i in range(width):
        for j in range(width):
            if i != j:
                flat.append((f"g0_{i}", f"g0_{j}"))
    return up, down, flat


def run_rewrite_methods(
    generations: int = 7, width: int = 6, repetitions: int = 3
) -> list[RewritePoint]:
    """Compare plain / magic / supplementary / counting on one sg query."""
    up, down, flat = _layered_genealogy(generations, width)
    testbed = Testbed()
    testbed.define(SG_RULES)
    for name, rows in (("up", up), ("down", down), ("flat", flat)):
        testbed.define_base_relation(name, ("TEXT", "TEXT"))
        testbed.load_facts(name, rows)
    person = f"g{generations - 1}_0"
    query = f"?- sg('{person}', Y)."

    points: list[RewritePoint] = []
    for method, optimize in (
        ("plain", False),
        ("magic", True),
        ("supplementary", "supplementary"),
    ):
        compiled = testbed.compile_query(query, optimize=optimize)
        run = timed(
            lambda: compiled.program.execute(testbed.database, testbed.catalog),
            repetitions,
        )
        points.append(RewritePoint(method, run.seconds, len(run.value.rows)))

    form = recognize_counting_form(parse_program(SG_RULES), "sg")
    assert form is not None
    tables = {"up": "e_up", "down": "e_down", "flat": "e_flat"}

    def run_counting():
        return evaluate_counting(testbed.database, form, tables, person)

    run = timed(run_counting, repetitions)
    points.append(RewritePoint("counting", run.seconds, len(run.value.rows)))
    testbed.close()
    return points


def format_rewrite_methods(points: list[RewritePoint]) -> str:
    """Render the rewriting-method ablation."""
    baseline = next(p for p in points if p.method == "plain")
    lines = [
        "Rule rewriting strategies on same-generation (section 2.5)",
        f"{'method':<14} {'t_e ms':>9} {'answers':>8} {'vs plain':>9}",
    ]
    for point in points:
        speedup = baseline.seconds / point.seconds if point.seconds else 0.0
        lines.append(
            f"{point.method:<14} {point.seconds * 1000:>9.2f} "
            f"{point.answers:>8} {speedup:>8.1f}x"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Simulated parallel LFP evaluation (paper conclusions 5 and 7)
# ---------------------------------------------------------------------------


def run_parallel_simulation(
    depth: int = 8,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    strategy=None,
    rule_count: int = 8,
):
    """Trace a real LFP evaluation, then replay it at several parallelisms.

    The workload is a clique with ``rule_count`` recursive equations — the
    union of reachability over ``rule_count`` disjoint edge relations::

        p(X, Y) :- e_i(X, Y).                (i = 1..rule_count)
        p(X, Y) :- e_i(X, Z), p(Z, Y).

    Conclusion 7a's parallelism is *across* the equations of one iteration,
    so a single-equation clique (plain ancestor) has nothing to schedule;
    this union clique offers ``rule_count``-way RHS parallelism.

    Returns the list of :class:`repro.runtime.parallel_sim.SimulatedSchedule`
    objects, one per worker count.
    """
    from ..runtime.parallel_sim import lfp_phase_events, sweep_workers
    from ..runtime.program import LfpStrategy

    strategy = strategy or LfpStrategy.SEMINAIVE
    testbed = Testbed()
    rules = []
    for index in range(rule_count):
        rules.append(f"p(X, Y) :- edge{index}(X, Y).")
        rules.append(f"p(X, Y) :- edge{index}(X, Z), p(Z, Y).")
    testbed.define("\n".join(rules))
    for index in range(rule_count):
        relation = full_binary_trees(1, depth, prefix=f"w{index}_")
        testbed.define_base_relation(f"edge{index}", ("TEXT", "TEXT"))
        testbed.load_facts(f"edge{index}", relation.edges)
    compiled = testbed.compile_query(
        f"?- p('{tree_node('w0_', 1)}', Y).", strategy=strategy
    )
    testbed.database.statistics.enable_trace()
    testbed.database.statistics.reset()
    compiled.program.execute(testbed.database, testbed.catalog)
    trace = lfp_phase_events(testbed.database.statistics.trace)
    testbed.close()
    return sweep_workers(trace, worker_counts)


def format_parallel_simulation(schedules) -> str:
    """Render the parallel-LFP simulation sweep."""
    baseline = schedules[0]
    lines = [
        "Simulated parallel LFP evaluation (conclusions 5 and 7)",
        f"{'workers':>8} {'wall ms':>9} {'speedup':>8} {'serial share':>13}",
    ]
    for schedule in schedules:
        lines.append(
            f"{schedule.workers:>8} {schedule.total_seconds * 1000:>9.2f} "
            f"{schedule.speedup_over(baseline):>7.2f}x "
            f"{schedule.serial_fraction * 100:>12.1f}%"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fast-path layer A/B: statement cache + iteration batching + delta indexes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FastPathPoint:
    """One selectivity level measured with the fast path off and on.

    The slow run reproduces the seed behaviour (no statement cache,
    per-iteration CREATE/DROP, autocommit, no derived-relation indexes); the
    fast run enables the whole fast-path layer.  Both must compute identical
    answers — the benchmark asserts it.
    """

    label: str
    selectivity: float
    relevant_facts: int
    total_facts: int
    slow_seconds: float
    fast_seconds: float
    answers: int
    iterations: int
    cache_hits: int
    cache_misses: int

    @property
    def speedup(self) -> float:
        """Slow-path over fast-path wall time."""
        return self.slow_seconds / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Statement-cache hit rate during the fast run."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def run_fastpath_ab(
    depth: int = 9,
    levels: tuple[int, ...] | None = None,
    repetitions: int = 3,
    strategy=None,
) -> list[FastPathPoint]:
    """A/B the fast-path layer on the fig-12 semi-naive ancestor workload.

    For each query-root level of the full binary tree, executes the compiled
    ancestor program with the fast path off (statement cache disabled — the
    seed configuration) and on (cache + batching + scratch reuse + index
    advice), reporting median wall times, the cache counters, and the
    answers (asserted identical).
    """
    from ..dbms.engine import DEFAULT_STATEMENT_CACHE_SIZE
    from ..runtime.context import FastPathConfig
    from ..runtime.program import LfpStrategy
    from ..workloads.queries import ANCESTOR_RULES, load_parent_relation, selectivity_of

    strategy = strategy or LfpStrategy.SEMINAIVE
    if levels is None:
        levels = tuple(range(1, depth))
    relation = full_binary_trees(1, depth)

    points: list[FastPathPoint] = []
    for level in levels:
        root = tree_node("t", first_node_at_level(level))
        query = ancestor_query(root)
        sample = selectivity_of(relation, root)

        results: dict[str, tuple[float, object, int, int]] = {}
        for mode in ("slow", "fast"):
            fast = mode == "fast"
            testbed = Testbed(
                TestbedConfig(
                    statement_cache_size=DEFAULT_STATEMENT_CACHE_SIZE if fast else 0
                )
            )
            testbed.define(ANCESTOR_RULES)
            load_parent_relation(testbed, relation)
            fastpath = FastPathConfig.enabled() if fast else None
            compiled = testbed.compile_query(query, strategy=strategy)
            testbed.database.statistics.reset()
            run = timed(
                lambda: compiled.program.execute(
                    testbed.database, testbed.catalog, fastpath=fastpath
                ),
                repetitions,
            )
            total = testbed.database.statistics.total
            results[mode] = (
                run.seconds,
                run.value,
                total.cache_hits,
                total.cache_misses,
            )
            testbed.close()

        slow_seconds, slow_exec, __, __ = results["slow"]
        fast_seconds, fast_exec, hits, misses = results["fast"]
        if set(slow_exec.rows) != set(fast_exec.rows):
            raise AssertionError(
                f"fast path changed the answers at level {level}"
            )
        points.append(
            FastPathPoint(
                f"level-{level}",
                sample.selectivity,
                sample.relevant_facts,
                sample.total_facts,
                slow_seconds,
                fast_seconds,
                len(fast_exec.rows),
                fast_exec.total_iterations,
                hits,
                misses,
            )
        )
    return points
