"""Text rendering of experiment results in the shape of the paper's artifacts.

Each ``format_*`` function takes the rows produced by the matching runner in
:mod:`repro.bench.experiments` and returns a plain-text table/series that the
benchmark suite prints, mirroring what the paper's figure or table reports.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Iterable, Sequence

from .experiments import (
    AblationPoint,
    CompileBreakdownRow,
    DictReadPoint,
    ExecutionPoint,
    ExtractPoint,
    LfpBreakdownRow,
    LFP_PHASES,
    UpdatePoint,
    find_crossover,
)


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}"


def format_fig7(points: list[ExtractPoint]) -> str:
    """Figure 7: t_extract vs R_s, one curve per R_rs."""
    rows = [
        (p.relevant_rules, p.total_rules, _ms(p.seconds), p.statements)
        for p in sorted(points, key=lambda p: (p.relevant_rules, p.total_rules))
    ]
    return "Figure 7 — t_extract vs total stored rules R_s\n" + _table(
        ("R_rs", "R_s", "t_extract (ms)", "SQL stmts"), rows
    )


def format_fig8(points: list[ExtractPoint], total_rules: int | None = None) -> str:
    """Figure 8: t_extract vs R_rs at a fixed R_s."""
    if total_rules is None:
        total_rules = max(p.total_rules for p in points)
    rows = [
        (p.relevant_rules, _ms(p.seconds), p.rules_extracted)
        for p in sorted(points, key=lambda p: p.relevant_rules)
        if p.total_rules == total_rules
    ]
    return (
        f"Figure 8 — t_extract vs relevant rules R_rs (R_s = {total_rules})\n"
        + _table(("R_rs", "t_extract (ms)", "rules extracted"), rows)
    )


def format_fig9(points: list[DictReadPoint]) -> str:
    """Figure 9: t_readdict vs P_s, one curve per P_rs."""
    rows = [
        (p.relevant_predicates, p.total_predicates, _ms(p.seconds))
        for p in sorted(
            points, key=lambda p: (p.relevant_predicates, p.total_predicates)
        )
    ]
    return "Figure 9 — t_readdict vs total stored predicates P_s\n" + _table(
        ("P_rs", "P_s", "t_readdict (ms)"), rows
    )


def format_fig10(
    points: list[DictReadPoint], total_predicates: int | None = None
) -> str:
    """Figure 10: t_readdict vs P_rs at a fixed P_s."""
    if total_predicates is None:
        total_predicates = max(p.total_predicates for p in points)
    rows = [
        (p.relevant_predicates, _ms(p.seconds))
        for p in sorted(points, key=lambda p: p.relevant_predicates)
        if p.total_predicates == total_predicates
    ]
    return (
        f"Figure 10 — t_readdict vs relevant predicates P_rs "
        f"(P_s = {total_predicates})\n"
        + _table(("P_rs", "t_readdict (ms)"), rows)
    )


TABLE4_COMPONENTS = (
    "setup",
    "extract",
    "readdict",
    "semantic",
    "eorder",
    "gencompile",
)


def format_table4(rows: list[CompileBreakdownRow]) -> str:
    """Table 4: percentage contribution of each compilation component."""
    body = []
    for row in sorted(rows, key=lambda r: r.relevant_rules):
        body.append(
            (
                row.relevant_rules,
                *(f"{row.percentage(c):.1f}%" for c in TABLE4_COMPONENTS),
                _ms(row.total),
            )
        )
    headers = ("R_rs", *TABLE4_COMPONENTS, "total (ms)")
    return "Table 4 — compilation time breakdown\n" + _table(headers, body)


def format_fig11(
    fixed_d: list[ExecutionPoint], fixed_rel: list[ExecutionPoint]
) -> str:
    """Figure 11: t_e vs D_rel/D, both variation methods."""
    rows_a = [
        (p.label, f"{p.selectivity:.3f}", p.relevant_facts, p.total_facts, _ms(p.seconds))
        for p in fixed_d
    ]
    rows_b = [
        (p.label, f"{p.selectivity:.3f}", p.relevant_facts, p.total_facts, _ms(p.seconds))
        for p in fixed_rel
    ]
    headers = ("point", "D_rel/D", "D_rel", "D", "t_e (ms)")
    return (
        "Figure 11 — t_e vs relevant-fact fraction\n"
        "(a) D fixed, D_rel varied by query root:\n"
        + _table(headers, rows_a)
        + "\n(b) D_rel fixed, D grows with the relation:\n"
        + _table(headers, rows_b)
    )


def format_fig12(points: list[ExecutionPoint]) -> str:
    """Figure 12: naive vs semi-naive t_e with the slowdown ratio."""
    naive = {p.label: p for p in points if p.strategy == "naive"}
    seminaive = {p.label: p for p in points if p.strategy == "seminaive"}
    rows = []
    for label in sorted(naive, key=lambda l: seminaive[l].selectivity):
        n, s = naive[label], seminaive[label]
        ratio = n.seconds / s.seconds if s.seconds else float("inf")
        rows.append(
            (
                label,
                f"{s.selectivity:.3f}",
                _ms(n.seconds),
                _ms(s.seconds),
                f"{ratio:.2f}x",
            )
        )
    from .ascii_plot import plot_execution_points

    return (
        "Figure 12 — naive vs semi-naive LFP evaluation\n"
        + _table(
            ("point", "D_rel/D", "naive (ms)", "semi-naive (ms)", "naive/semi"),
            rows,
        )
        + "\n\n"
        + plot_execution_points(points, "Figure 12 (plotted)")
    )


def format_table5(rows: list[LfpBreakdownRow]) -> str:
    """Table 5: LFP phase breakdown per strategy."""
    body = []
    for row in rows:
        body.append(
            (
                row.strategy,
                *(f"{row.phase_percentage(p):.1f}%" for p in LFP_PHASES),
                _ms(row.total_seconds),
            )
        )
    headers = ("strategy", *LFP_PHASES, "LFP total (ms)")
    return "Table 5 — LFP evaluation phase breakdown\n" + _table(headers, body)


def format_fig13(points: list[ExecutionPoint]) -> str:
    """Figure 13: t_e vs selectivity, optimization on/off, per strategy."""
    rows = []
    for point in sorted(
        points, key=lambda p: (p.strategy, p.selectivity, p.optimized)
    ):
        rows.append(
            (
                point.strategy,
                "magic" if point.optimized else "plain",
                f"{point.selectivity:.3f}",
                _ms(point.seconds),
                point.answers,
            )
        )
    text = "Figure 13 — magic sets vs selectivity\n" + _table(
        ("strategy", "mode", "D_rel/D", "t_e (ms)", "answers"), rows
    )
    for strategy in sorted({p.strategy for p in points}):
        crossover = find_crossover(points, strategy)
        pretty = f"{crossover:.2f}" if crossover is not None else "none observed"
        text += f"\ncrossover selectivity ({strategy}): {pretty}"
    from .ascii_plot import plot_execution_points

    seminaive = [p for p in points if p.strategy == "seminaive"]
    if seminaive:
        text += "\n\n" + plot_execution_points(
            seminaive, "Figure 13 (plotted, semi-naive)"
        )
    return text


def format_fig14(points: list[ExecutionPoint]) -> str:
    """Figure 14: magic-rules vs modified-rules LFP times (optimized runs)."""
    rows = []
    for point in sorted(points, key=lambda p: p.selectivity):
        if not point.optimized or point.strategy != "seminaive":
            continue
        magic_seconds = sum(
            s for label, s in point.node_seconds.items() if label.startswith("m_")
        )
        modified_seconds = sum(
            s
            for label, s in point.node_seconds.items()
            if not label.startswith("m_")
        )
        rows.append(
            (
                point.label,
                f"{point.selectivity:.3f}",
                _ms(magic_seconds),
                _ms(modified_seconds),
            )
        )
    return "Figure 14 — magic vs modified rules LFP time (semi-naive)\n" + _table(
        ("point", "D_rel/D", "magic LFP (ms)", "modified LFP (ms)"), rows
    )


def format_fig15(points: list[UpdatePoint]) -> str:
    """Figure 15: t_u vs R_s, with and without compiled rule storage."""
    rows = [
        (
            "compiled" if p.compiled_storage else "source-only",
            p.stored_rules,
            _ms(p.seconds),
        )
        for p in sorted(points, key=lambda p: (not p.compiled_storage, p.stored_rules))
    ]
    from .ascii_plot import ascii_plot

    series: dict[str, list[tuple[float, float]]] = {}
    for point in points:
        name = "compiled" if point.compiled_storage else "source-only"
        series.setdefault(name, []).append(
            (float(point.stored_rules), point.seconds * 1000.0)
        )
    for values in series.values():
        values.sort()
    return (
        "Figure 15 — update time vs stored rules R_s\n"
        + _table(("storage", "R_s", "t_u (ms)"), rows)
        + "\n\n"
        + ascii_plot(
            series,
            title="Figure 15 (plotted)",
            x_label="R_s",
            y_label="t_u ms",
        )
    )


UPDATE_COMPONENTS = ("extract", "closure", "typecheck", "store")


def format_table8(points: list[UpdatePoint]) -> str:
    """Table 8: update-time breakdown per (R_w, R_s) configuration."""
    rows = []
    for point in points:
        rows.append(
            (
                point.workspace_rules,
                point.stored_rules,
                *(f"{point.percentage(c):.1f}%" for c in UPDATE_COMPONENTS),
                _ms(point.seconds),
            )
        )
    headers = ("R_w", "R_s", *UPDATE_COMPONENTS, "t_u (ms)")
    return "Table 8 — update time breakdown\n" + _table(headers, rows)


def format_ablation(points: list[AblationPoint]) -> str:
    """Ablation: LFP strategies vs the in-DBMS operators."""
    baseline = next((p for p in points if p.strategy == "seminaive"), None)
    rows = []
    for point in points:
        speedup = (
            f"{baseline.seconds / point.seconds:.2f}x"
            if baseline and point.seconds
            else "-"
        )
        rows.append((point.strategy, _ms(point.seconds), point.answers, speedup))
    return (
        "Ablation — application-program LFP vs in-DBMS operators\n"
        + _table(("strategy", "t_e (ms)", "answers", "vs semi-naive"), rows)
    )


def format_cte_ab(points) -> str:
    """CTE vs loop A/B: semi-naive iteration vs one recursive-CTE statement."""
    rows = []
    for point in sorted(points, key=lambda p: p.selectivity):
        rows.append(
            (
                point.label,
                f"{point.selectivity:.3f}",
                _ms(point.loop_seconds),
                _ms(point.cte_seconds),
                f"{point.speedup:.2f}x",
                point.loop_iterations,
                point.cte_strategy,
                point.answers,
            )
        )
    return "CTE A/B — semi-naive loop vs one WITH RECURSIVE statement\n" + _table(
        (
            "point",
            "D_rel/D",
            "loop (ms)",
            "cte (ms)",
            "speedup",
            "loop iters",
            "cte path",
            "answers",
        ),
        rows,
    )


def format_engine_ab(points) -> str:
    """Engine vs engine: the same workload on every importable backend."""
    rows = [
        (
            point.backend,
            point.label,
            f"{point.selectivity:.3f}",
            _ms(point.seconds),
            point.answers,
            point.strategy,
        )
        for point in sorted(points, key=lambda p: (p.backend, p.selectivity))
    ]
    return "Engine A/B — identical workload per SQL backend\n" + _table(
        ("backend", "point", "D_rel/D", "t_e (ms)", "answers", "strategy"),
        rows,
    )


def format_fastpath(points) -> str:
    """Fast-path A/B: seed slow path vs cache+batching+indexes, per level.

    The statement-cache hit rate comes straight from the ``Statistics``
    cache counters of the fast run.
    """
    rows = []
    for point in sorted(points, key=lambda p: p.selectivity):
        rows.append(
            (
                point.label,
                f"{point.selectivity:.3f}",
                _ms(point.slow_seconds),
                _ms(point.fast_seconds),
                f"{point.speedup:.2f}x",
                f"{point.cache_hits}/{point.cache_hits + point.cache_misses}",
                f"{point.cache_hit_rate * 100:.0f}%",
                point.answers,
            )
        )
    return "Fast path A/B — statement cache + batching + delta indexes\n" + _table(
        (
            "point",
            "D_rel/D",
            "slow (ms)",
            "fast (ms)",
            "speedup",
            "cache h/total",
            "hit rate",
            "answers",
        ),
        rows,
    )


def find_maintenance_crossover(points) -> int | None:
    """Smallest batch size where incremental maintenance stops winning.

    Returns ``None`` when incremental maintenance beats full recompute at
    every measured batch size.
    """
    for point in sorted(points, key=lambda p: p.batch_size):
        if point.speedup < 1.0:
            return point.batch_size
    return None


def format_maintenance(points) -> str:
    """Incremental view maintenance vs full recompute, per batch size."""
    rows = []
    for point in sorted(points, key=lambda p: p.batch_size):
        rows.append(
            (
                point.batch_size,
                _ms(point.incremental_seconds),
                _ms(point.recompute_seconds),
                f"{point.speedup:.2f}x",
                point.incremental_tuples,
                point.view_rows,
                point.base_rows,
            )
        )
    text = (
        "View maintenance — delta propagation vs full recompute (ancestor)\n"
        + _table(
            (
                "batch",
                "incremental (ms)",
                "recompute (ms)",
                "speedup",
                "Δ tuples",
                "view rows",
                "base rows",
            ),
            rows,
        )
    )
    crossover = find_maintenance_crossover(points)
    pretty = str(crossover) if crossover is not None else "none observed"
    text += f"\ncrossover batch size: {pretty}"
    return text


def write_bench_json(path: str, name: str, rows: Iterable[object], **meta) -> str:
    """Dump one experiment's points as a JSON report (for CI artifacts).

    ``rows`` may be dataclass instances or plain mappings.  Returns the
    path written.
    """
    payload = {
        "name": name,
        "meta": dict(meta),
        "rows": [
            dataclasses.asdict(row) if dataclasses.is_dataclass(row) else dict(row)
            for row in rows
        ],
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def write_trace_json(path: str, tracer, name: str, **meta) -> str:
    """Dump a tracer's span tree as a Chrome trace beside the bench reports.

    ``tracer`` is a :class:`repro.obs.Tracer`; the written file loads in
    ``chrome://tracing`` / Perfetto and in ``json.loads``.  Returns the path
    written.
    """
    from ..obs.export import write_chrome_trace

    return write_chrome_trace(path, tracer, metadata={"name": name, **meta})
